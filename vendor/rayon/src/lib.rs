//! A minimal, API-compatible subset of [`rayon`](https://crates.io/crates/rayon),
//! vendored because the build environment has no network access to crates.io.
//!
//! **This fallback executes sequentially.** The `par_*` adaptors return the
//! corresponding standard-library iterators, so code written against the
//! rayon API compiles and runs correctly, just without work stealing. The
//! htsat `Backend::DataParallel` path therefore currently degrades to the
//! sequential path; swapping `[workspace.dependencies] rayon` back to the
//! crates.io release restores true parallelism with no source changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Conversion into a (here: sequential) "parallel" iterator.
pub trait IntoParallelIterator {
    /// The resulting iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// The element type.
    type Item;

    /// Converts `self` into an iterator. Sequential in this fallback.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Iter = I::IntoIter;
    type Item = I::Item;

    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Chunked mutable slice access, mirroring `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T> {
    /// Returns mutable chunks of `chunk_size` elements. Sequential in this
    /// fallback.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;

    /// Returns a mutable iterator over the elements. Sequential in this
    /// fallback.
    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }

    fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.iter_mut()
    }
}

/// Shared read-only slice access, mirroring `rayon::slice::ParallelSlice`.
pub trait ParallelSlice<T> {
    /// Returns chunks of `chunk_size` elements. Sequential in this fallback.
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;

    /// Returns an iterator over the elements. Sequential in this fallback.
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }

    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
}

/// Returns the number of threads rayon would use. Always 1 in this fallback.
pub fn current_num_threads() -> usize {
    1
}

/// The traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_adaptors_match_sequential() {
        let sum: usize = (0..100usize).into_par_iter().map(|i| i * 2).sum();
        assert_eq!(sum, 9900);

        let mut data = [1u32; 8];
        let total: u32 = data
            .par_chunks_mut(4)
            .enumerate()
            .map(|(i, chunk)| chunk.iter().sum::<u32>() + i as u32)
            .sum();
        assert_eq!(total, 9);
    }
}
