//! A minimal, API-compatible subset of [`criterion`](https://crates.io/crates/criterion),
//! vendored because the build environment has no network access to crates.io.
//!
//! Benchmarks written against the real criterion API compile and run: each
//! `Bencher::iter` call performs a short warm-up, then times a fixed number
//! of samples and prints min / median / mean wall-clock times per iteration.
//! There is no statistical outlier analysis, HTML report, or comparison with
//! saved baselines — swap `[workspace.dependencies] criterion` back to the
//! crates.io release to regain those.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function, re-exported like criterion's.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup cost. Accepted for API compatibility;
/// this subset always re-runs setup per iteration.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark id: `&str`, `String` or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Renders the id as the printed label.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; times the routine.
pub struct Bencher {
    samples: usize,
    recorded: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, running one warm-up call then `samples` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.recorded.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.recorded.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn run_one(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples,
        recorded: Vec::new(),
    };
    f(&mut bencher);
    let mut times = bencher.recorded;
    if times.is_empty() {
        println!("{label:<50} (no samples recorded)");
        return;
    }
    times.sort_unstable();
    let min = times[0];
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    let mut line = format!(
        "{label:<50} min {:>12}  median {:>12}  mean {:>12}",
        format_duration(min),
        format_duration(median),
        format_duration(mean)
    );
    if let Some(tp) = throughput {
        let per_sec = |count: u64| {
            let secs = median.as_secs_f64();
            if secs > 0.0 {
                format!("{:.0}", count as f64 / secs)
            } else {
                "inf".to_string()
            }
        };
        match tp {
            Throughput::Elements(n) => line.push_str(&format!("  ({} elem/s)", per_sec(n))),
            Throughput::Bytes(n) => line.push_str(&format!("  ({} B/s)", per_sec(n))),
        }
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op in this subset; groups print as they run).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&id.into_id(), 10, None, f);
        self
    }
}

/// Bundles benchmark functions into a callable group, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(8));
        let mut runs = 0usize;
        group.bench_function("inc", |b| b.iter(|| runs += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
        group.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter_batched(|| x, |v| v + 1, BatchSize::SmallInput)
        });
        group.finish();
    }
}
