//! A minimal, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8-era API), vendored because the build environment has no network
//! access to crates.io.
//!
//! Only the surface used by the htsat workspace is provided:
//!
//! * [`rngs::SmallRng`] — a small, fast, seedable PRNG (xoshiro256++),
//! * [`Rng::gen_bool`], [`Rng::gen_range`], [`Rng::gen`],
//! * [`SeedableRng::seed_from_u64`],
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! The generators are deterministic for a given seed, which is exactly what
//! the workspace needs for reproducible sampling experiments. To switch to
//! the real crate, point `[workspace.dependencies] rand` back at crates.io.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: a source of raw random words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// The seed type (a fixed-size byte array for the provided generators).
    type Seed;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 as the
    /// real `rand` crate does.
    fn seed_from_u64(state: u64) -> Self;
}

/// A distribution that can produce values of type `T` from raw random words.
pub trait Distribution<T> {
    /// Samples a value from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "standard" distribution: full-range integers, `[0, 1)` floats, fair
/// booleans.
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let width = (high as i128 - low as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (low as i128 + offset as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let width = (high as i128 - low as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % width;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let unit: $t = Standard.sample(rng);
                low + unit * (high - low)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                // The endpoint has measure zero; reuse the half-open sampler.
                Self::sample_half_open(rng, low, high)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from this range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        let unit: f64 = Standard.sample(self);
        unit < p
    }

    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Samples a value from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++), mirroring
    /// `rand::rngs::SmallRng` behind the `small_rng` feature.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s.iter().all(|&w| w == 0) {
                s = [1, 2, 3, 4];
            }
            SmallRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-1.5..=1.5f32);
            assert!((-1.5..=1.5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
