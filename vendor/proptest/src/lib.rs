//! A minimal, API-compatible subset of [`proptest`](https://crates.io/crates/proptest),
//! vendored because the build environment has no network access to crates.io.
//!
//! It supports the surface the htsat property tests use:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`], [`prop_oneof!`],
//! * [`strategy::Strategy`] with `prop_map`, `prop_recursive` and `boxed`,
//! * [`arbitrary::any`] for booleans, integers and small tuples,
//! * ranges and tuples of strategies, [`strategy::Just`], and
//!   [`collection::vec`](fn@collection::vec).
//!
//! Differences from real proptest: test cases are generated from a
//! deterministic per-test seed (derived from the test name), and **failing
//! cases are not shrunk** — the panic message reports the failing values
//! instead. That trades minimal counterexamples for zero dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! The test runner: configuration, RNG and case-level error type.

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from an explicit seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Creates a generator seeded from a test name (FNV-1a hash), so each
        /// test explores a stable, distinct case sequence.
        pub fn from_name(name: &str) -> Self {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng::new(hash)
        }

        /// Returns the next raw random word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Returns a uniform `usize` in `[0, bound)`. `bound` must be > 0.
        pub fn below(&mut self, bound: usize) -> usize {
            debug_assert!(bound > 0);
            (self.next_u64() % bound as u64) as usize
        }

        /// Returns a fair boolean.
        pub fn flip(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the string is the formatted message.
        Fail(String),
        /// The case was rejected by [`prop_assume!`](crate::prop_assume).
        Reject(String),
    }

    impl TestCaseError {
        /// Constructs a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Constructs a rejection with the given reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Test-runner configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum number of rejected (assumed-away) cases tolerated.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A configuration running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies and combinators.

    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of [`Strategy::Value`].
    ///
    /// Unlike real proptest there is no value tree or shrinking: a strategy
    /// is just a deterministic function of the RNG state.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `self` generates leaves, and `expand`
        /// wraps an inner strategy into the next level. `depth` bounds the
        /// nesting; the `_desired_size` and `_expected_branch_size` hints are
        /// accepted for API compatibility and ignored.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            expand: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let mut current = self.boxed();
            for _ in 0..depth {
                current = expand(current).boxed();
            }
            current
        }

        /// Erases the strategy type. The result is cheaply cloneable.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of a fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives; backs
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over the given non-empty set of alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % width;
                    (self.start as i128 + offset as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % width;
                    (lo as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

pub mod arbitrary {
    //! Default strategies per type, mirroring `proptest::arbitrary`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical default strategy.
    pub trait Arbitrary: Sized {
        /// The default strategy type.
        type Strategy: Strategy<Value = Self>;

        /// Returns the default strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Returns the default strategy for `T`, mirroring `proptest::arbitrary::any`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Full-range strategy for primitives; the `Arbitrary` impl of `bool`
    /// and the integer types.
    #[derive(Clone, Copy, Debug)]
    pub struct FullRange<T>(std::marker::PhantomData<T>);

    macro_rules! impl_arbitrary_prim {
        ($($t:ty),*) => {$(
            impl Strategy for FullRange<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }

            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;

                fn arbitrary() -> Self::Strategy {
                    FullRange(std::marker::PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for FullRange<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.flip()
        }
    }

    impl Arbitrary for bool {
        type Strategy = FullRange<bool>;

        fn arbitrary() -> Self::Strategy {
            FullRange(std::marker::PhantomData)
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($($name:ident),+) => {
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                type Strategy = ($($name::Strategy,)+);

                fn arbitrary() -> Self::Strategy {
                    ($($name::arbitrary(),)+)
                }
            }
        };
    }

    impl_arbitrary_tuple!(A);
    impl_arbitrary_tuple!(A, B);
    impl_arbitrary_tuple!(A, B, C);
    impl_arbitrary_tuple!(A, B, C, D);
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive size range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Smallest permitted size.
        pub min: usize,
        /// Largest permitted size (inclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min + 1;
            let len = self.size.min + rng.below(span.max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Uniform choice between strategy alternatives (all arms must generate the
/// same value type). Weighted arms are not supported by this subset.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition inside a [`proptest!`] case, failing the case (not
/// panicking directly) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Asserts two expressions are unequal inside a [`proptest!`] case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Rejects the current case (it is regenerated, not counted as a success).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Defines property tests: each `fn name(pattern in strategy, ..) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(unreachable_code)]
        fn $name() {
            let __pt_config: $crate::test_runner::Config = $config;
            let mut __pt_rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let mut __pt_successes: u32 = 0;
            let mut __pt_rejects: u32 = 0;
            while __pt_successes < __pt_config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&$strategy, &mut __pt_rng);)*
                let __pt_case_inputs = format!(
                    concat!($(stringify!($pat), " = {:?}; ",)*),
                    $(&$pat),*
                );
                let __pt_outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __pt_outcome {
                    ::std::result::Result::Ok(()) => __pt_successes += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(why)) => {
                        __pt_rejects += 1;
                        assert!(
                            __pt_rejects <= __pt_config.max_global_rejects,
                            "proptest {}: too many rejected cases (last: {})",
                            stringify!($name),
                            why
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed after {} passing case(s): {}\n  inputs: {}",
                            stringify!($name),
                            __pt_successes,
                            msg,
                            __pt_case_inputs
                        );
                    }
                }
            }
        }
    )*};
}

pub mod prelude {
    //! The common imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module path used in `prop::collection::vec(..)`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u8>> {
        prop::collection::vec(0u8..10, 1..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn generated_vecs_respect_bounds(v in small_vec()) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for &x in &v {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn assume_filters_cases(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_and_just_work(x in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!(x == 1 || x == 2 || x == 5 || x == 6);
        }

        #[test]
        fn recursive_strategies_terminate(n in nested()) {
            prop_assert!(depth(&n) <= 4);
        }
    }

    #[derive(Debug, Clone)]
    enum Nested {
        Leaf,
        Node(Vec<Nested>),
    }

    fn nested() -> BoxedStrategy<Nested> {
        any::<bool>()
            .prop_map(|_| Nested::Leaf)
            .boxed()
            .prop_recursive(3, 16, 3, |inner| {
                prop::collection::vec(inner, 1..3).prop_map(Nested::Node)
            })
    }

    fn depth(n: &Nested) -> usize {
        match n {
            Nested::Leaf => 1,
            Nested::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
        }
    }
}
