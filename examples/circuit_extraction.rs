//! Circuit-structure recovery from a CNF.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example circuit_extraction
//! ```
//!
//! The transformation at the heart of the paper is also useful on its own: it
//! restores a multi-level gate structure from a flat CNF (the problem studied
//! by Roy et al. and Fu & Malik, which the paper generalises). This example
//! generates a QIF-style benchmark instance, runs the transformation, and
//! reports what was recovered: gate groups, variable classification,
//! constrained/unconstrained input partition and the ops reduction.

use htsat::core::{transform, VarClass};
use htsat::instances::families;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let instance = families::qif_chain("extraction-demo", 45, 8, 7);
    let cnf = &instance.cnf;
    println!(
        "instance `{}`: {} variables, {} clauses",
        instance.name,
        cnf.num_vars(),
        cnf.num_clauses()
    );

    let result = transform(cnf)?;
    let stats = &result.stats;
    println!("\nrecovered circuit:");
    println!("  netlist nodes          : {}", result.netlist.num_nodes());
    println!("  logic depth            : {}", result.netlist.depth());
    println!("  gate groups recognised : {}", stats.gate_groups);
    println!("  signature fast-path    : {}", stats.signature_hits);
    println!("  auxiliary constraints  : {}", stats.aux_constraints);
    println!("  constant outputs       : {}", stats.constant_outputs);
    println!("  CNF ops                : {}", stats.cnf_ops);
    println!("  circuit ops            : {}", stats.circuit_ops);
    println!("  ops reduction          : {:.2}x", stats.ops_reduction());
    println!(
        "  transformation time    : {:.2} ms",
        stats.transform_time.as_secs_f64() * 1e3
    );

    let count = |class: VarClass| {
        (1..=cnf.num_vars() as u32)
            .filter(|&v| result.class_of(htsat::cnf::Var::new(v)) == class)
            .count()
    };
    println!("\nvariable classification:");
    println!("  primary inputs     : {}", count(VarClass::PrimaryInput));
    println!("  intermediate       : {}", count(VarClass::Intermediate));
    println!("  primary outputs    : {}", count(VarClass::PrimaryOutput));
    println!("  unused             : {}", count(VarClass::Unused));

    let (constrained, unconstrained) = result.netlist.partition_inputs();
    println!("\ninput partition (paper Fig. 1 colouring):");
    println!("  on constrained paths   : {}", constrained.len());
    println!("  on unconstrained paths : {}", unconstrained.len());

    // Sanity check: a random input assignment that satisfies the circuit's
    // output constraints must satisfy the original CNF.
    let inputs = result.primary_inputs();
    let value_of = |v: htsat::cnf::Var| {
        inputs
            .iter()
            .position(|&p| p == v)
            .map(|i| i % 2 == 0)
            .unwrap_or(false)
    };
    let bits = result.assignment_from_inputs(value_of, |_| false);
    let circuit_ok = result
        .netlist
        .outputs_satisfied(|v| value_of(htsat::cnf::Var::new(v)));
    let cnf_ok = cnf.is_satisfied_by_bits(&bits);
    println!("\nequisatisfiability spot check: circuit={circuit_ok} cnf={cnf_ok}");
    assert_eq!(circuit_ok, cnf_ok);
    Ok(())
}
