//! Quickstart: sample satisfying assignments of a small DIMACS formula.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The example encodes the paper's Fig. 1 formula, prepares it once (the
//! CNF-to-circuit transformation plus kernel compilation) as a
//! [`htsat::core::SampleEngine`], and draws unique satisfying assignments by
//! streaming a per-request session — the prepare-once → mint-sessions →
//! stream shape every sampler in the workspace (and the `htsat-serve`
//! daemon) shares. It prints the variable classification and the achieved
//! throughput.

use htsat::cnf::dimacs;
use htsat::core::{PreparedFormula, SampleEngine, SessionConfig, TransformConfig, VarClass};
use std::error::Error;
use std::time::Duration;

/// The CNF of the paper's Fig. 1 example.
const FIG1: &str = "\
c x2(x1) = not x1 ; x3 = x2 ; x4 = x3
c x5 = (x4 and x11) or (not x4 and x12)
c x7 = x6 ; x8 = x7 ; x9 = not x8
c x10 = (x9 and x13) or (not x9 and x14), constrained to 1
p cnf 14 21
-1 -2 0
1 2 0
-2 3 0
2 -3 0
-3 4 0
3 -4 0
-4 -11 5 0
-4 11 -5 0
4 -12 5 0
4 12 -5 0
-6 7 0
6 -7 0
-7 8 0
7 -8 0
-8 -9 0
8 9 0
-9 -13 10 0
-9 13 -10 0
9 -14 10 0
9 14 -10 0
10 0
";

fn main() -> Result<(), Box<dyn Error>> {
    let cnf = dimacs::parse_str(FIG1)?;
    println!(
        "parsed formula: {} variables, {} clauses",
        cnf.num_vars(),
        cnf.num_clauses()
    );

    // Prepare once: transformation + compilation, reusable across requests.
    let engine = PreparedFormula::prepare(&cnf, &TransformConfig::default())?;
    let result = engine.transform_result();
    println!("\ntransformation:");
    println!("  gate groups recognised : {}", result.stats.gate_groups);
    println!("  CNF ops (2-input eq.)  : {}", result.stats.cnf_ops);
    println!("  circuit ops            : {}", result.stats.circuit_ops);
    println!(
        "  ops reduction          : {:.2}x",
        result.stats.ops_reduction()
    );

    println!("\nvariable classification:");
    for class in [
        VarClass::PrimaryInput,
        VarClass::Intermediate,
        VarClass::PrimaryOutput,
    ] {
        let vars: Vec<String> = (1..=cnf.num_vars() as u32)
            .filter(|&v| result.class_of(htsat::cnf::Var::new(v)) == class)
            .map(|v| format!("x{v}"))
            .collect();
        println!("  {class:?}: {}", vars.join(", "));
    }

    // Mint a cheap per-request session (seeded, so the sequence is
    // reproducible) and collect its stream.
    let report = engine.sample(&SessionConfig::with_seed(42), 100, Duration::from_secs(10))?;
    println!("\nsampling:");
    println!("  unique solutions : {}", report.solutions.len());
    println!("  attempts         : {}", report.attempts);
    println!("  valid rate       : {:.1}%", report.valid_rate() * 100.0);
    println!(
        "  throughput       : {:.0} unique solutions/s",
        report.throughput()
    );

    for solution in report.solutions.iter().take(3) {
        assert!(cnf.is_satisfied_by_bits(solution));
        let rendered: String = solution
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        println!("  example solution : {rendered}");
    }
    Ok(())
}
