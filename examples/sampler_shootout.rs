//! Sampler shootout: compare the transformed-circuit GD sampler against every
//! baseline on one benchmark instance.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example sampler_shootout [instance-name] [target]
//! ```
//!
//! Without arguments it uses the Table II instance `90-10-10-q` (small scale)
//! and a target of 1000 unique solutions — a miniature of the paper's
//! Table II experiment.

use htsat::baselines::{
    CmsGenLike, DiffSamplerLike, QuickSamplerLike, SatSampler, TransformedGdSampler, UniGenLike,
    WalkSatSampler,
};
use htsat::instances::suite::{table2_instance, SuiteScale};
use std::error::Error;
use std::time::Duration;

fn main() -> Result<(), Box<dyn Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "90-10-10-q".to_string());
    let target: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1000);
    let timeout = Duration::from_secs(20);

    let instance = table2_instance(&name, SuiteScale::Small)
        .ok_or_else(|| format!("unknown Table II instance `{name}`"))?;
    println!(
        "instance `{}` ({:?}): {} vars, {} clauses — target {} unique solutions, timeout {:?}",
        instance.name,
        instance.family,
        instance.num_vars(),
        instance.num_clauses(),
        target,
        timeout
    );

    let mut samplers: Vec<Box<dyn SatSampler>> = vec![
        Box::new(TransformedGdSampler::new()),
        Box::new(DiffSamplerLike::new()),
        Box::new(CmsGenLike::new()),
        Box::new(UniGenLike::new()),
        Box::new(QuickSamplerLike::new()),
        Box::new(WalkSatSampler::new()),
    ];

    println!(
        "\n{:<18} {:>10} {:>12} {:>16}",
        "sampler", "unique", "time (s)", "throughput (/s)"
    );
    let mut baseline_best = 0.0f64;
    let mut ours = 0.0f64;
    for sampler in samplers.iter_mut() {
        let run = sampler.sample(&instance.cnf, target, timeout);
        for s in &run.solutions {
            assert!(instance.cnf.is_satisfied_by_bits(s));
        }
        let throughput = run.throughput();
        println!(
            "{:<18} {:>10} {:>12.3} {:>16.1}",
            sampler.name(),
            run.solutions.len(),
            run.elapsed.as_secs_f64(),
            throughput
        );
        if sampler.name() == "transformed-gd" {
            ours = throughput;
        } else {
            baseline_best = baseline_best.max(throughput);
        }
    }
    if baseline_best > 0.0 {
        println!(
            "\nspeedup of transformed-gd over the best baseline: {:.1}x",
            ours / baseline_best
        );
    }
    Ok(())
}
