//! Sampler shootout: compare the transformed-circuit GD sampler against every
//! baseline on one benchmark instance — all through the one
//! [`htsat::core::SampleEngine`] API.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example sampler_shootout [instance-name] [target]
//! ```
//!
//! Without arguments it uses the Table II instance `90-10-10-q` (small scale)
//! and a target of 1000 unique solutions — a miniature of the paper's
//! Table II experiment. Every engine is built by name through
//! [`htsat::baselines::engine_by_name`], streamed with the same seed and the
//! same deadline, and measured identically: the comparison loop contains no
//! per-sampler special cases.

use htsat::baselines::{engine_by_name, ENGINE_NAMES};
use htsat::core::{SessionConfig, TransformConfig};
use htsat::instances::suite::{table2_instance, SuiteScale};
use std::error::Error;
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "90-10-10-q".to_string());
    let target: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1000);
    let timeout = Duration::from_secs(20);

    let instance = table2_instance(&name, SuiteScale::Small)
        .ok_or_else(|| format!("unknown Table II instance `{name}`"))?;
    println!(
        "instance `{}` ({:?}): {} vars, {} clauses — target {} unique solutions, timeout {:?}",
        instance.name,
        instance.family,
        instance.num_vars(),
        instance.num_clauses(),
        target,
        timeout
    );

    println!(
        "\n{:<18} {:>10} {:>12} {:>16}",
        "engine", "unique", "time (s)", "throughput (/s)"
    );
    let mut baseline_best = 0.0f64;
    let mut ours = 0.0f64;
    for engine_name in ENGINE_NAMES {
        // Preparation (transform + compile for "gd") happens once, outside
        // the timed region — the paper's Table II times sampling, and a
        // server would amortise preparation across requests anyway.
        let engine = engine_by_name(engine_name, &instance.cnf, &TransformConfig::default())?;
        let started = Instant::now();
        let mut stream = engine
            .stream(&SessionConfig::with_seed(0))?
            .with_timeout(timeout);
        let mut solutions: Vec<Vec<bool>> = stream.by_ref().take(target).collect();
        solutions.append(&mut stream.drain_ready());
        let elapsed = started.elapsed();
        for s in &solutions {
            assert!(instance.cnf.is_satisfied_by_bits(s));
        }
        let throughput = htsat::runtime::unique_throughput(solutions.len(), elapsed);
        println!(
            "{:<18} {:>10} {:>12.3} {:>16.1}",
            engine_name,
            solutions.len(),
            elapsed.as_secs_f64(),
            throughput
        );
        if engine_name == "gd" {
            ours = throughput;
        } else {
            baseline_best = baseline_best.max(throughput);
        }
    }
    if baseline_best > 0.0 {
        println!(
            "\nspeedup of gd over the best baseline: {:.1}x",
            ours / baseline_best
        );
    }
    Ok(())
}
