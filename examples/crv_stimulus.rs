//! Constrained-random verification (CRV) stimulus generation.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example crv_stimulus
//! ```
//!
//! Hardware verification is the motivating application of the paper's
//! introduction: a testbench needs many *diverse* input patterns that all
//! satisfy the design's interface constraints. This example builds a small
//! bus-transaction constraint circuit (a synthetic "design under test"
//! protocol), Tseitin-encodes it, and uses the gradient-descent sampler to
//! generate a stream of valid stimuli, comparing against a CMSGen-style
//! baseline.

use htsat::baselines::{CmsGenLike, SatSampler};
use htsat::core::{GdSampler, SamplerConfig};
use htsat::instances::tseitin::CircuitEncoder;
use std::error::Error;
use std::time::Duration;

fn main() -> Result<(), Box<dyn Error>> {
    // Interface constraints of a toy bus transaction:
    //   * 8-bit address, 4-bit burst length, 2 mode bits, 1 write-enable;
    //   * the transaction is legal when
    //       (write implies burst != 0) and (mode == 2'b11 forbidden)
    //       and (address MSB set implies mode != 2'b00).
    let mut enc = CircuitEncoder::new();
    let addr: Vec<_> = (0..8).map(|_| enc.input()).collect();
    let burst: Vec<_> = (0..4).map(|_| enc.input()).collect();
    let mode: Vec<_> = (0..2).map(|_| enc.input()).collect();
    let write_en = enc.input();

    let burst_nonzero = enc.or_gate(&burst);
    let write_rule = enc.or_gate(&[write_en.invert(), burst_nonzero]);
    let mode_both = enc.and_gate(&[mode[0], mode[1]]);
    let mode_rule = enc.not_gate(mode_both);
    let mode_any = enc.or_gate(&[mode[0], mode[1]]);
    let msb_rule = enc.or_gate(&[addr[7].invert(), mode_any]);
    let legal = enc.and_gate(&[write_rule, mode_rule, msb_rule]);
    enc.constrain(legal, true);
    let cnf = enc.into_cnf();

    println!(
        "bus-constraint CNF: {} variables, {} clauses",
        cnf.num_vars(),
        cnf.num_clauses()
    );

    // Gradient-descent sampler (the paper's approach).
    let config = SamplerConfig {
        batch_size: 512,
        ..SamplerConfig::default()
    };
    let mut gd = GdSampler::new(&cnf, config)?;
    let gd_report = gd.sample(500, Duration::from_secs(10));
    println!("\ntransformed-GD sampler:");
    println!("  unique legal stimuli : {}", gd_report.solutions.len());
    println!(
        "  throughput           : {:.0} stimuli/s",
        gd_report.throughput()
    );

    // CMSGen-style CPU baseline.
    let mut cms = CmsGenLike::new();
    let cms_run = cms.sample(&cnf, 500, Duration::from_secs(10));
    println!("\ncmsgen-like baseline:");
    println!("  unique legal stimuli : {}", cms_run.solutions.len());
    println!(
        "  throughput           : {:.0} stimuli/s",
        cms_run.throughput()
    );

    // Decode a few stimuli into protocol fields to show they are sensible.
    println!("\nsample stimuli (addr, burst, mode, we):");
    for bits in gd_report.solutions.iter().take(5) {
        let field = |signals: &[htsat::instances::tseitin::Signal]| -> u32 {
            signals
                .iter()
                .enumerate()
                .map(|(i, s)| u32::from(bits[s.var().as_usize()]) << i)
                .sum()
        };
        let a = field(&addr);
        let b = field(&burst);
        let m = field(&mode);
        let w = bits[write_en.var().as_usize()];
        println!("  addr=0x{a:02x} burst={b:2} mode={m} write={w}");
        assert!(cnf.is_satisfied_by_bits(bits));
        assert!(!w || b != 0, "write transactions must have non-zero burst");
        assert_ne!(m, 3, "mode 2'b11 is illegal");
    }
    Ok(())
}
