//! # htsat
//!
//! High-throughput SAT sampling via CNF-to-circuit transformation and
//! gradient descent — a Rust reproduction of *High-Throughput SAT Sampling*
//! (DATE 2025).
//!
//! This facade crate re-exports the workspace members so applications can
//! depend on a single crate:
//!
//! * [`runtime`] — the thread-pool executor and streaming sampling service
//!   ([`htsat_runtime`]),
//! * [`cnf`] — CNF formulas, DIMACS I/O, evaluation ([`htsat_cnf`]),
//! * [`logic`] — Boolean expressions, simplification and netlists
//!   ([`htsat_logic`]),
//! * [`tensor`] — batched tensors and the differentiable circuit engine
//!   ([`htsat_tensor`]),
//! * [`solver`] — the CDCL / DPLL / WalkSAT substrate ([`htsat_solver`]),
//! * [`core`] — the paper's transformation and gradient-descent sampler
//!   ([`htsat_core`]),
//! * [`baselines`] — UniGen-like, CMSGen-like, DiffSampler-like and other
//!   baseline samplers ([`htsat_baselines`]),
//! * [`instances`] — synthetic benchmark-instance generators
//!   ([`htsat_instances`]).
//!
//! # Quickstart
//!
//! ```
//! use htsat::core::{GdSampler, SamplerConfig};
//! use htsat::cnf::dimacs;
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cnf = dimacs::parse_str("p cnf 3 2\n-1 -2 3 0\n3 0\n")?;
//! let mut sampler = GdSampler::new(&cnf, SamplerConfig::default())?;
//! let report = sampler.sample(10, Duration::from_secs(5));
//! for solution in &report.solutions {
//!     assert!(cnf.is_satisfied_by_bits(solution));
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use htsat_baselines as baselines;
pub use htsat_cnf as cnf;
pub use htsat_core as core;
pub use htsat_instances as instances;
pub use htsat_logic as logic;
pub use htsat_runtime as runtime;
pub use htsat_solver as solver;
pub use htsat_tensor as tensor;
