//! `gen-suite` — export the synthetic benchmark suite as DIMACS files.
//!
//! ```sh
//! cargo run --release -p htsat-instances --bin gen_suite -- out_dir [--scale small|paper] [--table2-only]
//! ```
//!
//! Writes one `.cnf` file per instance plus a `MANIFEST.tsv` listing the
//! family, variable count, clause count and generator parameters — useful for
//! running external samplers or solvers on exactly the same instances this
//! repository benchmarks.

use htsat_cnf::dimacs;
use htsat_instances::suite::{full_suite, table2_instances, SuiteScale};
use std::path::PathBuf;

fn main() {
    let mut args = std::env::args().skip(1);
    let out_dir = match args.next() {
        Some(dir) if !dir.starts_with("--") => PathBuf::from(dir),
        _ => {
            eprintln!("usage: gen_suite <output-dir> [--scale small|paper] [--table2-only]");
            std::process::exit(2);
        }
    };
    let mut scale = SuiteScale::Small;
    let mut table2_only = false;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--scale" => match args.next().as_deref() {
                Some("paper") => scale = SuiteScale::Paper,
                Some("small") => scale = SuiteScale::Small,
                other => {
                    eprintln!("invalid --scale value {other:?}");
                    std::process::exit(2);
                }
            },
            "--table2-only" => table2_only = true,
            other => {
                eprintln!("unknown option `{other}`");
                std::process::exit(2);
            }
        }
    }

    let instances = if table2_only {
        table2_instances(scale)
    } else {
        full_suite(scale)
    };
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    }
    let mut manifest = String::from("name\tfamily\tvars\tclauses\tinputs\toutputs\n");
    for instance in &instances {
        let file = out_dir.join(format!("{}.cnf", instance.name.replace('/', "_")));
        if let Err(e) = dimacs::write_file(&instance.cnf, &file) {
            eprintln!("cannot write {}: {e}", file.display());
            std::process::exit(1);
        }
        manifest.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\n",
            instance.name,
            instance.family.label(),
            instance.num_vars(),
            instance.num_clauses(),
            instance.num_inputs,
            instance.num_outputs
        ));
    }
    if let Err(e) = std::fs::write(out_dir.join("MANIFEST.tsv"), manifest) {
        eprintln!("cannot write manifest: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote {} instances ({:?} scale) to {}",
        instances.len(),
        scale,
        out_dir.display()
    );
}
