//! A gate-level circuit builder with Tseitin CNF encoding and simulation.
//!
//! Every gate allocates a fresh CNF variable for its output and emits the
//! standard Tseitin clauses (the CNF signatures of Section III-A of the
//! paper). The builder also records the gate list so the circuit can be
//! simulated; instance generators use the simulation to pick output
//! constraints that are guaranteed to be satisfiable.

use htsat_cnf::{Cnf, Lit, Var};

/// A signal in the circuit: a CNF variable, possibly complemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signal {
    var: Var,
    negated: bool,
}

impl Signal {
    /// The literal representing this signal.
    pub fn lit(self) -> Lit {
        Lit::new(self.var, !self.negated)
    }

    /// The complemented signal (free: no gate or clauses are created).
    pub fn invert(self) -> Signal {
        Signal {
            var: self.var,
            negated: !self.negated,
        }
    }

    /// The underlying CNF variable.
    pub fn var(self) -> Var {
        self.var
    }
}

#[derive(Debug, Clone)]
enum GateOp {
    Input,
    Not(Signal),
    Buf(Signal),
    And(Vec<Signal>),
    Or(Vec<Signal>),
    Xor(Signal, Signal),
    Mux {
        select: Signal,
        when_true: Signal,
        when_false: Signal,
    },
}

/// Builds a combinational circuit while emitting its Tseitin CNF encoding.
#[derive(Debug, Clone, Default)]
pub struct CircuitEncoder {
    cnf: Cnf,
    gates: Vec<(Var, GateOp)>,
    inputs: Vec<Var>,
}

impl CircuitEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        CircuitEncoder::default()
    }

    /// The number of primary inputs allocated so far.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// The primary-input variables in allocation order.
    pub fn inputs(&self) -> &[Var] {
        &self.inputs
    }

    /// Current number of CNF variables.
    pub fn num_vars(&self) -> usize {
        self.cnf.num_vars()
    }

    fn fresh(&mut self, op: GateOp) -> Signal {
        let var = self.cnf.fresh_var();
        self.gates.push((var, op));
        Signal {
            var,
            negated: false,
        }
    }

    /// Allocates a primary input.
    pub fn input(&mut self) -> Signal {
        let s = self.fresh(GateOp::Input);
        self.inputs.push(s.var);
        s
    }

    /// Adds an explicit inverter gate (`out = ¬a`), emitting its clauses.
    pub fn not_gate(&mut self, a: Signal) -> Signal {
        let out = self.fresh(GateOp::Not(a));
        self.cnf.add_clause([out.lit(), a.lit()]);
        self.cnf.add_clause([!out.lit(), !a.lit()]);
        out
    }

    /// Adds a buffer gate (`out = a`), emitting its clauses.
    pub fn buf_gate(&mut self, a: Signal) -> Signal {
        let out = self.fresh(GateOp::Buf(a));
        self.cnf.add_clause([!out.lit(), a.lit()]);
        self.cnf.add_clause([out.lit(), !a.lit()]);
        out
    }

    /// Adds an n-ary AND gate.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn and_gate(&mut self, inputs: &[Signal]) -> Signal {
        assert!(!inputs.is_empty(), "AND gate needs at least one input");
        let out = self.fresh(GateOp::And(inputs.to_vec()));
        let mut wide: Vec<Lit> = vec![out.lit()];
        for i in inputs {
            wide.push(!i.lit());
            self.cnf.add_clause([!out.lit(), i.lit()]);
        }
        self.cnf.add_clause(wide);
        out
    }

    /// Adds an n-ary OR gate.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn or_gate(&mut self, inputs: &[Signal]) -> Signal {
        assert!(!inputs.is_empty(), "OR gate needs at least one input");
        let out = self.fresh(GateOp::Or(inputs.to_vec()));
        let mut wide: Vec<Lit> = vec![!out.lit()];
        for i in inputs {
            wide.push(i.lit());
            self.cnf.add_clause([out.lit(), !i.lit()]);
        }
        self.cnf.add_clause(wide);
        out
    }

    /// Adds a 2-input XOR gate.
    pub fn xor_gate(&mut self, a: Signal, b: Signal) -> Signal {
        let out = self.fresh(GateOp::Xor(a, b));
        self.cnf.add_clause([!out.lit(), a.lit(), b.lit()]);
        self.cnf.add_clause([!out.lit(), !a.lit(), !b.lit()]);
        self.cnf.add_clause([out.lit(), !a.lit(), b.lit()]);
        self.cnf.add_clause([out.lit(), a.lit(), !b.lit()]);
        out
    }

    /// Adds a 2:1 multiplexer: `out = select ? when_true : when_false`,
    /// encoded with the four clauses of the paper's Eq. (5).
    pub fn mux_gate(&mut self, select: Signal, when_true: Signal, when_false: Signal) -> Signal {
        let out = self.fresh(GateOp::Mux {
            select,
            when_true,
            when_false,
        });
        self.cnf
            .add_clause([!select.lit(), !when_true.lit(), out.lit()]);
        self.cnf
            .add_clause([!select.lit(), when_true.lit(), !out.lit()]);
        self.cnf
            .add_clause([select.lit(), !when_false.lit(), out.lit()]);
        self.cnf
            .add_clause([select.lit(), when_false.lit(), !out.lit()]);
        out
    }

    /// A full adder: returns `(sum, carry)`.
    pub fn full_adder(&mut self, a: Signal, b: Signal, c: Signal) -> (Signal, Signal) {
        let ab = self.xor_gate(a, b);
        let sum = self.xor_gate(ab, c);
        let and1 = self.and_gate(&[a, b]);
        let and2 = self.and_gate(&[ab, c]);
        let carry = self.or_gate(&[and1, and2]);
        (sum, carry)
    }

    /// Constrains `signal` to a constant value with a unit clause.
    pub fn constrain(&mut self, signal: Signal, value: bool) {
        let lit = if value { signal.lit() } else { !signal.lit() };
        self.cnf.add_clause([lit]);
    }

    /// Attaches a comment to the CNF.
    pub fn comment(&mut self, text: impl Into<String>) {
        self.cnf.add_comment(text);
    }

    /// Simulates the circuit under the given input values (indexed in input
    /// allocation order) and returns the value of every signal variable.
    pub fn simulate(&self, input_values: &[bool]) -> Vec<bool> {
        let mut values = vec![false; self.cnf.num_vars()];
        let mut input_idx = 0usize;
        let signal_value = |values: &[bool], s: Signal| values[s.var.as_usize()] ^ s.negated;
        for (var, op) in &self.gates {
            let v = match op {
                GateOp::Input => {
                    let value = input_values.get(input_idx).copied().unwrap_or(false);
                    input_idx += 1;
                    value
                }
                GateOp::Not(a) => !signal_value(&values, *a),
                GateOp::Buf(a) => signal_value(&values, *a),
                GateOp::And(ins) => ins.iter().all(|s| signal_value(&values, *s)),
                GateOp::Or(ins) => ins.iter().any(|s| signal_value(&values, *s)),
                GateOp::Xor(a, b) => signal_value(&values, *a) ^ signal_value(&values, *b),
                GateOp::Mux {
                    select,
                    when_true,
                    when_false,
                } => {
                    if signal_value(&values, *select) {
                        signal_value(&values, *when_true)
                    } else {
                        signal_value(&values, *when_false)
                    }
                }
            };
            values[var.as_usize()] = v;
        }
        values
    }

    /// The value of a signal in a simulation result.
    pub fn signal_value(&self, values: &[bool], signal: Signal) -> bool {
        values[signal.var.as_usize()] ^ signal.negated
    }

    /// Finalises the encoder and returns the CNF.
    pub fn into_cnf(self) -> Cnf {
        self.cnf
    }

    /// A reference to the CNF built so far.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively checks that the Tseitin encoding of a small circuit agrees
    /// with its simulation on every input assignment.
    fn check_encoding<F>(build: F, num_inputs: usize)
    where
        F: Fn(&mut CircuitEncoder, &[Signal]) -> Signal,
    {
        let mut enc = CircuitEncoder::new();
        let inputs: Vec<Signal> = (0..num_inputs).map(|_| enc.input()).collect();
        let out = build(&mut enc, &inputs);
        for mask in 0..(1u32 << num_inputs) {
            let input_values: Vec<bool> = (0..num_inputs).map(|i| (mask >> i) & 1 == 1).collect();
            let sim = enc.simulate(&input_values);
            // The simulated assignment must satisfy the CNF.
            assert!(
                enc.cnf().is_satisfied_by_bits(&sim),
                "simulation must satisfy the encoding (mask {mask:b})"
            );
            // And flipping the output value must falsify it.
            let mut flipped = sim.clone();
            let out_idx = out.var().as_usize();
            flipped[out_idx] = !flipped[out_idx];
            assert!(
                !enc.cnf().is_satisfied_by_bits(&flipped),
                "flipping the output must violate the encoding (mask {mask:b})"
            );
        }
    }

    #[test]
    fn and_or_not_encodings_are_consistent() {
        check_encoding(|enc, ins| enc.and_gate(ins), 3);
        check_encoding(|enc, ins| enc.or_gate(ins), 3);
        check_encoding(|enc, ins| enc.not_gate(ins[0]), 1);
        check_encoding(|enc, ins| enc.buf_gate(ins[0]), 1);
    }

    #[test]
    fn xor_and_mux_encodings_are_consistent() {
        check_encoding(|enc, ins| enc.xor_gate(ins[0], ins[1]), 2);
        check_encoding(|enc, ins| enc.mux_gate(ins[0], ins[1], ins[2]), 3);
    }

    #[test]
    fn full_adder_counts_ones() {
        let mut enc = CircuitEncoder::new();
        let a = enc.input();
        let b = enc.input();
        let c = enc.input();
        let (sum, carry) = enc.full_adder(a, b, c);
        for mask in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|i| (mask >> i) & 1 == 1).collect();
            let ones = bits.iter().filter(|&&x| x).count();
            let sim = enc.simulate(&bits);
            assert_eq!(enc.signal_value(&sim, sum), ones % 2 == 1);
            assert_eq!(enc.signal_value(&sim, carry), ones >= 2);
            assert!(enc.cnf().is_satisfied_by_bits(&sim));
        }
    }

    #[test]
    fn constrain_restricts_solutions() {
        let mut enc = CircuitEncoder::new();
        let a = enc.input();
        let b = enc.input();
        let g = enc.and_gate(&[a, b]);
        enc.constrain(g, true);
        let cnf = enc.into_cnf();
        // Only a=b=1 satisfies the constrained circuit.
        assert!(cnf.is_satisfied_by_bits(&[true, true, true]));
        assert!(!cnf.is_satisfied_by_bits(&[true, false, false]));
        assert!(!cnf.is_satisfied_by_bits(&[true, false, true]));
    }

    #[test]
    fn inverted_signals_need_no_extra_clauses() {
        let mut enc = CircuitEncoder::new();
        let a = enc.input();
        let before = enc.cnf().num_clauses();
        let na = a.invert();
        assert_eq!(enc.cnf().num_clauses(), before);
        assert_eq!(na.lit(), !a.lit());
        assert_eq!(na.invert(), a);
    }

    #[test]
    fn simulation_defaults_missing_inputs_to_false() {
        let mut enc = CircuitEncoder::new();
        let a = enc.input();
        let b = enc.input();
        let g = enc.or_gate(&[a, b]);
        let sim = enc.simulate(&[true]);
        assert!(enc.signal_value(&sim, g));
    }
}
