//! # htsat-instances
//!
//! Synthetic benchmark-instance generators for the high-throughput SAT
//! sampling library.
//!
//! The paper evaluates on 60 instances of a public sampling benchmark suite
//! (Meel, "Model counting and uniform sampling instances", Zenodo 3793090),
//! spanning four families referenced in Table II:
//!
//! * `or-*` — OR/AND tree circuits over many free inputs,
//! * `*-q` — QIF-style chains of buffers/inverters joined by multiplexers,
//! * `s15850a_*` — CNFs of a large ISCAS'89-class sequential circuit with a
//!   handful of constrained outputs,
//! * `Prod-*` — product (multiplier-like) circuits with very large CNFs.
//!
//! The original files are not redistributable here, so this crate generates
//! structurally equivalent instances: each family is built as a gate-level
//! circuit, Tseitin-encoded to CNF ([`tseitin::CircuitEncoder`]), and its
//! outputs are constrained to values observed under a random simulation so
//! every generated instance is guaranteed to be satisfiable (and, by
//! construction, to have a large solution space). `DESIGN.md` documents the
//! substitution.
//!
//! # Example
//!
//! ```
//! use htsat_instances::{families, suite};
//!
//! let instance = families::or_chain("or-demo", 20, 2, 7);
//! assert!(instance.cnf.num_clauses() > 0);
//!
//! let table2 = suite::table2_instances(suite::SuiteScale::Small);
//! assert_eq!(table2.len(), 14);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod families;
pub mod suite;
pub mod tseitin;

use htsat_cnf::Cnf;

/// The benchmark family an instance belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// `or-*`: OR/AND tree circuits.
    OrChain,
    /// `*-q`: QIF-style buffer/inverter chains with multiplexers.
    Qif,
    /// `s15850a_*`: large ISCAS-like random-logic circuits.
    IscasLike,
    /// `Prod-*`: multiplier-style product circuits.
    Product,
    /// `mult-*`: industrial-style multipliers (array core plus parity,
    /// overflow-flag and zero-detect post-processing).
    Multiplier,
}

impl Family {
    /// A short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Family::OrChain => "or",
            Family::Qif => "qif",
            Family::IscasLike => "iscas",
            Family::Product => "prod",
            Family::Multiplier => "mult",
        }
    }
}

/// A generated benchmark instance.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Instance name (mirrors the paper's naming scheme).
    pub name: String,
    /// The family the instance belongs to.
    pub family: Family,
    /// The CNF formula.
    pub cnf: Cnf,
    /// Number of circuit-level primary inputs used during generation.
    pub num_inputs: usize,
    /// Number of circuit-level outputs constrained during generation.
    pub num_outputs: usize,
}

impl Instance {
    /// Number of variables of the CNF.
    pub fn num_vars(&self) -> usize {
        self.cnf.num_vars()
    }

    /// Number of clauses of the CNF.
    pub fn num_clauses(&self) -> usize {
        self.cnf.num_clauses()
    }
}
