//! The synthetic counterpart of the paper's 60-instance benchmark suite.
//!
//! [`table2_instances`] returns the 14 representative instances listed in
//! Table II (same names, same family mix, comparable primary-input counts);
//! [`full_suite`] returns the Fig. 2 suite, grown to 66 instances (larger
//! `Prod-*` sizes and the industrial `mult-*` family beyond the paper's
//! 60). Because our
//! instances are generated rather than downloaded, each instance can be
//! produced at two scales: [`SuiteScale::Paper`] approximates the paper's
//! variable/clause counts, while [`SuiteScale::Small`] shrinks every instance
//! by roughly an order of magnitude so tests and quick benchmark runs finish
//! in seconds.

use crate::{families, Instance};

/// How large the generated instances should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SuiteScale {
    /// Shrunk instances for tests and quick runs.
    #[default]
    Small,
    /// Sizes approximating the paper's Table II.
    Paper,
}

impl SuiteScale {
    /// Shrinks a size parameter of the *large* families (ISCAS-like and
    /// product circuits). The `or-*` and `*-q` families are small in the
    /// original benchmark (a few hundred variables), so they are generated at
    /// paper size even under [`SuiteScale::Small`].
    fn shrink(self, value: usize, minimum: usize) -> usize {
        match self {
            SuiteScale::Paper => value,
            SuiteScale::Small => (value / 10).max(minimum),
        }
    }
}

/// Specification of one suite entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Spec {
    name: &'static str,
    family: SpecFamily,
    inputs: usize,
    outputs: usize,
    /// Family-specific size knob: gate count (iscas), chain depth (qif) or
    /// operand width (product). Unused for the or family.
    size: usize,
    seed: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpecFamily {
    Or,
    Qif,
    Iscas,
    Prod,
}

impl Spec {
    fn generate(&self, scale: SuiteScale) -> Instance {
        match self.family {
            SpecFamily::Or => families::or_chain(self.name, self.inputs, self.outputs, self.seed),
            SpecFamily::Qif => families::qif_chain(self.name, self.inputs, self.size, self.seed),
            SpecFamily::Iscas => families::iscas_like(
                self.name,
                scale.shrink(self.inputs, 16),
                scale.shrink(self.size, 64),
                self.outputs,
                self.seed,
            ),
            SpecFamily::Prod => families::product(self.name, scale.shrink(self.size, 4), self.seed),
        }
    }
}

/// The 14 representative instances of Table II.
const TABLE2: [Spec; 14] = [
    Spec {
        name: "or-50-10-7-UC-10",
        family: SpecFamily::Or,
        inputs: 50,
        outputs: 4,
        size: 0,
        seed: 0x0150,
    },
    Spec {
        name: "or-60-20-10-UC-10",
        family: SpecFamily::Or,
        inputs: 60,
        outputs: 5,
        size: 0,
        seed: 0x0160,
    },
    Spec {
        name: "or-70-5-5-UC-10",
        family: SpecFamily::Or,
        inputs: 69,
        outputs: 7,
        size: 0,
        seed: 0x0170,
    },
    Spec {
        name: "or-100-20-8-UC-10",
        family: SpecFamily::Or,
        inputs: 98,
        outputs: 10,
        size: 0,
        seed: 0x0190,
    },
    Spec {
        name: "75-10-1-q",
        family: SpecFamily::Qif,
        inputs: 83,
        outputs: 1,
        size: 12,
        seed: 0x7511,
    },
    Spec {
        name: "75-10-10-q",
        family: SpecFamily::Qif,
        inputs: 79,
        outputs: 1,
        size: 12,
        seed: 0x7520,
    },
    Spec {
        name: "90-10-1-q",
        family: SpecFamily::Qif,
        inputs: 51,
        outputs: 1,
        size: 20,
        seed: 0x9011,
    },
    Spec {
        name: "90-10-10-q",
        family: SpecFamily::Qif,
        inputs: 31,
        outputs: 1,
        size: 28,
        seed: 0x9020,
    },
    Spec {
        name: "s15850a_3_2",
        family: SpecFamily::Iscas,
        inputs: 600,
        outputs: 3,
        size: 10_000,
        seed: 0x1585,
    },
    Spec {
        name: "s15850a_7_4",
        family: SpecFamily::Iscas,
        inputs: 600,
        outputs: 7,
        size: 10_000,
        seed: 0x1586,
    },
    Spec {
        name: "s15850a_15_7",
        family: SpecFamily::Iscas,
        inputs: 600,
        outputs: 15,
        size: 10_000,
        seed: 0x1587,
    },
    Spec {
        name: "Prod-8",
        family: SpecFamily::Prod,
        inputs: 293,
        outputs: 2,
        size: 72,
        seed: 0x0808,
    },
    Spec {
        name: "Prod-20",
        family: SpecFamily::Prod,
        inputs: 677,
        outputs: 2,
        size: 120,
        seed: 0x2020,
    },
    Spec {
        name: "Prod-32",
        family: SpecFamily::Prod,
        inputs: 1061,
        outputs: 2,
        size: 160,
        seed: 0x3232,
    },
];

/// Generates the 14 representative Table II instances.
pub fn table2_instances(scale: SuiteScale) -> Vec<Instance> {
    TABLE2.iter().map(|s| s.generate(scale)).collect()
}

/// Generates one Table II instance by name, if it exists.
pub fn table2_instance(name: &str, scale: SuiteScale) -> Option<Instance> {
    TABLE2
        .iter()
        .find(|s| s.name == name)
        .map(|s| s.generate(scale))
}

/// Names of the 14 Table II instances, in table order.
pub fn table2_names() -> Vec<&'static str> {
    TABLE2.iter().map(|s| s.name).collect()
}

/// Generates the full suite used for the paper's Fig. 2, grown past the
/// paper's 60 instances.
///
/// The suite contains the 14 Table II instances plus additional instances
/// drawn from the same four families at varied sizes and seeds — including
/// product circuits larger than the Table-II stand-ins — and the
/// industrial-style `mult-*` multiplier family (66 instances in total).
pub fn full_suite(scale: SuiteScale) -> Vec<Instance> {
    let mut instances = table2_instances(scale);
    // or-* variants.
    for (i, inputs) in [30usize, 40, 55, 65, 75, 80, 85, 90, 95, 100, 110, 120]
        .iter()
        .enumerate()
    {
        let name = format!("or-{inputs}-10-{}-UC-20", i + 1);
        instances.push(families::or_chain(
            &name,
            *inputs,
            2 + i % 5,
            0x4000 + i as u64,
        ));
    }
    // *-q variants.
    for (i, (inputs, depth)) in [
        (45usize, 8usize),
        (55, 10),
        (60, 12),
        (65, 14),
        (70, 10),
        (75, 16),
        (80, 8),
        (85, 12),
        (90, 14),
        (95, 10),
        (100, 12),
        (105, 16),
    ]
    .iter()
    .enumerate()
    {
        let name = format!("{}-10-{}-q", inputs, i + 1);
        instances.push(families::qif_chain(
            &name,
            *inputs,
            *depth,
            0x5000 + i as u64,
        ));
    }
    // ISCAS-like variants (smaller circuits from the same class).
    for (i, (inputs, gates, outputs)) in [
        (150usize, 1_500usize, 2usize),
        (200, 2_500, 3),
        (250, 3_500, 4),
        (300, 4_500, 5),
        (350, 5_500, 6),
        (400, 6_500, 7),
        (450, 7_500, 8),
        (500, 8_500, 9),
        (550, 9_500, 10),
        (600, 10_500, 12),
        (620, 11_000, 14),
    ]
    .iter()
    .enumerate()
    {
        let name = format!("s13207a_{}_{}", i + 1, outputs);
        instances.push(families::iscas_like(
            &name,
            scale.shrink(*inputs, 16),
            scale.shrink(*gates, 64),
            *outputs,
            0x6000 + i as u64,
        ));
    }
    // Product variants. The tail entries (160/192/224 bits) extend the
    // family beyond the Table-II stand-ins toward the benchmark's largest
    // product instances.
    for (i, bits) in [
        16usize, 24, 36, 48, 56, 64, 80, 96, 104, 128, 144, 160, 192, 224,
    ]
    .iter()
    .enumerate()
    {
        let name = format!("Prod-{}", i * 2 + 5);
        instances.push(families::product(
            &name,
            scale.shrink(*bits, 4),
            0x7000 + i as u64,
        ));
    }
    // Industrial-style multiplier variants (array core plus parity /
    // overflow-flag / zero-detect post-processing).
    for (i, bits) in [48usize, 80, 112].iter().enumerate() {
        let name = format!("mult-ind-{bits}");
        instances.push(families::industrial_multiplier(
            &name,
            scale.shrink(*bits, 4),
            0x8000 + i as u64,
        ));
    }
    instances
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Family;

    #[test]
    fn table2_has_fourteen_named_instances() {
        let instances = table2_instances(SuiteScale::Small);
        assert_eq!(instances.len(), 14);
        assert_eq!(table2_names().len(), 14);
        for (inst, name) in instances.iter().zip(table2_names()) {
            assert_eq!(inst.name, name);
            assert!(inst.num_clauses() > 0);
        }
    }

    #[test]
    fn table2_lookup_by_name() {
        let inst = table2_instance("Prod-8", SuiteScale::Small).expect("exists");
        assert_eq!(inst.family, Family::Product);
        assert!(table2_instance("nope", SuiteScale::Small).is_none());
    }

    #[test]
    fn full_suite_has_sixty_six_instances_with_unique_names() {
        let suite = full_suite(SuiteScale::Small);
        assert_eq!(suite.len(), 66);
        let names: std::collections::HashSet<&str> =
            suite.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names.len(), 66);
    }

    #[test]
    fn full_suite_covers_all_families() {
        let suite = full_suite(SuiteScale::Small);
        for family in [
            Family::OrChain,
            Family::Qif,
            Family::IscasLike,
            Family::Product,
        ] {
            assert!(
                suite.iter().filter(|i| i.family == family).count() >= 10,
                "family {family:?} under-represented"
            );
        }
        assert!(
            suite
                .iter()
                .filter(|i| i.family == Family::Multiplier)
                .count()
                >= 3,
            "industrial multiplier family missing"
        );
    }

    #[test]
    fn grown_product_sizes_outgrow_the_table2_standins() {
        // The small-scale suite is cheap to generate in full; the tail
        // product entries must outgrow every Table-II product stand-in.
        let suite = full_suite(SuiteScale::Small);
        let vars_of = |name: &str| {
            suite
                .iter()
                .find(|i| i.name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .num_vars()
        };
        // Prod-31 (224-bit operands, shrunk 10x under Small) dwarfs the
        // largest Table II product (160-bit operands, same shrink).
        assert!(vars_of("Prod-31") > vars_of("Prod-32"));
        assert!(vars_of("mult-ind-112") > vars_of("mult-ind-48"));
    }

    #[test]
    fn paper_scale_is_larger_than_small_scale_for_large_families() {
        let small = table2_instance("s15850a_3_2", SuiteScale::Small).expect("exists");
        let paper = table2_instance("s15850a_3_2", SuiteScale::Paper).expect("exists");
        assert!(paper.num_vars() > small.num_vars());
        assert!(paper.num_clauses() > small.num_clauses());
        // Small families are identical at both scales.
        let q_small = table2_instance("75-10-1-q", SuiteScale::Small).expect("exists");
        let q_paper = table2_instance("75-10-1-q", SuiteScale::Paper).expect("exists");
        assert_eq!(q_small.num_vars(), q_paper.num_vars());
    }

    #[test]
    fn paper_scale_sizes_are_in_the_right_ballpark() {
        // The qif instance should have a few hundred variables, like the
        // paper's 75-10-1-q (452 vars / 443 clauses).
        let inst = table2_instance("75-10-1-q", SuiteScale::Paper).expect("exists");
        assert!(
            inst.num_vars() > 150 && inst.num_vars() < 2_000,
            "{}",
            inst.num_vars()
        );
        // The or instance mirrors or-50-10-7-UC-10 (100 vars / 254 clauses).
        let or = table2_instance("or-50-10-7-UC-10", SuiteScale::Paper).expect("exists");
        assert!(
            or.num_vars() >= 50 && or.num_vars() < 400,
            "{}",
            or.num_vars()
        );
    }
}
