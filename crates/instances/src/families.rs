//! Generators for the four benchmark families of the paper's evaluation.
//!
//! Every generator builds a gate-level circuit, Tseitin-encodes it, simulates
//! it under one random input vector and constrains the selected outputs to
//! the simulated values — so every instance is satisfiable by construction
//! and retains a large solution space (only a few outputs are pinned).

use crate::tseitin::{CircuitEncoder, Signal};
use crate::{Family, Instance};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_inputs(rng: &mut SmallRng, n: usize) -> Vec<bool> {
    (0..n).map(|_| rng.gen_bool(0.5)).collect()
}

/// Constrains `outputs` to their simulated values, guaranteeing
/// satisfiability, and returns the finished instance.
fn finish(
    mut enc: CircuitEncoder,
    outputs: &[Signal],
    name: &str,
    family: Family,
    rng: &mut SmallRng,
) -> Instance {
    let num_inputs = enc.num_inputs();
    let input_values = random_inputs(rng, num_inputs);
    let sim = enc.simulate(&input_values);
    let targets: Vec<bool> = outputs.iter().map(|&o| enc.signal_value(&sim, o)).collect();
    for (&o, &t) in outputs.iter().zip(targets.iter()) {
        enc.constrain(o, t);
    }
    enc.comment(format!("synthetic {} instance `{}`", family.label(), name));
    Instance {
        name: name.to_string(),
        family,
        cnf: enc.into_cnf(),
        num_inputs,
        num_outputs: outputs.len(),
    }
}

/// `or-*` family: a forest of small OR/AND trees over many free inputs whose
/// roots are combined into a few constrained outputs.
///
/// Mirrors the shape of the benchmark's `or-k-n-m-UC-*` instances: roughly
/// `2×` as many CNF variables as circuit inputs and ~2.5 clauses per
/// variable.
pub fn or_chain(name: &str, num_inputs: usize, num_outputs: usize, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut enc = CircuitEncoder::new();
    let inputs: Vec<Signal> = (0..num_inputs.max(2)).map(|_| enc.input()).collect();

    // Pair inputs into alternating OR / AND nodes, then reduce each output's
    // slice of nodes with an OR tree.
    let mut layer: Vec<Signal> = Vec::new();
    for pair in inputs.chunks(2) {
        let gate = if pair.len() == 1 {
            pair[0]
        } else if rng.gen_bool(0.6) {
            enc.or_gate(pair)
        } else {
            enc.and_gate(pair)
        };
        layer.push(gate);
    }
    let num_outputs = num_outputs.clamp(1, layer.len());
    let chunk = layer.len().div_ceil(num_outputs);
    let mut outputs = Vec::new();
    for group in layer.chunks(chunk) {
        let mut acc = group[0];
        for &g in &group[1..] {
            acc = if rng.gen_bool(0.8) {
                enc.or_gate(&[acc, g])
            } else {
                enc.and_gate(&[acc, g])
            };
        }
        outputs.push(acc);
    }
    finish(enc, &outputs, name, Family::OrChain, &mut rng)
}

/// `*-q` family (QIF-style): long buffer/inverter chains fed by free inputs,
/// joined pairwise by multiplexers into a single constrained output — the
/// structure of the paper's Fig. 1 example scaled up.
pub fn qif_chain(name: &str, num_inputs: usize, chain_depth: usize, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut enc = CircuitEncoder::new();
    let num_inputs = num_inputs.max(3);
    let inputs: Vec<Signal> = (0..num_inputs).map(|_| enc.input()).collect();

    // Every third input seeds a buffer/inverter chain used as a MUX select;
    // the other two become the MUX data inputs.
    let mut mux_outputs = Vec::new();
    for triple in inputs.chunks(3) {
        if triple.len() < 3 {
            // Leftover inputs stay unconstrained (pure unconstrained paths).
            continue;
        }
        let mut select = triple[0];
        for level in 0..chain_depth.max(1) {
            select = if level % 3 == 2 {
                enc.not_gate(select)
            } else {
                enc.buf_gate(select)
            };
        }
        mux_outputs.push(enc.mux_gate(select, triple[1], triple[2]));
    }
    // Join the MUX outputs with a chain of MUXes driven by chained selects.
    let mut acc = mux_outputs[0];
    for (i, &m) in mux_outputs.iter().enumerate().skip(1) {
        let select_source = inputs[i % inputs.len()];
        let mut select = select_source;
        for _ in 0..(chain_depth / 2).max(1) {
            select = enc.buf_gate(select);
        }
        if rng.gen_bool(0.5) {
            select = enc.not_gate(select);
        }
        acc = enc.mux_gate(select, acc, m);
    }
    finish(enc, &[acc], name, Family::Qif, &mut rng)
}

/// `s15850a_*`-like family: a wide, deep random-logic DAG of 2-input
/// AND/OR/XOR/NOT gates over many inputs, with a few observed outputs
/// constrained.
pub fn iscas_like(
    name: &str,
    num_inputs: usize,
    num_gates: usize,
    num_outputs: usize,
    seed: u64,
) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut enc = CircuitEncoder::new();
    let num_inputs = num_inputs.max(4);
    let mut signals: Vec<Signal> = (0..num_inputs).map(|_| enc.input()).collect();

    for _ in 0..num_gates {
        // Bias fan-in selection towards recent signals to build depth.
        let pick = |rng: &mut SmallRng, signals: &[Signal]| {
            let n = signals.len();
            let recent_window = (n / 4).max(8).min(n);
            if rng.gen_bool(0.7) {
                signals[n - 1 - rng.gen_range(0..recent_window)]
            } else {
                signals[rng.gen_range(0..n)]
            }
        };
        let a = pick(&mut rng, &signals);
        let b = pick(&mut rng, &signals);
        let g = match rng.gen_range(0..10) {
            0..=3 => enc.and_gate(&[a, b]),
            4..=7 => enc.or_gate(&[a, b]),
            8 => enc.xor_gate(a, b),
            _ => enc.not_gate(a),
        };
        signals.push(g);
    }
    let num_outputs = num_outputs.clamp(1, signals.len());
    let outputs: Vec<Signal> = (0..num_outputs)
        .map(|i| signals[signals.len() - 1 - i * 7 % signals.len().max(1)])
        .collect();
    finish(enc, &outputs, name, Family::IscasLike, &mut rng)
}

/// Builds an array multiplier over two `bits`-wide free operands: AND
/// partial products accumulated with ripple-carry full-adder rows. Returns
/// the product bits, least significant first. Shared by the `Prod-*` and
/// `mult-*` families.
fn multiplier_array(enc: &mut CircuitEncoder, bits: usize) -> Vec<Signal> {
    let a: Vec<Signal> = (0..bits).map(|_| enc.input()).collect();
    let b: Vec<Signal> = (0..bits).map(|_| enc.input()).collect();

    // Partial products.
    let mut rows: Vec<Vec<Signal>> = Vec::with_capacity(bits);
    for &bj in &b {
        let mut row = Vec::with_capacity(bits);
        for &ai in &a {
            row.push(enc.and_gate(&[ai, bj]));
        }
        rows.push(row);
    }
    // Ripple-carry accumulation of the shifted rows.
    let mut acc: Vec<Signal> = rows[0].clone();
    for (j, row) in rows.iter().enumerate().skip(1) {
        let mut next: Vec<Signal> = Vec::new();
        // Low bits of acc below the shift are already final.
        next.extend_from_slice(&acc[..j.min(acc.len())]);
        let mut carry: Option<Signal> = None;
        for (k, &pp) in row.iter().enumerate() {
            let position = j + k;
            let existing = acc.get(position).copied();
            let (sum, c) = match (existing, carry) {
                (Some(x), Some(cin)) => enc.full_adder(x, pp, cin),
                (Some(x), None) => {
                    let s = enc.xor_gate(x, pp);
                    let c = enc.and_gate(&[x, pp]);
                    (s, c)
                }
                (None, Some(cin)) => {
                    let s = enc.xor_gate(pp, cin);
                    let c = enc.and_gate(&[pp, cin]);
                    (s, c)
                }
                (None, None) => (pp, enc.and_gate(&[pp, pp])),
            };
            next.push(sum);
            carry = Some(c);
        }
        if let Some(c) = carry {
            next.push(c);
        }
        acc = next;
    }
    acc
}

/// `Prod-*` family: an array multiplier over two `bits`-wide operands built
/// from AND partial products and full-adder rows, with two product bits
/// constrained — a dense, arithmetic-heavy CNF like the benchmark's product
/// instances.
pub fn product(name: &str, bits: usize, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut enc = CircuitEncoder::new();
    let bits = bits.max(2);
    let acc = multiplier_array(&mut enc, bits);
    // Constrain two bits of the product, as in the benchmark's Prod instances
    // (few primary outputs over a very large CNF).
    let hi = acc[acc.len() - 1];
    let mid = acc[acc.len() / 2];
    finish(enc, &[hi, mid], name, Family::Product, &mut rng)
}

/// `mult-*` family (industrial-style multiplier): the same array-multiplier
/// core as [`product`], post-processed the way synthesized arithmetic
/// blocks are — a parity (XOR) tree over the product, a sticky OR-reduction
/// over the high half (an overflow/status flag) and a zero-detect NOR over
/// the low half. Parity, flag, zero-detect and one mid product bit are
/// constrained, so the CNF is XOR-denser and more widely observed than the
/// plain `Prod-*` instances while staying satisfiable by construction.
pub fn industrial_multiplier(name: &str, bits: usize, seed: u64) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut enc = CircuitEncoder::new();
    let bits = bits.max(2);
    let acc = multiplier_array(&mut enc, bits);

    // Parity tree over every product bit.
    let mut parity = acc[0];
    for &bit in &acc[1..] {
        parity = enc.xor_gate(parity, bit);
    }
    // Sticky overflow flag: OR-reduction over the high half of the product.
    let high_half = &acc[acc.len() / 2..];
    let mut flag = high_half[0];
    for &bit in &high_half[1..] {
        flag = enc.or_gate(&[flag, bit]);
    }
    // Zero-detect on the low half: NOT(OR(low bits)).
    let low_half = &acc[..acc.len() / 2];
    let mut any_low = low_half[0];
    for &bit in &low_half[1..] {
        any_low = enc.or_gate(&[any_low, bit]);
    }
    let zero_low = enc.not_gate(any_low);

    let mid = acc[acc.len() / 2];
    finish(
        enc,
        &[parity, flag, zero_low, mid],
        name,
        Family::Multiplier,
        &mut rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsat_solver::{CdclSolver, SolveResult};

    fn assert_satisfiable(instance: &Instance) {
        match CdclSolver::new(&instance.cnf).solve() {
            SolveResult::Sat(model) => assert!(instance.cnf.is_satisfied_by_bits(&model)),
            other => panic!("instance {} should be SAT, got {other:?}", instance.name),
        }
    }

    #[test]
    fn or_chain_is_satisfiable_and_sized() {
        let inst = or_chain("or-20-test", 20, 2, 1);
        assert!(inst.num_vars() >= 20);
        assert!(inst.num_clauses() > inst.num_vars());
        assert_satisfiable(&inst);
    }

    #[test]
    fn qif_chain_is_satisfiable_and_deep() {
        let inst = qif_chain("qif-test", 15, 4, 2);
        assert!(inst.num_vars() > inst.num_inputs * 2);
        assert_satisfiable(&inst);
    }

    #[test]
    fn iscas_like_is_satisfiable() {
        let inst = iscas_like("iscas-test", 30, 120, 3, 3);
        assert!(inst.num_vars() >= 150);
        assert_eq!(inst.num_outputs, 3);
        assert_satisfiable(&inst);
    }

    #[test]
    fn product_is_satisfiable_and_dense() {
        let inst = product("prod-test", 5, 4);
        assert!(inst.num_clauses() as f64 / inst.num_vars() as f64 > 2.0);
        assert_satisfiable(&inst);
    }

    #[test]
    fn industrial_multiplier_is_satisfiable_and_xor_dense() {
        let inst = industrial_multiplier("mult-test", 6, 9);
        assert_eq!(inst.family, Family::Multiplier);
        assert_eq!(inst.num_outputs, 4);
        assert!(inst.num_clauses() as f64 / inst.num_vars() as f64 > 2.0);
        // The parity/flag/zero-detect post-processing makes it strictly
        // bigger than the plain product of the same width.
        let plain = product("prod-ref", 6, 9);
        assert!(inst.num_vars() > plain.num_vars());
        assert_satisfiable(&inst);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = or_chain("or-det", 16, 2, 42);
        let b = or_chain("or-det", 16, 2, 42);
        assert_eq!(a.cnf.clauses(), b.cnf.clauses());
        let c = or_chain("or-det", 16, 2, 43);
        assert!(a.cnf.clauses() != c.cnf.clauses() || a.num_vars() != c.num_vars());
    }

    #[test]
    fn product_multiplier_computes_products() {
        // Rebuild a tiny multiplier and check the accumulated sum against
        // integer multiplication for a few operand pairs.
        let bits = 3usize;
        let mut enc = CircuitEncoder::new();
        let a: Vec<Signal> = (0..bits).map(|_| enc.input()).collect();
        let b: Vec<Signal> = (0..bits).map(|_| enc.input()).collect();
        let mut rows: Vec<Vec<Signal>> = Vec::new();
        for &bj in b.iter() {
            rows.push(a.iter().map(|&ai| enc.and_gate(&[ai, bj])).collect());
        }
        let mut acc: Vec<Signal> = rows[0].clone();
        for (j, row) in rows.iter().enumerate().skip(1) {
            let mut next: Vec<Signal> = Vec::new();
            next.extend_from_slice(&acc[..j.min(acc.len())]);
            let mut carry: Option<Signal> = None;
            for (k, &pp) in row.iter().enumerate() {
                let position = j + k;
                let existing = acc.get(position).copied();
                let (sum, c) = match (existing, carry) {
                    (Some(x), Some(cin)) => enc.full_adder(x, pp, cin),
                    (Some(x), None) => {
                        let s = enc.xor_gate(x, pp);
                        let c = enc.and_gate(&[x, pp]);
                        (s, c)
                    }
                    (None, Some(cin)) => {
                        let s = enc.xor_gate(pp, cin);
                        let c = enc.and_gate(&[pp, cin]);
                        (s, c)
                    }
                    (None, None) => (pp, enc.and_gate(&[pp, pp])),
                };
                next.push(sum);
                carry = Some(c);
            }
            if let Some(c) = carry {
                next.push(c);
            }
            acc = next;
        }
        for (x, y) in [(3u32, 5u32), (7, 6), (2, 2), (0, 7)] {
            let mut input_values = Vec::new();
            for i in 0..bits {
                input_values.push((x >> i) & 1 == 1);
            }
            for i in 0..bits {
                input_values.push((y >> i) & 1 == 1);
            }
            let sim = enc.simulate(&input_values);
            let mut prod = 0u32;
            for (i, &s) in acc.iter().enumerate() {
                if enc.signal_value(&sim, s) {
                    prod |= 1 << i;
                }
            }
            assert_eq!(prod, x * y, "{x} * {y}");
        }
    }
}
