//! End-to-end gate for the routing layer: determinism through routing at
//! 1 and 8 threads, failover to a warm-started backend, kill-and-restart
//! of the shard owner with a provably skipped recompile (the restarted
//! daemon's compile counter stays at zero), v1 transparency, aggregation
//! fan-out, and graceful whole-tree shutdown.
//!
//! Every test runs a real router fronting real daemons that join via the
//! wire `REGISTER` heartbeat, all sharing one on-disk compile cache.

use htsat_cnf::dimacs;
use htsat_core::{GdSampler, SamplerConfig};
use htsat_instances::families;
use htsat_router::{route, RouterConfig, RouterHandle};
use htsat_serve::json::Json;
use htsat_serve::proto::SampleParams;
use htsat_serve::{serve, Client, ClientError, SampleEvent, ServeConfig, ServerHandle};
use htsat_tensor::Backend;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// A 2-variable formula with exactly three satisfying assignments: with a
/// huge stale limit its stream produces the three and then parks forever,
/// ideal for holding a stream open across a backend kill.
const TINY: &str = "p cnf 2 1\n1 2 0\n";

fn temp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("htsat-router-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Starts a daemon on an ephemeral port that announces itself to the
/// router and persists compiles to the shared cache directory.
fn start_backend(router_addr: &str, cache_dir: &Path) -> ServerHandle {
    start_backend_at("127.0.0.1:0", router_addr, cache_dir)
}

fn start_backend_at(addr: &str, router_addr: &str, cache_dir: &Path) -> ServerHandle {
    let mut config = ServeConfig {
        addr: addr.to_string(),
        ..ServeConfig::default()
    };
    config.register = Some(router_addr.to_string());
    config.registry.cache_dir = Some(cache_dir.to_path_buf());
    serve(config).expect("bind backend")
}

/// Waits until the router's discovery map sees `n` live backends.
fn wait_for_backends(router: &RouterHandle, n: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while router.discovery().live().len() < n {
        assert!(
            Instant::now() < deadline,
            "only {} of {n} backends registered",
            router.discovery().live().len()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// The in-process stream the routed one must match bit for bit.
fn reference(cnf: &htsat_cnf::Cnf, seed: u64, threads: usize, n: usize) -> Vec<Vec<bool>> {
    let config = SamplerConfig {
        seed,
        backend: Backend::Threads(threads),
        ..SamplerConfig::default()
    };
    let mut sampler = GdSampler::new(cnf, config).expect("reference sampler");
    sampler.stream().take(n).collect()
}

/// Drains one chunked stream to completion.
fn drain(client: &mut Client, id: u64) -> Vec<Vec<bool>> {
    let mut solutions = Vec::new();
    loop {
        match client.sample_next(id).expect("stream frame") {
            SampleEvent::Batch(batch) => solutions.extend(batch),
            SampleEvent::Done(_) => return solutions,
        }
    }
}

#[test]
fn routed_streams_are_bit_identical_at_one_and_eight_threads() {
    let cache = temp_cache("identical");
    let router = route(RouterConfig::default()).expect("router");
    let router_addr = router.local_addr().to_string();
    let _b1 = start_backend(&router_addr, &cache);
    let _b2 = start_backend(&router_addr, &cache);
    wait_for_backends(&router, 2);

    // Two formulas so the shards can land on different backends, both
    // streamed concurrently and drained strictly alternating — chunks of
    // one arrive while the reader waits on the other.
    let first = families::or_chain("route-a", 24, 2, 0xA11);
    let second = families::or_chain("route-b", 26, 2, 0xB22);
    let mut client = Client::connect(router.local_addr()).expect("connect to router");
    client.hello().expect("hello v2 through the router");
    let loads = [
        client
            .load_dimacs(Some("route-a"), &dimacs::to_string(&first.cnf))
            .expect("load a"),
        client
            .load_dimacs(Some("route-b"), &dimacs::to_string(&second.cnf))
            .expect("load b"),
    ];

    const N: usize = 12;
    for threads in [1usize, 8] {
        let references = [
            reference(&first.cnf, 41, threads, N),
            reference(&second.cnf, 42, threads, N),
        ];
        let ids: Vec<u64> = loads
            .iter()
            .zip([41u64, 42])
            .map(|(load, seed)| {
                client
                    .sample_start(&SampleParams {
                        n: N,
                        seed,
                        threads: Some(threads),
                        ..SampleParams::new(load.fingerprint)
                    })
                    .expect("start stream")
            })
            .collect();
        let mut reassembled = vec![Vec::new(); ids.len()];
        let mut open = vec![true; ids.len()];
        while open.iter().any(|o| *o) {
            for (lane, &id) in ids.iter().enumerate() {
                if !open[lane] {
                    continue;
                }
                match client.sample_next(id).expect("stream frame") {
                    SampleEvent::Batch(batch) => reassembled[lane].extend(batch),
                    SampleEvent::Done(_) => open[lane] = false,
                }
            }
        }
        assert_eq!(
            reassembled,
            references.to_vec(),
            "routed pipelined streams must match the in-process sequences \
             bit for bit at {threads} thread(s)"
        );
    }
}

#[test]
fn failover_and_owner_restart_preserve_streams_and_skip_recompilation() {
    let cache = temp_cache("failover");
    let router = route(RouterConfig::default()).expect("router");
    let router_addr = router.local_addr().to_string();
    let mut backends = [
        start_backend(&router_addr, &cache),
        start_backend(&router_addr, &cache),
    ];
    wait_for_backends(&router, 2);

    let instance = families::or_chain("route-kill", 24, 2, 0xC33);
    let text = dimacs::to_string(&instance.cnf);
    let mut client = Client::connect(router.local_addr()).expect("connect to router");
    client.hello().expect("hello");
    let load = client.load_dimacs(Some("route-kill"), &text).expect("load");
    let fingerprint_hex = load.fingerprint.to_hex();

    const N: usize = 10;
    let want = reference(&instance.cnf, 7, 1, N);
    let start = |client: &mut Client| {
        client
            .sample_start(&SampleParams {
                n: N,
                seed: 7,
                threads: Some(1),
                ..SampleParams::new(load.fingerprint)
            })
            .expect("start stream")
    };

    // Baseline through the shard owner.
    let id = start(&mut client);
    assert_eq!(drain(&mut client, id), want, "baseline routed stream");

    // Kill the owner. The survivor has never LOADed the formula: serving
    // the same request means warm-starting the artifact off the shared
    // cache directory.
    let owner = router
        .discovery()
        .owner(&fingerprint_hex, "gd")
        .expect("an owner exists");
    let dead = backends
        .iter()
        .position(|b| b.local_addr().to_string() == owner)
        .expect("the owner is one of ours");
    backends[dead].shutdown();
    let survivor_addr = backends[1 - dead].local_addr();

    let id = start(&mut client);
    assert_eq!(
        drain(&mut client, id),
        want,
        "the failover stream must be bit-identical (same seed, warm artifact)"
    );

    // The survivor served it without compiling: the artifact came off disk.
    let mut direct = Client::connect(survivor_addr).expect("connect to survivor");
    let status = direct.status().expect("survivor status");
    assert_eq!(
        status.get("compiles").and_then(Json::as_u64),
        Some(0),
        "the failover backend never compiled"
    );
    assert!(
        status.get("disk_hits").and_then(Json::as_u64).unwrap_or(0) >= 1,
        "the failover backend warm-started from the shared cache"
    );

    // Restart the owner on its old port; the heartbeat re-registers it and
    // rendezvous hands its shard back.
    let restarted = {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match std::panic::catch_unwind(|| start_backend_at(&owner, &router_addr, &cache)) {
                Ok(server) => break server,
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => std::panic::resume_unwind(e),
            }
        }
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    while !router.discovery().live().contains(&owner) {
        assert!(
            Instant::now() < deadline,
            "restarted owner never re-registered"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    assert_eq!(
        router.discovery().owner(&fingerprint_hex, "gd").as_deref(),
        Some(owner.as_str()),
        "rendezvous hands the shard back to the restarted owner"
    );

    let id = start(&mut client);
    assert_eq!(
        drain(&mut client, id),
        want,
        "the post-restart stream must be bit-identical"
    );

    // The restart provably skipped the recompile: the fresh process served
    // the shard from the disk artifact with its compile counter still zero.
    let mut direct = Client::connect(restarted.local_addr()).expect("connect to restarted owner");
    let status = direct.status().expect("restarted owner status");
    assert_eq!(
        status.get("compiles").and_then(Json::as_u64),
        Some(0),
        "the restarted owner never recompiled"
    );
    assert!(
        status.get("disk_hits").and_then(Json::as_u64).unwrap_or(0) >= 1,
        "the restarted owner warm-started from the cache"
    );
}

#[test]
fn a_backend_lost_mid_stream_surfaces_backend_lost_and_a_reissue_matches() {
    let cache = temp_cache("midstream");
    let router = route(RouterConfig::default()).expect("router");
    let router_addr = router.local_addr().to_string();
    let mut backends = [
        start_backend(&router_addr, &cache),
        start_backend(&router_addr, &cache),
    ];
    wait_for_backends(&router, 2);

    let tiny_cnf = dimacs::parse_str(TINY).expect("parse tiny");
    let mut client = Client::connect(router.local_addr()).expect("connect to router");
    client.hello().expect("hello");
    let load = client.load_dimacs(Some("tiny"), TINY).expect("load");

    // A stream that produces its three unique solutions and then parks
    // forever (stale limit effectively infinite) — provably mid-flight.
    let id = client
        .sample_start(&SampleParams {
            n: 1000,
            seed: 3,
            threads: Some(1),
            max_stale: Some(u32::MAX),
            ..SampleParams::new(load.fingerprint)
        })
        .expect("start stream");
    match client.sample_next(id).expect("first frame") {
        SampleEvent::Batch(batch) => assert!(!batch.is_empty()),
        SampleEvent::Done(done) => panic!("parked stream completed: {done:?}"),
    }

    // Kill the backend the stream lives on.
    let owner = router
        .discovery()
        .owner(&load.fingerprint.to_hex(), "gd")
        .expect("an owner exists");
    let dead = backends
        .iter()
        .position(|b| b.local_addr().to_string() == owner)
        .expect("the owner is one of ours");
    backends[dead].shutdown();

    // The stream already produced output, so it cannot be silently
    // re-routed: it must end with a terminal error. A graceful daemon
    // shutdown gets its own `shutdown` terminal frame relayed verbatim
    // before the socket closes; a harder death (EOF with the request
    // still in flight) surfaces the router's `backend-lost`. Either way
    // the stream ends with an error, never a fabricated `done`.
    loop {
        match client.sample_next(id) {
            Ok(SampleEvent::Batch(_)) => {} // chunks racing the loss
            Ok(SampleEvent::Done(done)) => panic!("lost stream completed: {done:?}"),
            Err(ClientError::Server(msg)) => {
                assert!(
                    msg.contains("backend lost") || msg.contains("shutting down"),
                    "unexpected error: {msg}"
                );
                break;
            }
            Err(other) => panic!("unexpected failure: {other:?}"),
        }
    }

    // Re-issuing the request re-routes to the survivor, which serves the
    // identical stream from the start (same seed, warm artifact).
    let want = reference(&tiny_cnf, 3, 1, 3);
    let id = client
        .sample_start(&SampleParams {
            n: 3,
            seed: 3,
            threads: Some(1),
            ..SampleParams::new(load.fingerprint)
        })
        .expect("re-issue");
    assert_eq!(drain(&mut client, id), want, "re-issued stream matches");
}

#[test]
fn v1_clients_route_transparently() {
    let cache = temp_cache("v1");
    let router = route(RouterConfig::default()).expect("router");
    let router_addr = router.local_addr().to_string();
    let _b1 = start_backend(&router_addr, &cache);
    let _b2 = start_backend(&router_addr, &cache);
    wait_for_backends(&router, 2);

    let instance = families::or_chain("route-v1", 24, 2, 0xD44);
    let want = reference(&instance.cnf, 5, 1, 4);

    // A raw v1 session (no HELLO): replies must be indistinguishable from
    // a direct daemon — no v2 framing, whole batch in one reply.
    let stream = TcpStream::connect(router.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut exchange = |line: String| -> Json {
        writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read");
        assert!(!reply.is_empty(), "router closed the connection");
        Json::parse(reply.trim_end()).expect("parse reply")
    };

    let escaped = dimacs::to_string(&instance.cnf).replace('\n', "\\n");
    let load = exchange(format!("{{\"cmd\":\"load\",\"dimacs\":\"{escaped}\"}}"));
    assert_eq!(load.get("ok").and_then(Json::as_bool), Some(true));
    assert!(load.get("frame").is_none(), "v1 replies carry no framing");
    let fingerprint = load
        .get("fingerprint")
        .and_then(Json::as_str)
        .expect("fingerprint")
        .to_string();

    let sample = exchange(format!(
        "{{\"cmd\":\"sample\",\"fingerprint\":\"{fingerprint}\",\"n\":4,\"seed\":5,\"threads\":1}}"
    ));
    assert_eq!(sample.get("ok").and_then(Json::as_bool), Some(true));
    assert!(sample.get("frame").is_none());
    let solutions: Vec<Vec<bool>> = sample
        .get("solutions")
        .and_then(Json::as_arr)
        .expect("solutions")
        .iter()
        .map(|row| {
            htsat_serve::proto::decode_solution(row.as_str().expect("bit string"))
                .expect("decode solution")
        })
        .collect();
    assert_eq!(solutions, want, "routed v1 SAMPLE matches the reference");
}

#[test]
fn aggregation_verbs_fan_out_across_the_fleet() {
    let cache = temp_cache("aggregate");
    let router = route(RouterConfig::default()).expect("router");
    let router_addr = router.local_addr().to_string();
    let _b1 = start_backend(&router_addr, &cache);
    let _b2 = start_backend(&router_addr, &cache);
    wait_for_backends(&router, 2);

    let instance = families::or_chain("route-agg", 24, 2, 0xE55);
    let mut client = Client::connect(router.local_addr()).expect("connect to router");
    client.hello().expect("hello");
    let load = client
        .load_dimacs(Some("route-agg"), &dimacs::to_string(&instance.cnf))
        .expect("load");

    // STATUS aggregates: registry counters sum, entries concatenate, and
    // the router contributes its own `backends` liveness array.
    let status = client.status().expect("status through router");
    let backends_field = status
        .get("backends")
        .and_then(Json::as_arr)
        .expect("router status carries a backends array");
    assert!(backends_field.len() >= 2, "both backends are listed");
    assert!(
        status.get("compiles").and_then(Json::as_u64).unwrap_or(0) >= 1,
        "the owner's compile shows up in the summed counters"
    );
    let entries = status
        .get("entries")
        .and_then(Json::as_arr)
        .expect("entries");
    assert!(
        entries.iter().any(|entry| {
            entry.get("fingerprint").and_then(Json::as_str)
                == Some(load.fingerprint.to_hex().as_str())
        }),
        "the loaded formula appears in the concatenated entries"
    );

    // STATS merges into one valid htsat-stats-v1 snapshot the unchanged
    // typed client (and therefore `repro stats`) parses.
    let snapshot = client.stats().expect("stats through router");
    assert!(
        snapshot.counter("router.requests.load").unwrap_or(0) >= 1,
        "router-side counters are in the merged snapshot"
    );
    assert!(
        snapshot.counter("serve.requests.load").unwrap_or(0) >= 1,
        "backend-side counters are in the merged snapshot"
    );

    // TRACE merges into one valid htsat-trace-v1 report (the unchanged
    // `repro trace` path).
    let report = client
        .trace(Some(32), None, None)
        .expect("trace through router");
    assert!(
        report
            .timelines
            .iter()
            .any(|timeline| timeline.verb == "load"),
        "the routed LOAD shows up in some fleet member's timelines"
    );

    // EVICT broadcasts; the shard owner reports the eviction.
    assert!(client.evict(load.fingerprint).expect("evict"), "evicted");
    let status = client.status().expect("status after evict");
    assert!(
        status
            .get("entries")
            .and_then(Json::as_arr)
            .expect("entries")
            .is_empty(),
        "no fleet member still holds the evicted formula"
    );
}

#[test]
fn shutdown_through_the_router_stops_the_whole_tree() {
    let cache = temp_cache("shutdown");
    let mut router = route(RouterConfig::default()).expect("router");
    let router_addr = router.local_addr().to_string();
    let mut backends = [
        start_backend(&router_addr, &cache),
        start_backend(&router_addr, &cache),
    ];
    wait_for_backends(&router, 2);

    let mut client = Client::connect(router.local_addr()).expect("connect to router");
    client.hello().expect("hello");
    client.shutdown().expect("shutdown acknowledged");

    // The broadcast reached every daemon and the router stopped itself.
    for backend in &mut backends {
        backend.wait();
        assert!(backend.is_stopped(), "backend received the broadcast");
    }
    router.wait();
    assert!(
        router.is_stopped(),
        "the router stopped after the broadcast"
    );
}
