//! The discovery map: which backends exist, which are live, and which one
//! owns a shard.
//!
//! Backends announce themselves with the wire `REGISTER` verb and stay
//! live for their TTL; a re-registration (the heartbeat) renews the
//! window, and an entry whose window lapses is dropped the next time the
//! map is read — there is no reaper thread. Operators can also seed
//! backends statically (`--backend`); static entries never expire but can
//! still be marked down after a dial failure.
//!
//! Shard ownership is **rendezvous (highest-random-weight) hashing** over
//! the live backends: every (backend, fingerprint, engine) triple gets a
//! deterministic pseudo-random weight and the backend with the highest
//! weight owns the key. Rendezvous hashing has the property this layer is
//! built around: when a backend departs, *only the keys it owned* remap
//! (to their second-ranked backend) — every other key keeps its owner, so
//! resident sampler state and warm caches stay useful across membership
//! churn. The full weight ordering doubles as the failover order.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How long a backend stays out of rotation after a failed dial or a
/// mid-stream connection loss. Dynamic entries are usually re-announced by
/// their heartbeat well before this lapses; static entries re-enter
/// rotation on their own once the window passes.
pub const FAILURE_BACKOFF: Duration = Duration::from_millis(1000);

/// One backend's bookkeeping.
struct BackendEntry {
    /// When the liveness window lapses; `None` for static seeds.
    expires_at: Option<Instant>,
    /// Out of rotation until then after a failure; `None` when healthy.
    down_until: Option<Instant>,
    /// Requests currently routed to this backend.
    inflight: u64,
    /// Requests ever routed to this backend.
    dispatched: u64,
    /// Dial/stream failures ever recorded against this backend.
    failures: u64,
}

/// A point-in-time view of one backend, for `STATUS` reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendStatus {
    /// The dialable address.
    pub addr: String,
    /// In rotation right now (not expired, not backing off a failure).
    pub live: bool,
    /// Milliseconds until the liveness window lapses; `None` for static
    /// seeds, which never expire.
    pub expires_in_ms: Option<u64>,
    /// Requests currently routed here.
    pub inflight: u64,
    /// Requests ever routed here.
    pub dispatched: u64,
    /// Failures ever recorded here.
    pub failures: u64,
}

/// The registry of known backends. All methods are `&self`; internal
/// state sits behind one mutex (the map is small and every operation is
/// O(backends)).
#[derive(Default)]
pub struct DiscoveryMap {
    inner: Mutex<HashMap<String, BackendEntry>>,
}

impl DiscoveryMap {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        DiscoveryMap::default()
    }

    /// Records a `REGISTER` announcement: inserts the backend or renews
    /// its liveness window, clearing any failure backoff (the announcement
    /// proves the backend is reachable *outbound*; the next dial verifies
    /// the advertised address). Returns `true` when the backend was not
    /// previously known (or had lapsed).
    pub fn register(&self, addr: &str, ttl: Duration) -> bool {
        let mut inner = self.inner.lock().expect("discovery lock");
        let now = Instant::now();
        let was_live = inner
            .get(&addr.to_string())
            .is_some_and(|e| e.expires_at.is_none_or(|at| at > now));
        let entry = inner.entry(addr.to_string()).or_insert(BackendEntry {
            expires_at: None,
            down_until: None,
            inflight: 0,
            dispatched: 0,
            failures: 0,
        });
        entry.expires_at = Some(now + ttl);
        entry.down_until = None;
        !was_live
    }

    /// Seeds a static backend that never expires (the `--backend` flag).
    pub fn seed_static(&self, addr: &str) {
        let mut inner = self.inner.lock().expect("discovery lock");
        inner.entry(addr.to_string()).or_insert(BackendEntry {
            expires_at: None,
            down_until: None,
            inflight: 0,
            dispatched: 0,
            failures: 0,
        });
    }

    /// Drops lapsed dynamic entries. Called lazily from every read.
    fn prune(inner: &mut HashMap<String, BackendEntry>, now: Instant) {
        inner.retain(|_, e| e.expires_at.is_none_or(|at| at > now));
    }

    /// The live backends (registered, not lapsed, not backing off),
    /// sorted by address for deterministic iteration.
    #[must_use]
    pub fn live(&self) -> Vec<String> {
        let mut inner = self.inner.lock().expect("discovery lock");
        let now = Instant::now();
        Self::prune(&mut inner, now);
        let mut live: Vec<String> = inner
            .iter()
            .filter(|(_, e)| e.down_until.is_none_or(|until| until <= now))
            .map(|(addr, _)| addr.clone())
            .collect();
        live.sort();
        live
    }

    /// The live backends ranked by rendezvous weight for one shard key,
    /// heaviest (the owner) first. The tail is the failover order.
    #[must_use]
    pub fn ranked(&self, fingerprint_hex: &str, engine: &str) -> Vec<String> {
        let mut ranked = self.live();
        ranked.sort_by_key(|addr| {
            std::cmp::Reverse(rendezvous_weight(addr, fingerprint_hex, engine))
        });
        ranked
    }

    /// The backend owning one shard key, if any backend is live.
    #[must_use]
    pub fn owner(&self, fingerprint_hex: &str, engine: &str) -> Option<String> {
        self.ranked(fingerprint_hex, engine).into_iter().next()
    }

    /// Records a request routed to `addr`.
    pub fn record_dispatch(&self, addr: &str) {
        let mut inner = self.inner.lock().expect("discovery lock");
        if let Some(entry) = inner.get_mut(addr) {
            entry.inflight += 1;
            entry.dispatched += 1;
        }
    }

    /// Records a routed request finishing (any outcome).
    pub fn record_done(&self, addr: &str) {
        let mut inner = self.inner.lock().expect("discovery lock");
        if let Some(entry) = inner.get_mut(addr) {
            entry.inflight = entry.inflight.saturating_sub(1);
        }
    }

    /// Records a dial failure or mid-stream connection loss: the backend
    /// leaves rotation for [`FAILURE_BACKOFF`] (a dynamic entry's next
    /// heartbeat, or a static entry's timer, brings it back).
    pub fn record_failure(&self, addr: &str) {
        let mut inner = self.inner.lock().expect("discovery lock");
        if let Some(entry) = inner.get_mut(addr) {
            entry.failures += 1;
            entry.down_until = Some(Instant::now() + FAILURE_BACKOFF);
        }
    }

    /// Records a successful exchange: clears any failure backoff early.
    pub fn record_success(&self, addr: &str) {
        let mut inner = self.inner.lock().expect("discovery lock");
        if let Some(entry) = inner.get_mut(addr) {
            entry.down_until = None;
        }
    }

    /// A point-in-time view of every known backend (live or not), sorted
    /// by address.
    #[must_use]
    pub fn statuses(&self) -> Vec<BackendStatus> {
        let mut inner = self.inner.lock().expect("discovery lock");
        let now = Instant::now();
        Self::prune(&mut inner, now);
        let mut statuses: Vec<BackendStatus> = inner
            .iter()
            .map(|(addr, e)| BackendStatus {
                addr: addr.clone(),
                live: e.down_until.is_none_or(|until| until <= now),
                expires_in_ms: e
                    .expires_at
                    .map(|at| at.saturating_duration_since(now).as_millis() as u64),
                inflight: e.inflight,
                dispatched: e.dispatched,
                failures: e.failures,
            })
            .collect();
        statuses.sort_by(|a, b| a.addr.cmp(&b.addr));
        statuses
    }
}

/// The deterministic weight of one (backend, fingerprint, engine) triple:
/// 64-bit FNV-1a over the three components with separators. Every router
/// computes the same weights, so a fleet of routers agrees on shard
/// ownership without coordination.
#[must_use]
pub fn rendezvous_weight(addr: &str, fingerprint_hex: &str, engine: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1000_0000_01b3;
    let mut hash = FNV_OFFSET;
    for part in [addr, "\u{1f}", fingerprint_hex, "\u{1f}", engine] {
        for byte in part.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
    // One final avalanche round so near-identical addresses ("…:7001" vs
    // "…:7002") do not produce correlated weights.
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("{i:032x}")).collect()
    }

    #[test]
    fn ttl_expiry_removes_a_backend_from_the_shard_map() {
        let map = DiscoveryMap::new();
        map.register("a:1", Duration::from_millis(10));
        map.register("b:1", Duration::from_secs(60));
        assert_eq!(map.live(), vec!["a:1".to_string(), "b:1".to_string()]);
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(map.live(), vec!["b:1".to_string()]);
        for key in keys(16) {
            assert_eq!(map.owner(&key, "gd"), Some("b:1".to_string()));
        }
    }

    #[test]
    fn re_registration_restores_an_expired_backend() {
        let map = DiscoveryMap::new();
        assert!(map.register("a:1", Duration::from_millis(10)));
        // A renewal within the window is not "new".
        assert!(!map.register("a:1", Duration::from_millis(10)));
        std::thread::sleep(Duration::from_millis(30));
        assert!(map.live().is_empty());
        // The heartbeat after a lapse counts as new again.
        assert!(map.register("a:1", Duration::from_secs(60)));
        assert_eq!(map.live(), vec!["a:1".to_string()]);
    }

    #[test]
    fn rendezvous_only_remaps_keys_owned_by_the_departed_backend() {
        let map = DiscoveryMap::new();
        for addr in ["a:1", "b:1", "c:1"] {
            map.register(addr, Duration::from_secs(60));
        }
        let keys = keys(200);
        let before: Vec<Option<String>> = keys.iter().map(|k| map.owner(k, "gd")).collect();
        // All three backends should own a non-trivial share.
        for addr in ["a:1", "b:1", "c:1"] {
            let share = before.iter().filter(|o| o.as_deref() == Some(addr)).count();
            assert!(share > 20, "{addr} owns only {share}/200 keys");
        }
        // Drop b by letting a short registration lapse.
        map.register("b:1", Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(20));
        let after: Vec<Option<String>> = keys.iter().map(|k| map.owner(k, "gd")).collect();
        for ((key, before), after) in keys.iter().zip(&before).zip(&after) {
            if before.as_deref() == Some("b:1") {
                let new = after.as_deref().expect("some backend is live");
                assert!(new == "a:1" || new == "c:1", "{key} remapped to {new}");
            } else {
                assert_eq!(before, after, "{key} must keep its owner");
            }
        }
        // And the comeback restores exactly the old assignment.
        map.register("b:1", Duration::from_secs(60));
        let restored: Vec<Option<String>> = keys.iter().map(|k| map.owner(k, "gd")).collect();
        assert_eq!(before, restored);
    }

    #[test]
    fn engine_is_part_of_the_shard_key() {
        let map = DiscoveryMap::new();
        for addr in ["a:1", "b:1", "c:1", "d:1"] {
            map.register(addr, Duration::from_secs(60));
        }
        let keys = keys(64);
        let split = keys
            .iter()
            .filter(|k| map.owner(k, "gd") != map.owner(k, "walksat"))
            .count();
        assert!(split > 0, "engines must shard independently");
    }

    #[test]
    fn failure_takes_a_backend_out_of_rotation_and_success_restores_it() {
        let map = DiscoveryMap::new();
        map.seed_static("a:1");
        map.seed_static("b:1");
        map.record_failure("a:1");
        assert_eq!(map.live(), vec!["b:1".to_string()]);
        map.record_success("a:1");
        assert_eq!(map.live(), vec!["a:1".to_string(), "b:1".to_string()]);
    }

    #[test]
    fn ranked_orders_every_live_backend() {
        let map = DiscoveryMap::new();
        for addr in ["a:1", "b:1", "c:1"] {
            map.seed_static(addr);
        }
        let ranked = map.ranked(&"7".repeat(32), "gd");
        assert_eq!(ranked.len(), 3);
        let mut sorted = ranked.clone();
        sorted.sort();
        assert_eq!(sorted, map.live());
        assert_eq!(
            map.owner(&"7".repeat(32), "gd").as_deref(),
            Some(ranked[0].as_str())
        );
    }

    #[test]
    fn dispatch_accounting_shows_in_statuses() {
        let map = DiscoveryMap::new();
        map.seed_static("a:1");
        map.record_dispatch("a:1");
        map.record_dispatch("a:1");
        map.record_done("a:1");
        let status = &map.statuses()[0];
        assert_eq!(status.inflight, 1);
        assert_eq!(status.dispatched, 2);
        assert_eq!(status.expires_in_ms, None);
        assert!(status.live);
    }
}
