//! # htsat-router
//!
//! A sharding TCP front for a fleet of `htsat-serve` daemons. Clients
//! speak the unchanged v1/v2 wire protocol to the router; the router
//! shards every formula-addressed verb (`LOAD`, `SAMPLE`, `SUBSCRIBE`) by
//! **rendezvous hashing** of the (fingerprint, engine) pair across the
//! backends in its [`DiscoveryMap`], so each shard's compiled sampler is
//! resident on exactly one daemon instead of on all of them.
//!
//! The crate is std-only like the daemon it fronts (no tokio, no hyper,
//! no serde) and reuses `htsat-serve`'s protocol types wholesale.
//!
//! The moving parts:
//!
//! * [`discovery`] — the TTL liveness map fed by the wire `REGISTER` verb
//!   (daemons heartbeat with `htsat-serve --register ROUTER_ADDR`), plus
//!   rendezvous ownership and the failover ranking.
//! * [`server`] — the accept loop and [`RouterHandle`] lifecycle,
//!   mirroring `htsat_serve::server`.
//! * the proxy sessions (private) — v1 lockstep forwarding, and v2
//!   multiplexed forwarding with per-backend upstream connections,
//!   subscription-id rewriting and mid-stream failover.
//!
//! # Verb semantics through the router
//!
//! | verb | behaviour |
//! |------|-----------|
//! | `LOAD`, `SAMPLE`, `SUBSCRIBE` | forwarded to the shard owner (lines relayed verbatim, so streams stay bit-identical) |
//! | `CREDIT`, `UNSUBSCRIBE` | forwarded to the backend owning the subscription, `sub` rewritten |
//! | `STATUS`, `STATS`, `TRACE` | **aggregated** across live backends (see below) |
//! | `EVICT` | broadcast; `evicted_count` summed |
//! | `SHUTDOWN` | broadcast to every live backend, then the router stops |
//! | `REGISTER` | handled locally: updates the discovery map |
//! | `HELLO` | handled locally: the router negotiates v2 itself |
//!
//! Aggregation semantics (documented contract for `repro stats` /
//! `repro trace` pointed at the router): `STATS` merges the router's own
//! snapshot with every live backend's — counters and gauges sum,
//! histograms merge bucket-wise — into one valid `htsat-stats-v1`
//! document. `TRACE` concatenates the router's timelines with every
//! backend's (router first, then backends by address) and sums
//! `dropped_traces`, re-applying the `last` cap to the merged list.
//! `STATUS` sums registry counters and concatenates `entries`, and adds a
//! router-only `backends` array with per-backend liveness and inflight
//! accounting.
//!
//! # Determinism through routing
//!
//! Same (fingerprint, engine) → same owner (rendezvous is deterministic
//! over the live set), and forwarded `SAMPLE` frames are relayed as the
//! backend's raw bytes — so same (fingerprint, engine, seed) through the
//! router yields the same bit-for-bit stream as a direct connection, at
//! any thread count. When every daemon shares one `--cache-dir`, the
//! guarantee survives failover and restart: a backend that never loaded
//! the formula warm-starts it from the disk artifact, and recompilation
//! is provably skipped (the registry compile counter stays put).
//!
//! A backend dying mid-stream is reported as a terminal `error` frame
//! with code `backend-lost` (requests that had produced no output yet are
//! transparently re-routed instead); the client re-issues the request and
//! — same seed — receives the identical stream from the start.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod discovery;
mod proxy;
pub mod server;

pub use discovery::{BackendStatus, DiscoveryMap};
pub use server::{route, RouterConfig, RouterHandle};
