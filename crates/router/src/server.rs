//! The router process: accept loop, shared state, graceful shutdown.

use crate::discovery::DiscoveryMap;
use crate::proxy::session;
use htsat_runtime::StopToken;
use htsat_serve::ConnectOptions;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the accept loop polls for new connections and the stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Configuration of the router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterConfig {
    /// Bind address; port `0` picks an ephemeral port (the bound address
    /// is reported by [`RouterHandle::local_addr`]).
    pub addr: String,
    /// Statically seeded backends (never expire). Most deployments leave
    /// this empty and let daemons announce themselves with `--register`.
    pub backends: Vec<String>,
    /// Allow client `LOAD` requests that name a *router-side* path: the
    /// router reads the file and forwards the DIMACS inline (backends
    /// never see the path). Disabled by default, like the daemon flag.
    pub allow_path_load: bool,
    /// How backend dials behave (connect timeout, refused retry/backoff).
    pub dial: ConnectOptions,
}

impl Default for RouterConfig {
    /// Loopback on an ephemeral port, no static backends, path loads
    /// disabled, quick dials (failover wants to move on fast).
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            backends: Vec::new(),
            allow_path_load: false,
            dial: ConnectOptions {
                connect_timeout: Some(Duration::from_secs(2)),
                refused_retries: 2,
                initial_backoff: Duration::from_millis(10),
                max_backoff: Duration::from_millis(100),
            },
        }
    }
}

/// Shared state every proxy session works against.
pub(crate) struct RouterState {
    pub(crate) config: RouterConfig,
    pub(crate) discovery: DiscoveryMap,
    pub(crate) stop: StopToken,
    pub(crate) started: Instant,
    pub(crate) connections_served: AtomicU64,
    /// Router-minted subscription ids, globally unique across sessions —
    /// two backends may both hand out `sub` 1, so clients see the
    /// router's numbering instead.
    pub(crate) next_sub: AtomicU64,
}

/// Handle of a running router.
pub struct RouterHandle {
    addr: SocketAddr,
    state: Arc<RouterState>,
    accept: Option<JoinHandle<()>>,
}

/// Starts the router described by `config` and returns its handle.
///
/// The accept loop and every session run on background threads; the call
/// returns as soon as the listener is bound, so callers can read the
/// ephemeral port from [`RouterHandle::local_addr`] immediately.
///
/// # Errors
///
/// Returns the bind error if the address is unusable.
pub fn route(config: RouterConfig) -> std::io::Result<RouterHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let discovery = DiscoveryMap::new();
    for backend in &config.backends {
        discovery.seed_static(backend);
    }
    let state = Arc::new(RouterState {
        config,
        discovery,
        stop: StopToken::new(),
        started: Instant::now(),
        connections_served: AtomicU64::new(0),
        next_sub: AtomicU64::new(1),
    });
    htsat_obs::debug!("htsat-router bound on {addr}");
    let accept_state = state.clone();
    let accept = std::thread::Builder::new()
        .name("htsat-router-accept".to_string())
        .spawn(move || accept_loop(&listener, &accept_state))
        .expect("spawn accept thread");
    Ok(RouterHandle {
        addr,
        state,
        accept: Some(accept),
    })
}

impl RouterHandle {
    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The discovery map, for in-process inspection by tests.
    #[must_use]
    pub fn discovery(&self) -> &DiscoveryMap {
        &self.state.discovery
    }

    /// Whether the router has been told to stop.
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.state.stop.is_stopped()
    }

    /// Blocks until the router stops (a `SHUTDOWN` request arrives or
    /// another thread calls [`RouterHandle::shutdown`]).
    pub fn wait(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Stops the router gracefully: closes the accept loop and joins the
    /// session threads. Backends are *not* shut down — only the wire
    /// `SHUTDOWN` verb broadcasts to them.
    pub fn shutdown(&mut self) {
        self.state.stop.stop();
        self.wait();
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Polls for connections until the stop flag is set, then drains sessions.
fn accept_loop(listener: &TcpListener, state: &Arc<RouterState>) {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    while !state.stop.is_stopped() {
        match listener.accept() {
            Ok((stream, peer)) => {
                state.connections_served.fetch_add(1, Ordering::Relaxed);
                htsat_obs::counter!("router.connections.total").inc();
                htsat_obs::debug!("connection accepted from {peer}");
                let session_state = state.clone();
                match std::thread::Builder::new()
                    .name("htsat-router-session".to_string())
                    .spawn(move || session(stream, &session_state))
                {
                    Ok(handle) => sessions.push(handle),
                    Err(e) => htsat_obs::error!("cannot spawn session thread: {e}"),
                }
                sessions.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) => {
                htsat_obs::error!("accept failed: {e}");
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
    for handle in sessions {
        let _ = handle.join();
    }
}
