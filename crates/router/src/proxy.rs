//! Per-connection proxy sessions: v1 lockstep forwarding, v2 multiplexed
//! forwarding with subscription rewriting and mid-stream failover, and the
//! aggregation verbs.
//!
//! The forwarding invariant that keeps determinism intact: frames of
//! routed requests (`LOAD`, `SAMPLE`) are relayed as the backend's **raw
//! bytes** — the router never re-encodes them — so a client cannot
//! distinguish a routed stream from a direct one. The only rewritten
//! frames are subscription-addressed ones (`sub` is renumbered because
//! two backends may hand out the same feed id), where the router parses,
//! patches the one field and re-encodes in place (field order preserved).

use crate::server::RouterState;
use htsat_json::Json;
use htsat_obs::trace::{TraceFilter, TraceReport};
use htsat_obs::Snapshot;
use htsat_runtime::StopToken;
use htsat_serve::proto::{
    encode_u64_exact, error_response, frame_error, frame_feed_error, frame_from_response,
    ok_response, request_id, ErrorCode, LoadSource, ProtoError, Request, DEFAULT_ENGINE,
    DEFAULT_REGISTER_TTL_MS, PROTOCOL_MAX, PROTOCOL_V1, PROTOCOL_V2,
};
use htsat_serve::ConnectOptions;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How often blocked reads wake up to poll stop flags.
const READ_POLL: Duration = Duration::from_millis(50);

/// Reject lines longer than this instead of buffering without bound.
const MAX_LINE_BYTES: usize = 64 * 1024 * 1024;

/// Socket write timeout towards clients and backends.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

/// How long a backend gets to answer the router's `HELLO`.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// Read timeout of one aggregation exchange per backend.
const AGGREGATE_IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Depth of the per-client outbound frame queue. Backend readers block on
/// a full queue, which propagates client-side backpressure upstream.
const FRAME_QUEUE_DEPTH: usize = 64;

// ---------------------------------------------------------------------------
// Line reading
// ---------------------------------------------------------------------------

/// A stop-aware newline-delimited reader (the socket carries a short read
/// timeout so blocked reads can poll the stop flags).
struct LineReader {
    stream: TcpStream,
    pending: Vec<u8>,
    scanned: usize,
}

impl LineReader {
    fn new(stream: TcpStream) -> std::io::Result<LineReader> {
        stream.set_read_timeout(Some(READ_POLL))?;
        Ok(LineReader {
            stream,
            pending: Vec::new(),
            scanned: 0,
        })
    }

    /// The next complete line (without its terminator), or `None` on EOF,
    /// stop, overflow, invalid UTF-8, a passed deadline, or a socket
    /// error.
    fn next_line(&mut self, stop: &StopToken, deadline: Option<Instant>) -> Option<String> {
        loop {
            if let Some(pos) = self.pending[self.scanned..]
                .iter()
                .position(|&b| b == b'\n')
            {
                let end = self.scanned + pos;
                let mut line: Vec<u8> = self.pending.drain(..=end).collect();
                self.scanned = 0;
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return String::from_utf8(line).ok();
            }
            self.scanned = self.pending.len();
            if self.pending.len() > MAX_LINE_BYTES || stop.is_stopped() {
                return None;
            }
            if deadline.is_some_and(|at| Instant::now() >= at) {
                return None;
            }
            let mut buf = [0u8; 64 * 1024];
            match self.stream.read(&mut buf) {
                Ok(0) => return None,
                Ok(n) => self.pending.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(_) => return None,
            }
        }
    }
}

/// Dials `addr` with the configured per-attempt timeout, retrying
/// `ECONNREFUSED` with exponential backoff (the daemon-startup race);
/// other errors fail immediately. The router-side sibling of
/// `Client::connect_with`.
fn dial_with_retry(addr: &str, options: &ConnectOptions) -> std::io::Result<TcpStream> {
    use std::net::ToSocketAddrs;
    let targets: Vec<std::net::SocketAddr> = addr.to_socket_addrs()?.collect();
    if targets.is_empty() {
        return Err(std::io::Error::new(
            ErrorKind::InvalidInput,
            format!("{addr} resolved to no address"),
        ));
    }
    let mut backoff = options.initial_backoff;
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let mut refused = false;
        let mut last = None;
        for target in &targets {
            let result = match options.connect_timeout {
                Some(timeout) => TcpStream::connect_timeout(target, timeout),
                None => TcpStream::connect(target),
            };
            match result {
                Ok(stream) => return Ok(stream),
                Err(e) => {
                    refused |= e.kind() == ErrorKind::ConnectionRefused;
                    last = Some(e);
                }
            }
        }
        let error = last.expect("at least one target was tried");
        if !refused || attempt > options.refused_retries {
            return Err(error);
        }
        std::thread::sleep(backoff);
        backoff = (backoff * 2).min(options.max_backoff);
    }
}

/// One v1 lockstep exchange with a backend on a fresh connection: send
/// `line`, return the raw reply line.
fn v1_exchange(
    addr: &str,
    line: &str,
    options: &ConnectOptions,
    read_timeout: Option<Duration>,
) -> std::io::Result<String> {
    let stream = dial_with_retry(addr, options)?;
    let _ = stream.set_nodelay(true);
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    let mut reader = LineReader::new(stream)?;
    let deadline = read_timeout.map(|t| Instant::now() + t);
    reader
        .next_line(&StopToken::new(), deadline)
        .ok_or_else(|| {
            std::io::Error::new(ErrorKind::UnexpectedEof, format!("{addr} closed mid-reply"))
        })
}

/// The engine name a request shards under.
fn engine_of(engine: &Option<String>) -> &str {
    engine.as_deref().unwrap_or(DEFAULT_ENGINE)
}

/// Decodes a `sub` field that may travel as a number or a decimal string.
fn field_sub(msg: &Json) -> Option<u64> {
    match msg.get("sub") {
        Some(Json::Str(text)) => text.parse().ok(),
        Some(other) => other.as_u64(),
        None => None,
    }
}

/// Replaces the value of the `sub` field in place (field order kept).
fn with_sub(mut msg: Json, sub: u64) -> Json {
    if let Json::Obj(pairs) = &mut msg {
        for (key, value) in pairs.iter_mut() {
            if key == "sub" {
                *value = encode_u64_exact(sub);
            }
        }
    }
    msg
}

// ---------------------------------------------------------------------------
// Routing decisions
// ---------------------------------------------------------------------------

/// What to forward for a `LOAD`: the wire line (rewritten to inline DIMACS
/// for router-side path loads), the shard fingerprint and the engine.
struct LoadRoute {
    line: String,
    fingerprint_hex: String,
    engine: String,
}

/// Computes a `LOAD`'s shard key (and, for path loads, the inline
/// rewrite). The router must parse the DIMACS anyway to know the
/// fingerprint, so malformed text fails here with the same code the
/// daemon would use.
fn route_load(
    state: &RouterState,
    raw: &str,
    msg: &Json,
    engine: &Option<String>,
    source: &LoadSource,
) -> Result<LoadRoute, (ErrorCode, String)> {
    let (text, rewrite) = match source {
        LoadSource::Inline(text) => (text.clone(), false),
        LoadSource::Path(path) => {
            if !state.config.allow_path_load {
                return Err((
                    ErrorCode::PathLoadDisabled,
                    "path loads are disabled on this router (start with --allow-path-load)"
                        .to_string(),
                ));
            }
            match std::fs::read_to_string(path) {
                Ok(text) => (text, true),
                Err(e) => return Err((ErrorCode::Io, format!("cannot read {path}: {e}"))),
            }
        }
    };
    let cnf = htsat_cnf::dimacs::parse_str(&text).map_err(|e| {
        (
            ErrorCode::TransformFailed,
            format!("DIMACS parse error: {e}"),
        )
    })?;
    let fingerprint_hex = htsat_cnf::Fingerprint::of(&cnf).to_hex();
    let line = if rewrite {
        // Swap `path` for the inline text; every other field (id, name,
        // engine, trace) is carried through untouched.
        let Json::Obj(pairs) = msg else {
            unreachable!("a decoded request is an object")
        };
        let rewritten: Vec<(String, Json)> = pairs
            .iter()
            .map(|(key, value)| {
                if key == "path" {
                    ("dimacs".to_string(), Json::Str(text.clone()))
                } else {
                    (key.clone(), value.clone())
                }
            })
            .collect();
        Json::Obj(rewritten).encode()
    } else {
        raw.to_string()
    };
    Ok(LoadRoute {
        line,
        fingerprint_hex,
        engine: engine_of(engine).to_string(),
    })
}

// ---------------------------------------------------------------------------
// Aggregation verbs
// ---------------------------------------------------------------------------

/// Runs one v1 exchange against every live backend, returning the parsed
/// replies by address. Unreachable backends are recorded as failures and
/// reported as `Err`.
fn poll_backends(state: &RouterState, line: &str) -> Vec<(String, std::io::Result<Json>)> {
    state
        .discovery
        .live()
        .into_iter()
        .map(|addr| {
            let result = v1_exchange(&addr, line, &state.config.dial, Some(AGGREGATE_IO_TIMEOUT))
                .and_then(|reply| {
                    Json::parse(&reply).map_err(|e| {
                        std::io::Error::new(ErrorKind::InvalidData, format!("bad reply: {e}"))
                    })
                });
            match &result {
                Ok(_) => state.discovery.record_success(&addr),
                Err(e) => {
                    htsat_obs::counter!("router.aggregate.backend_errors").inc();
                    htsat_obs::warn!("aggregate poll of {addr} failed: {e}");
                    state.discovery.record_failure(&addr);
                }
            }
            (addr, result)
        })
        .collect()
}

/// Merges one histogram into another (counts, sums and buckets add).
fn merge_histogram(into: &mut htsat_obs::HistogramSnapshot, other: &htsat_obs::HistogramSnapshot) {
    into.count += other.count;
    into.sum += other.sum;
    for &(index, n) in &other.buckets {
        match into.buckets.iter_mut().find(|(i, _)| *i == index) {
            Some((_, count)) => *count += n,
            None => into.buckets.push((index, n)),
        }
    }
    into.buckets.sort_by_key(|&(index, _)| index);
}

/// Merges `other` into `base`: counters and gauges sum by name,
/// histograms merge bucket-wise. Sections stay name-sorted so the merged
/// snapshot encodes deterministically.
fn merge_snapshot(base: &mut Snapshot, other: &Snapshot) {
    for (name, value) in &other.counters {
        match base.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, total)) => *total += value,
            None => base.counters.push((name.clone(), *value)),
        }
    }
    for (name, value) in &other.gauges {
        match base.gauges.iter_mut().find(|(n, _)| n == name) {
            Some((_, total)) => *total += value,
            None => base.gauges.push((name.clone(), *value)),
        }
    }
    for (name, hist) in &other.histograms {
        match base.histograms.iter_mut().find(|(n, _)| n == name) {
            Some((_, into)) => merge_histogram(into, hist),
            None => base.histograms.push((name.clone(), hist.clone())),
        }
    }
    base.counters.sort_by(|a, b| a.0.cmp(&b.0));
    base.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    base.histograms.sort_by(|a, b| a.0.cmp(&b.0));
}

/// `STATS` through the router: the router's own snapshot merged with
/// every live backend's into one `htsat-stats-v1` document. `reset`
/// forwards to the backends and resets the router's registry too.
fn aggregate_stats(state: &RouterState, reset: bool) -> Json {
    htsat_obs::counter!("router.requests.stats").inc();
    htsat_obs::gauge!("process.uptime_ms")
        .set(i64::try_from(state.started.elapsed().as_millis()).unwrap_or(i64::MAX));
    let mut merged = htsat_obs::global().snapshot();
    if reset {
        htsat_obs::global().reset();
    }
    let line = Request::Stats { reset }.encode().encode();
    let mut polled = 0u64;
    for (_, result) in poll_backends(state, &line) {
        if let Ok(reply) = result {
            if let Ok(snapshot) = Snapshot::from_json(&reply) {
                merge_snapshot(&mut merged, &snapshot);
                polled += 1;
            }
        }
    }
    let mut pairs = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("reset".to_string(), Json::Bool(reset)),
    ];
    if let Json::Obj(snapshot_pairs) = merged.to_json() {
        pairs.extend(snapshot_pairs);
    }
    pairs.push(("backends_polled".to_string(), polled.into()));
    Json::Obj(pairs)
}

/// `TRACE` through the router: the router's timelines first, then every
/// live backend's (by address), `dropped_traces` summed and the `last`
/// cap re-applied to the merged list.
fn aggregate_trace(
    state: &RouterState,
    last: Option<u64>,
    verb: Option<String>,
    min_ms: Option<u64>,
) -> Json {
    htsat_obs::counter!("router.requests.trace").inc();
    let filter = TraceFilter {
        last: usize::try_from(last.unwrap_or(0)).unwrap_or(usize::MAX),
        verb: verb.clone(),
        min_total_ns: min_ms.unwrap_or(0).saturating_mul(1_000_000),
    };
    let mut merged = htsat_obs::trace::snapshot_traces(&filter);
    let line = Request::Trace { last, verb, min_ms }.encode().encode();
    for (_, result) in poll_backends(state, &line) {
        if let Ok(reply) = result {
            if let Ok(report) = TraceReport::from_json(&reply) {
                merged.timelines.extend(report.timelines);
                merged.dropped_traces += report.dropped_traces;
            }
        }
    }
    if filter.last > 0 && filter.last != usize::MAX {
        merged.timelines.truncate(filter.last);
    }
    let mut pairs = vec![("ok".to_string(), Json::Bool(true))];
    if let Json::Obj(report_pairs) = merged.to_json() {
        pairs.extend(report_pairs);
    }
    Json::Obj(pairs)
}

/// `STATUS` through the router: registry counters summed, `entries`
/// concatenated, plus a router-only `backends` array with discovery-map
/// liveness and dispatch accounting.
fn aggregate_status(state: &RouterState) -> Json {
    htsat_obs::counter!("router.requests.status").inc();
    let line = Request::Status.encode().encode();
    let polls = poll_backends(state, &line);
    let mut entries = Vec::new();
    let mut sums: HashMap<&str, u64> = HashMap::new();
    let mut reachable: HashMap<String, bool> = HashMap::new();
    for (addr, result) in &polls {
        reachable.insert(addr.clone(), result.is_ok());
        let Ok(reply) = result else { continue };
        if let Some(Json::Arr(backend_entries)) = reply.get("entries") {
            entries.extend(backend_entries.iter().cloned());
        }
        for key in [
            "resident_bytes",
            "budget_bytes",
            "hits",
            "misses",
            "compiles",
            "evictions",
            "disk_hits",
            "in_flight",
            "feeds",
            "subscribers",
        ] {
            let value = reply.get(key).and_then(Json::as_u64).unwrap_or(0);
            *sums.entry(key).or_insert(0) += value;
        }
    }
    let backends: Vec<Json> = state
        .discovery
        .statuses()
        .into_iter()
        .map(|status| {
            Json::obj(vec![
                ("addr", status.addr.clone().into()),
                ("live", status.live.into()),
                (
                    "reachable",
                    reachable
                        .get(&status.addr)
                        .copied()
                        .map_or(Json::Null, Json::Bool),
                ),
                (
                    "expires_in_ms",
                    status.expires_in_ms.map_or(Json::Null, Json::from),
                ),
                ("inflight", status.inflight.into()),
                ("dispatched", status.dispatched.into()),
                ("failures", status.failures.into()),
            ])
        })
        .collect();
    let sum = |key: &str| -> Json { sums.get(key).copied().unwrap_or(0).into() };
    ok_response(vec![
        (
            "uptime_ms",
            (state.started.elapsed().as_secs_f64() * 1e3).into(),
        ),
        (
            "connections",
            state
                .connections_served
                .load(std::sync::atomic::Ordering::Relaxed)
                .into(),
        ),
        ("entries", Json::Arr(entries)),
        ("resident_bytes", sum("resident_bytes")),
        ("budget_bytes", sum("budget_bytes")),
        ("hits", sum("hits")),
        ("misses", sum("misses")),
        ("compiles", sum("compiles")),
        ("evictions", sum("evictions")),
        ("disk_hits", sum("disk_hits")),
        ("in_flight", sum("in_flight")),
        ("feeds", sum("feeds")),
        ("subscribers", sum("subscribers")),
        ("backends", Json::Arr(backends)),
    ])
}

/// `EVICT` through the router: broadcast to every live backend,
/// `evicted_count` summed.
fn broadcast_evict(
    state: &RouterState,
    fingerprint: htsat_cnf::Fingerprint,
    engine: Option<String>,
) -> Json {
    htsat_obs::counter!("router.requests.evict").inc();
    let line = Request::Evict {
        fingerprint,
        engine,
    }
    .encode()
    .encode();
    let mut evicted = 0u64;
    for (_, result) in poll_backends(state, &line) {
        if let Ok(reply) = result {
            evicted += reply
                .get("evicted_count")
                .and_then(Json::as_u64)
                .unwrap_or(0);
        }
    }
    ok_response(vec![
        ("evicted", (evicted > 0).into()),
        ("evicted_count", evicted.into()),
    ])
}

/// `SHUTDOWN` through the router: broadcast to every live backend
/// (best-effort), then the router itself stops.
fn broadcast_shutdown(state: &RouterState) -> Json {
    htsat_obs::counter!("router.requests.shutdown").inc();
    htsat_obs::info!("shutdown requested; broadcasting to backends");
    let line = Request::Shutdown.encode().encode();
    for (addr, result) in poll_backends(state, &line) {
        if let Err(e) = result {
            htsat_obs::warn!("shutdown broadcast to {addr} failed: {e}");
        }
    }
    ok_response(vec![("shutdown", true.into())])
}

/// `REGISTER`: updates the discovery map and echoes the accepted window.
fn handle_register(state: &RouterState, addr: &str, ttl_ms: Option<u64>) -> Json {
    htsat_obs::counter!("router.requests.register").inc();
    let ttl = ttl_ms.unwrap_or(DEFAULT_REGISTER_TTL_MS);
    if state.discovery.register(addr, Duration::from_millis(ttl)) {
        htsat_obs::info!("backend {addr} registered (ttl {ttl} ms)");
        htsat_obs::counter!("router.backends.joined").inc();
    }
    ok_response(vec![("addr", addr.into()), ("ttl_ms", ttl.into())])
}

// ---------------------------------------------------------------------------
// The v1 session
// ---------------------------------------------------------------------------

/// Forwards one v1 request line to the shard owner, failing over down the
/// rendezvous ranking. Returns the raw reply line to relay.
fn forward_unary_v1(
    state: &RouterState,
    fingerprint_hex: &str,
    engine: &str,
    line: &str,
) -> String {
    let ranked = state.discovery.ranked(fingerprint_hex, engine);
    if ranked.is_empty() {
        return error_response(
            ErrorCode::NoBackend,
            "no live backend (register daemons with --register, or seed --backend)",
        )
        .encode();
    }
    for addr in &ranked {
        state.discovery.record_dispatch(addr);
        htsat_obs::counter!("router.forward.dispatched").inc();
        let result = v1_exchange(addr, line, &state.config.dial, None);
        state.discovery.record_done(addr);
        match result {
            Ok(reply) => {
                state.discovery.record_success(addr);
                return reply;
            }
            Err(e) => {
                htsat_obs::counter!("router.forward.failovers").inc();
                htsat_obs::warn!("backend {addr} failed ({e}); trying the next candidate");
                state.discovery.record_failure(addr);
            }
        }
    }
    error_response(ErrorCode::NoBackend, "every candidate backend failed").encode()
}

/// Serves one client connection. Starts in v1 lockstep; a `HELLO`
/// negotiating v2 hands the rest of the connection to [`session_v2`].
pub(crate) fn session(stream: TcpStream, state: &Arc<RouterState>) {
    let _ = stream.set_nodelay(true);
    if stream.set_write_timeout(Some(WRITE_TIMEOUT)).is_err() {
        return;
    }
    let Ok(reader_stream) = stream.try_clone() else {
        return;
    };
    let Ok(mut reader) = LineReader::new(reader_stream) else {
        return;
    };
    let mut writer = stream;
    let mut write_line = move |text: &str| -> bool {
        writer.write_all(text.as_bytes()).is_ok() && writer.write_all(b"\n").is_ok()
    };
    while let Some(line) = reader.next_line(&state.stop, None) {
        if line.trim().is_empty() {
            continue;
        }
        let msg = match Json::parse(&line) {
            Ok(msg) => msg,
            Err(e) => {
                let response = error_response(ErrorCode::BadJson, &format!("invalid JSON: {e}"));
                if !write_line(&response.encode()) {
                    return;
                }
                continue;
            }
        };
        let request = match Request::decode(&msg) {
            Ok(request) => request,
            Err(ProtoError(e)) => {
                let response = error_response(ErrorCode::BadRequest, &e);
                if !write_line(&response.encode()) {
                    return;
                }
                continue;
            }
        };
        let reply: String = match request {
            Request::Hello { version } => match version {
                PROTOCOL_V1 | PROTOCOL_V2 => {
                    let response = ok_response(vec![
                        ("version", version.into()),
                        ("max_version", PROTOCOL_MAX.into()),
                    ]);
                    if !write_line(&response.encode()) {
                        return;
                    }
                    if version == PROTOCOL_V2 {
                        return session_v2(reader, write_line, state);
                    }
                    continue;
                }
                other => error_response(
                    ErrorCode::BadRequest,
                    &format!(
                        "unsupported protocol version {other} (supported: \
                         {PROTOCOL_V1}..={PROTOCOL_MAX})"
                    ),
                )
                .encode(),
            },
            Request::Register { addr, ttl_ms } => handle_register(state, &addr, ttl_ms).encode(),
            Request::Status => aggregate_status(state).encode(),
            Request::Stats { reset } => aggregate_stats(state, reset).encode(),
            Request::Trace { last, verb, min_ms } => {
                aggregate_trace(state, last, verb, min_ms).encode()
            }
            Request::Evict {
                fingerprint,
                engine,
            } => broadcast_evict(state, fingerprint, engine).encode(),
            Request::Shutdown => {
                let response = broadcast_shutdown(state);
                let _ = write_line(&response.encode());
                state.stop.stop();
                return;
            }
            Request::Load {
                ref engine,
                ref source,
                ..
            } => match route_load(state, &line, &msg, engine, source) {
                Ok(route) => {
                    htsat_obs::counter!("router.requests.load").inc();
                    forward_unary_v1(state, &route.fingerprint_hex, &route.engine, &route.line)
                }
                Err((code, message)) => error_response(code, &message).encode(),
            },
            Request::Sample(ref params) => {
                htsat_obs::counter!("router.requests.sample").inc();
                forward_unary_v1(
                    state,
                    &params.fingerprint.to_hex(),
                    engine_of(&params.engine),
                    &line,
                )
            }
            Request::Subscribe(_) | Request::Credit { .. } | Request::Unsubscribe { .. } => {
                error_response(
                    ErrorCode::BadRequest,
                    "subscriptions need protocol v2 (negotiate with hello)",
                )
                .encode()
            }
        };
        if !write_line(&reply) {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// The v2 session
// ---------------------------------------------------------------------------

/// One routed in-flight request.
struct Inflight {
    /// Backend the request went to.
    backend: String,
    /// The forwarded wire line, kept for transparent re-dispatch.
    line: String,
    /// Shard key, for re-ranking on failover.
    fingerprint_hex: String,
    engine: String,
    /// Whether any output frame reached the client (once it has, the
    /// request cannot be silently re-routed).
    relayed: bool,
}

/// Subscription id translation: the router renumbers feeds because two
/// backends may both hand out `sub` 1.
#[derive(Default)]
struct SubTable {
    by_router: HashMap<u64, (String, u64)>,
    by_backend: HashMap<(String, u64), u64>,
}

/// One upstream v2 connection to a backend, shared by the session's
/// threads. Writes are line-atomic under the mutex; the paired reader
/// thread funnels every backend frame into the client's writer queue.
struct BackendConn {
    addr: String,
    writer: Mutex<TcpStream>,
    alive: AtomicBool,
}

impl BackendConn {
    fn write_line(&self, line: &str) -> std::io::Result<()> {
        let mut stream = self.writer.lock().expect("backend writer lock");
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")
    }

    /// Closes the socket so the paired reader thread unblocks.
    fn close(&self) {
        if let Ok(stream) = self.writer.lock() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// State shared by a v2 session's reader, writer, backend-reader and
/// aggregation threads.
struct V2Shared {
    state: Arc<RouterState>,
    /// Outbound frames towards the client (drained by the writer thread).
    tx: SyncSender<String>,
    /// Fires when the session winds down (client EOF, write failure,
    /// router shutdown).
    stop: StopToken,
    inflight: Mutex<HashMap<u64, Inflight>>,
    subs: Mutex<SubTable>,
    conns: Mutex<HashMap<String, Arc<BackendConn>>>,
}

impl V2Shared {
    /// Queues a raw line for the client. Errors (writer gone) are
    /// ignored — the session is winding down.
    fn send_raw(&self, line: String) {
        let _ = self.tx.send(line);
    }

    fn send_frame(&self, frame: Json) {
        self.send_raw(frame.encode());
    }
}

/// Serves the v2 half of a connection. `write_line` is the lockstep
/// writer inherited from the v1 phase; it moves into the writer thread.
fn session_v2<W>(mut reader: LineReader, mut write_line: W, state: &Arc<RouterState>)
where
    W: FnMut(&str) -> bool + Send + 'static,
{
    let (tx, rx) = std::sync::mpsc::sync_channel::<String>(FRAME_QUEUE_DEPTH);
    let shared = Arc::new(V2Shared {
        state: state.clone(),
        tx,
        stop: StopToken::new(),
        inflight: Mutex::new(HashMap::new()),
        subs: Mutex::new(SubTable::default()),
        conns: Mutex::new(HashMap::new()),
    });
    let writer_stop = shared.stop.clone();
    let writer = std::thread::Builder::new()
        .name("htsat-router-writer".to_string())
        .spawn(move || {
            writer_loop(&rx, &mut write_line, &writer_stop);
        })
        .expect("spawn writer thread");
    while let Some(line) = reader.next_line(&state.stop, None) {
        if shared.stop.is_stopped() {
            break;
        }
        if line.trim().is_empty() {
            continue;
        }
        if !v2_handle_line(&shared, &line) {
            break;
        }
    }
    // Teardown: closing the upstream connections is the cleanup — each
    // backend sees its client (this router session) disconnect and
    // reclaims feeds and in-flight work itself.
    shared.stop.stop();
    let conns: Vec<Arc<BackendConn>> = shared
        .conns
        .lock()
        .map(|mut map| map.drain().map(|(_, conn)| conn).collect())
        .unwrap_or_default();
    for conn in conns {
        conn.alive.store(false, Ordering::SeqCst);
        conn.close();
    }
    drop(shared);
    let _ = writer.join();
}

/// Drains the frame queue to the client until the queue closes or a write
/// fails.
fn writer_loop<W: FnMut(&str) -> bool>(
    rx: &Receiver<String>,
    write_line: &mut W,
    stop: &StopToken,
) {
    while let Ok(line) = rx.recv() {
        if !write_line(&line) {
            stop.stop();
            return;
        }
    }
}

/// Handles one client line in v2. Returns `false` to end the session.
fn v2_handle_line(shared: &Arc<V2Shared>, line: &str) -> bool {
    let state = &shared.state;
    let msg = match Json::parse(line) {
        Ok(msg) => msg,
        Err(e) => {
            shared.send_frame(frame_error(
                None,
                ErrorCode::BadJson,
                &format!("invalid JSON: {e}"),
            ));
            return true;
        }
    };
    let id = match request_id(&msg) {
        Ok(Some(id)) => id,
        Ok(None) => {
            shared.send_frame(frame_error(
                None,
                ErrorCode::BadRequest,
                "v2 requests must carry `id`",
            ));
            return true;
        }
        Err(ProtoError(e)) => {
            shared.send_frame(frame_error(None, ErrorCode::BadRequest, &e));
            return true;
        }
    };
    let request = match Request::decode(&msg) {
        Ok(request) => request,
        Err(ProtoError(e)) => {
            shared.send_frame(frame_error(Some(id), ErrorCode::BadRequest, &e));
            return true;
        }
    };
    match request {
        Request::Hello { .. } => {
            shared.send_frame(frame_error(
                Some(id),
                ErrorCode::BadRequest,
                "protocol version already negotiated",
            ));
        }
        Request::Register { addr, ttl_ms } => {
            let response = handle_register(state, &addr, ttl_ms);
            shared.send_frame(frame_from_response(id, &response));
        }
        Request::Status | Request::Stats { .. } | Request::Trace { .. } | Request::Evict { .. } => {
            // Aggregation dials every backend (bounded by the aggregate
            // timeout) — run it off the reader thread so pipelined
            // streams keep flowing.
            let worker = shared.clone();
            let _ = std::thread::Builder::new()
                .name("htsat-router-aggregate".to_string())
                .spawn(move || {
                    let response = match request {
                        Request::Status => aggregate_status(&worker.state),
                        Request::Stats { reset } => aggregate_stats(&worker.state, reset),
                        Request::Trace { last, verb, min_ms } => {
                            aggregate_trace(&worker.state, last, verb, min_ms)
                        }
                        Request::Evict {
                            fingerprint,
                            engine,
                        } => broadcast_evict(&worker.state, fingerprint, engine),
                        _ => unreachable!("matched above"),
                    };
                    worker.send_frame(frame_from_response(id, &response));
                });
        }
        Request::Shutdown => {
            let response = broadcast_shutdown(state);
            shared.send_frame(frame_from_response(id, &response));
            state.stop.stop();
            return false;
        }
        Request::Load {
            ref engine,
            ref source,
            ..
        } => match route_load(state, line, &msg, engine, source) {
            Ok(route) => {
                htsat_obs::counter!("router.requests.load").inc();
                dispatch_forward(
                    shared,
                    id,
                    route.line,
                    route.fingerprint_hex,
                    route.engine,
                    None,
                );
            }
            Err((code, message)) => {
                shared.send_frame(frame_error(Some(id), code, &message));
            }
        },
        Request::Sample(ref params) => {
            htsat_obs::counter!("router.requests.sample").inc();
            dispatch_forward(
                shared,
                id,
                line.to_string(),
                params.fingerprint.to_hex(),
                engine_of(&params.engine).to_string(),
                None,
            );
        }
        Request::Subscribe(ref params) => {
            htsat_obs::counter!("router.requests.subscribe").inc();
            dispatch_forward(
                shared,
                id,
                line.to_string(),
                params.fingerprint.to_hex(),
                engine_of(&params.engine).to_string(),
                None,
            );
        }
        Request::Credit { sub, .. } | Request::Unsubscribe { sub } => {
            forward_sub_control(
                shared,
                id,
                sub,
                &msg,
                matches!(request, Request::Unsubscribe { .. }),
            );
        }
    }
    true
}

/// Forwards a `CREDIT`/`UNSUBSCRIBE` to the backend owning the feed,
/// rewriting the router's `sub` back to the backend's own id.
fn forward_sub_control(shared: &Arc<V2Shared>, id: u64, sub: u64, msg: &Json, unsubscribe: bool) {
    let target = {
        let mut subs = shared.subs.lock().expect("subs lock");
        let target = subs.by_router.get(&sub).cloned();
        if unsubscribe {
            // Drop the mapping now: trailing pushed frames racing the
            // unsubscribe are discarded, matching the feed's own "ended"
            // semantics.
            if let Some((addr, backend_sub)) = &target {
                subs.by_router.remove(&sub);
                subs.by_backend.remove(&(addr.clone(), *backend_sub));
            }
        }
        target
    };
    let Some((addr, backend_sub)) = target else {
        shared.send_frame(frame_error(
            Some(id),
            ErrorCode::BadRequest,
            &format!("unknown subscription `{sub}` (ended or never opened here)"),
        ));
        return;
    };
    let conn = shared
        .conns
        .lock()
        .ok()
        .and_then(|map| map.get(&addr).cloned())
        .filter(|conn| conn.alive.load(Ordering::SeqCst));
    let Some(conn) = conn else {
        shared.send_frame(frame_error(
            Some(id),
            ErrorCode::BackendLost,
            "the backend owning this subscription is gone",
        ));
        return;
    };
    let rewritten = with_sub(msg.clone(), backend_sub).encode();
    if conn.write_line(&rewritten).is_err() {
        handle_backend_loss(shared, &conn);
        shared.send_frame(frame_error(
            Some(id),
            ErrorCode::BackendLost,
            "the backend owning this subscription is gone",
        ));
    }
}

/// Routes one id-tagged request to the shard owner (or the next live
/// candidate), registering it in the in-flight map *before* the line goes
/// out so the backend reader can attribute every frame. `exclude` skips a
/// backend that just died during transparent re-dispatch.
fn dispatch_forward(
    shared: &Arc<V2Shared>,
    id: u64,
    line: String,
    fingerprint_hex: String,
    engine: String,
    exclude: Option<&str>,
) {
    {
        let inflight = shared.inflight.lock().expect("inflight lock");
        if inflight.contains_key(&id) {
            drop(inflight);
            shared.send_frame(frame_error(
                Some(id),
                ErrorCode::BadRequest,
                &format!("duplicate in-flight id {id}"),
            ));
            return;
        }
    }
    let ranked = shared.state.discovery.ranked(&fingerprint_hex, &engine);
    let candidates: Vec<&String> = ranked
        .iter()
        .filter(|addr| exclude.is_none_or(|dead| addr.as_str() != dead))
        .collect();
    if candidates.is_empty() {
        shared.send_frame(frame_error(
            Some(id),
            ErrorCode::NoBackend,
            "no live backend (register daemons with --register, or seed --backend)",
        ));
        return;
    }
    for addr in candidates {
        let conn = match ensure_conn(shared, addr) {
            Ok(conn) => conn,
            Err(e) => {
                htsat_obs::counter!("router.forward.failovers").inc();
                htsat_obs::warn!("cannot reach backend {addr}: {e}; trying the next candidate");
                shared.state.discovery.record_failure(addr);
                continue;
            }
        };
        {
            let mut inflight = shared.inflight.lock().expect("inflight lock");
            inflight.insert(
                id,
                Inflight {
                    backend: addr.clone(),
                    line: line.clone(),
                    fingerprint_hex: fingerprint_hex.clone(),
                    engine: engine.clone(),
                    relayed: false,
                },
            );
        }
        shared.state.discovery.record_dispatch(addr);
        htsat_obs::counter!("router.forward.dispatched").inc();
        if let Err(e) = conn.write_line(&line) {
            htsat_obs::warn!("write to backend {addr} failed: {e}");
            {
                let mut inflight = shared.inflight.lock().expect("inflight lock");
                inflight.remove(&id);
            }
            shared.state.discovery.record_done(addr);
            handle_backend_loss(shared, &conn);
            continue;
        }
        return;
    }
    shared.send_frame(frame_error(
        Some(id),
        ErrorCode::NoBackend,
        "every candidate backend failed",
    ));
}

/// The session's upstream v2 connection to `addr`, dialing and
/// negotiating (and spawning the paired reader thread) on first use.
fn ensure_conn(shared: &Arc<V2Shared>, addr: &str) -> std::io::Result<Arc<BackendConn>> {
    if let Some(conn) = shared
        .conns
        .lock()
        .ok()
        .and_then(|map| map.get(addr).cloned())
    {
        if conn.alive.load(Ordering::SeqCst) {
            return Ok(conn);
        }
    }
    let stream = dial_with_retry(addr, &shared.state.config.dial)?;
    let _ = stream.set_nodelay(true);
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    let mut reader = LineReader::new(stream.try_clone()?)?;
    // Negotiate v2 with the backend (the reply is v1-framed).
    let hello = Request::Hello {
        version: PROTOCOL_V2,
    }
    .encode()
    .encode();
    {
        let mut writer = stream.try_clone()?;
        writer.write_all(hello.as_bytes())?;
        writer.write_all(b"\n")?;
    }
    let reply = reader
        .next_line(&shared.stop, Some(Instant::now() + HANDSHAKE_TIMEOUT))
        .ok_or_else(|| {
            std::io::Error::new(ErrorKind::TimedOut, format!("{addr}: no hello reply"))
        })?;
    let accepted = Json::parse(&reply)
        .ok()
        .and_then(|msg| msg.get("ok").and_then(Json::as_bool))
        == Some(true);
    if !accepted {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("{addr} rejected the v2 handshake"),
        ));
    }
    let conn = Arc::new(BackendConn {
        addr: addr.to_string(),
        writer: Mutex::new(stream),
        alive: AtomicBool::new(true),
    });
    {
        let mut conns = shared.conns.lock().expect("conns lock");
        if let Some(existing) = conns.get(addr) {
            if existing.alive.load(Ordering::SeqCst) {
                // Lost a benign race; use the established connection.
                conn.close();
                return Ok(existing.clone());
            }
        }
        conns.insert(addr.to_string(), conn.clone());
    }
    let reader_shared = shared.clone();
    let reader_conn = conn.clone();
    std::thread::Builder::new()
        .name("htsat-router-upstream".to_string())
        .spawn(move || backend_reader(&reader_shared, &reader_conn, reader))
        .map_err(|e| std::io::Error::other(format!("cannot spawn reader: {e}")))?;
    Ok(conn)
}

/// Funnels one backend's frames to the client, renumbering subscription
/// ids and keeping the in-flight map honest. Frames that need no rewrite
/// are relayed as the backend's raw bytes.
fn backend_reader(shared: &Arc<V2Shared>, conn: &Arc<BackendConn>, mut reader: LineReader) {
    while let Some(line) = reader.next_line(&shared.stop, None) {
        if !conn.alive.load(Ordering::SeqCst) {
            return;
        }
        let Ok(msg) = Json::parse(&line) else {
            // A backend emitting junk is as good as dead.
            break;
        };
        let frame = msg.get("frame").and_then(Json::as_str).unwrap_or("");
        let id = request_id(&msg).ok().flatten();
        if let Some(backend_sub) = field_sub(&msg) {
            if let Some(id) = id {
                // A reply that carries both `id` and `sub` opens a feed:
                // mint the router-side id and start translating.
                let removed = {
                    let mut inflight = shared.inflight.lock().expect("inflight lock");
                    inflight.remove(&id)
                };
                if removed.is_some() {
                    shared.state.discovery.record_done(&conn.addr);
                }
                let router_sub = shared.state.next_sub.fetch_add(1, Ordering::Relaxed);
                {
                    let mut subs = shared.subs.lock().expect("subs lock");
                    subs.by_router
                        .insert(router_sub, (conn.addr.clone(), backend_sub));
                    subs.by_backend
                        .insert((conn.addr.clone(), backend_sub), router_sub);
                }
                shared.send_frame(with_sub(msg, router_sub));
            } else {
                // Feed-addressed frame (`pushed`, feed `done`/`error`).
                let router_sub = {
                    let mut subs = shared.subs.lock().expect("subs lock");
                    let key = (conn.addr.clone(), backend_sub);
                    let router_sub = subs.by_backend.get(&key).copied();
                    if matches!(frame, "done" | "error") {
                        if let Some(router_sub) = router_sub {
                            subs.by_backend.remove(&key);
                            subs.by_router.remove(&router_sub);
                        }
                    }
                    router_sub
                };
                if let Some(router_sub) = router_sub {
                    shared.send_frame(with_sub(msg, router_sub));
                } // else: ended locally (e.g. just unsubscribed) — drop.
            }
            continue;
        }
        if let Some(id) = id {
            if matches!(frame, "reply" | "done" | "error") {
                let removed = {
                    let mut inflight = shared.inflight.lock().expect("inflight lock");
                    inflight.remove(&id)
                };
                if removed.is_some() {
                    shared.state.discovery.record_done(&conn.addr);
                }
            } else {
                let mut inflight = shared.inflight.lock().expect("inflight lock");
                if let Some(entry) = inflight.get_mut(&id) {
                    entry.relayed = true;
                }
            }
        }
        shared.send_raw(line);
    }
    if conn.alive.load(Ordering::SeqCst) && !shared.stop.is_stopped() {
        handle_backend_loss(shared, conn);
    }
}

/// A backend connection died. Orphaned requests that produced no output
/// yet are transparently re-dispatched down the rendezvous ranking;
/// anything mid-stream gets a terminal `backend-lost` error (the client
/// re-issues and — same seed — receives the identical stream). Feeds on
/// the dead backend end with a feed-addressed `backend-lost` error.
fn handle_backend_loss(shared: &Arc<V2Shared>, conn: &Arc<BackendConn>) {
    if !conn.alive.swap(false, Ordering::SeqCst) {
        return; // already handled
    }
    conn.close();
    if let Ok(mut conns) = shared.conns.lock() {
        if conns
            .get(&conn.addr)
            .is_some_and(|current| Arc::ptr_eq(current, conn))
        {
            conns.remove(&conn.addr);
        }
    }
    shared.state.discovery.record_failure(&conn.addr);
    htsat_obs::counter!("router.backends.lost").inc();
    htsat_obs::warn!("backend {} lost", conn.addr);
    if shared.stop.is_stopped() {
        return;
    }
    let orphaned: Vec<(u64, Inflight)> = {
        let mut inflight = shared.inflight.lock().expect("inflight lock");
        let ids: Vec<u64> = inflight
            .iter()
            .filter(|(_, entry)| entry.backend == conn.addr)
            .map(|(&id, _)| id)
            .collect();
        ids.into_iter()
            .filter_map(|id| inflight.remove(&id).map(|entry| (id, entry)))
            .collect()
    };
    let lost_feeds: Vec<u64> = {
        let mut subs = shared.subs.lock().expect("subs lock");
        let routers: Vec<u64> = subs
            .by_router
            .iter()
            .filter(|(_, (addr, _))| *addr == conn.addr)
            .map(|(&router_sub, _)| router_sub)
            .collect();
        for router_sub in &routers {
            if let Some((addr, backend_sub)) = subs.by_router.remove(router_sub) {
                subs.by_backend.remove(&(addr, backend_sub));
            }
        }
        routers
    };
    for router_sub in lost_feeds {
        shared.send_frame(frame_feed_error(
            router_sub,
            ErrorCode::BackendLost,
            "the backend feeding this subscription is gone",
        ));
    }
    for (id, entry) in orphaned {
        shared.state.discovery.record_done(&conn.addr);
        if entry.relayed {
            shared.send_frame(frame_error(
                Some(id),
                ErrorCode::BackendLost,
                "backend lost mid-stream; re-issue the request to re-route",
            ));
        } else {
            htsat_obs::counter!("router.forward.failovers").inc();
            dispatch_forward(
                shared,
                id,
                entry.line,
                entry.fingerprint_hex,
                entry.engine,
                Some(&conn.addr),
            );
        }
    }
}
