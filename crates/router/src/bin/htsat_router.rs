//! `htsat-router` — front a fleet of `htsat-serve` daemons.
//!
//! ```sh
//! cargo run --release -p htsat-router -- --addr 127.0.0.1:7900
//! ```
//!
//! Clients speak the unchanged v1/v2 wire protocol to the router, which
//! shards `LOAD`/`SAMPLE`/`SUBSCRIBE` by rendezvous hashing of the
//! (fingerprint, engine) pair across registered backends. Daemons join by
//! starting with `htsat-serve --register ROUTER_ADDR` (they heartbeat so
//! their liveness window never lapses), or can be seeded statically.
//!
//! Options:
//! * `--addr HOST:PORT` — bind address (default `127.0.0.1:7900`; port `0`
//!   picks an ephemeral port, logged on startup).
//! * `--backend HOST:PORT` — statically seed a backend (repeatable; static
//!   entries never expire).
//! * `--allow-path-load` — allow `LOAD` requests naming *router-side*
//!   paths; the router reads the file and forwards the DIMACS inline.
//!
//! Diagnostics go to stderr through the `htsat-obs` leveled logger; set
//! `HTSAT_LOG=error|warn|info|debug` to choose the verbosity (default
//! `info`).

use htsat_router::{route, RouterConfig};

fn parse_args() -> Result<RouterConfig, String> {
    let mut config = RouterConfig {
        addr: "127.0.0.1:7900".to_string(),
        ..RouterConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--allow-path-load" {
            config.allow_path_load = true;
            continue;
        }
        let value = args
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--addr" => config.addr = value,
            "--backend" => config.backends.push(value),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(config)
}

fn main() {
    let config = match parse_args() {
        Ok(config) => config,
        Err(msg) => {
            htsat_obs::error!("{msg}");
            htsat_obs::error!(
                "usage: htsat-router [--addr HOST:PORT] [--backend HOST:PORT]... \
                 [--allow-path-load]"
            );
            std::process::exit(2);
        }
    };
    let backends = config.backends.len();
    let mut router = match route(config) {
        Ok(router) => router,
        Err(e) => {
            htsat_obs::error!("cannot start router: {e}");
            std::process::exit(1);
        }
    };
    htsat_obs::info!(
        "htsat-router listening on {} ({} static backend(s)); daemons join with \
         `htsat-serve --register {}`",
        router.local_addr(),
        backends,
        router.local_addr()
    );
    router.wait();
    htsat_obs::info!("htsat-router stopped");
}
