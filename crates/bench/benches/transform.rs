//! Criterion bench: CNF-to-circuit transformation time (paper Fig. 4, right)
//! for one instance of each benchmark family, plus an ablation of the
//! simplification and signature fast-path options.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use htsat_core::transform::{transform_with_config, TransformConfig};
use htsat_instances::suite::{table2_instance, SuiteScale};

fn bench_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("transform");
    group.sample_size(10);
    for name in ["or-100-20-8-UC-10", "90-10-10-q", "s15850a_15_7", "Prod-32"] {
        let instance = table2_instance(name, SuiteScale::Small).expect("known instance");
        group.bench_function(name, |b| {
            b.iter_batched(
                || instance.cnf.clone(),
                |cnf| transform_with_config(&cnf, &TransformConfig::default()).expect("transform"),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_transform_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("transform_ablation");
    group.sample_size(10);
    let instance = table2_instance("90-10-10-q", SuiteScale::Small).expect("known instance");
    let configs = [
        ("default", TransformConfig::default()),
        (
            "no_simplify",
            TransformConfig {
                simplify: false,
                ..TransformConfig::default()
            },
        ),
        (
            "no_signatures",
            TransformConfig {
                use_signatures: false,
                ..TransformConfig::default()
            },
        ),
    ];
    for (label, config) in configs {
        group.bench_function(label, |b| {
            b.iter_batched(
                || instance.cnf.clone(),
                |cnf| transform_with_config(&cnf, &config).expect("transform"),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transform, bench_transform_ablation);
criterion_main!(benches);
