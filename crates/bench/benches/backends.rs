//! Criterion bench: data-parallel ("GPU" stand-in) versus sequential ("CPU")
//! execution of the same sampling round — the paper's Fig. 4 (left)
//! ablation — plus the fused flat kernel against the staged reference
//! circuit, the allocation-free-hot-path ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use htsat_core::{GdSampler, KernelChoice, SamplerConfig};
use htsat_instances::suite::{table2_instance, SuiteScale};
use htsat_tensor::Backend;

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend_speedup");
    group.sample_size(10);
    for name in ["or-100-20-8-UC-10", "90-10-10-q", "s15850a_15_7", "Prod-32"] {
        let instance = table2_instance(name, SuiteScale::Small).expect("known instance");
        // The fused flat kernel on every backend, plus the staged reference
        // path sequentially — so `<backend> / reference-sequential` isolates
        // the fusion win and `threads-auto / sequential` the parallel win.
        let combos = [
            (KernelChoice::Flat, Backend::Sequential),
            (KernelChoice::Flat, Backend::Threads(0)),
            (KernelChoice::Flat, Backend::DataParallel),
            (KernelChoice::Reference, Backend::Sequential),
        ];
        for (kernel, backend) in combos {
            let config = SamplerConfig {
                batch_size: 512,
                backend,
                kernel,
                ..SamplerConfig::default()
            };
            let mut sampler = GdSampler::new(&instance.cnf, config).expect("transform");
            let label = match kernel {
                KernelChoice::Flat => backend.label(),
                KernelChoice::Reference => format!("reference-{}", backend.label()),
            };
            group.throughput(Throughput::Elements(512));
            group.bench_with_input(BenchmarkId::new(label, name), &backend, |b, _| {
                b.iter(|| sampler.sample_round())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
