//! Criterion bench: data-parallel ("GPU" stand-in) versus sequential ("CPU")
//! execution of the same sampling round — the paper's Fig. 4 (left) ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use htsat_core::{GdSampler, SamplerConfig};
use htsat_instances::suite::{table2_instance, SuiteScale};
use htsat_tensor::Backend;

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend_speedup");
    group.sample_size(10);
    for name in ["or-100-20-8-UC-10", "90-10-10-q", "s15850a_15_7", "Prod-32"] {
        let instance = table2_instance(name, SuiteScale::Small).expect("known instance");
        for backend in [
            Backend::Sequential,
            Backend::Threads(0),
            Backend::DataParallel,
        ] {
            let config = SamplerConfig {
                batch_size: 512,
                backend,
                ..SamplerConfig::default()
            };
            let mut sampler = GdSampler::new(&instance.cnf, config).expect("transform");
            group.throughput(Throughput::Elements(512));
            group.bench_with_input(BenchmarkId::new(backend.label(), name), &backend, |b, _| {
                b.iter(|| sampler.sample_round())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
