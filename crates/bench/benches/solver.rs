//! Criterion bench: the CDCL solving substrate on the benchmark families —
//! not a paper figure by itself, but the denominator behind every CPU
//! baseline in Table II.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use htsat_instances::suite::{table2_instance, SuiteScale};
use htsat_solver::{CdclConfig, CdclSolver, SolveResult};

fn bench_cdcl_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("cdcl_solve");
    group.sample_size(10);
    for name in ["or-50-10-7-UC-10", "90-10-10-q", "s15850a_3_2", "Prod-8"] {
        let instance = table2_instance(name, SuiteScale::Small).expect("known instance");
        group.bench_function(name, |b| {
            b.iter_batched(
                || CdclSolver::new(&instance.cnf),
                |mut solver| {
                    let result = solver.solve();
                    assert!(matches!(result, SolveResult::Sat(_)));
                    result
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_cdcl_randomised(c: &mut Criterion) {
    let mut group = c.benchmark_group("cdcl_randomised_resolve");
    group.sample_size(10);
    let instance = table2_instance("90-10-10-q", SuiteScale::Small).expect("known instance");
    let config = CdclConfig {
        random_polarity: true,
        random_branch_freq: 0.2,
        ..CdclConfig::default()
    };
    let mut solver = CdclSolver::with_config(&instance.cnf, config);
    let mut seed = 0u64;
    group.bench_function("reseeded_solve", |b| {
        b.iter(|| {
            seed += 1;
            solver.reseed(seed);
            solver.solve()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cdcl_solve, bench_cdcl_randomised);
criterion_main!(benches);
