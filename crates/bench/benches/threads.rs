//! Criterion bench: one sampling round at 1/2/4/8 worker threads — the
//! scaling curve of the htsat-runtime executor over the batch dimension,
//! on the fused flat-kernel path (each worker owns one reusable workspace
//! per parallel region; the whole GD trajectory of a row runs inside a
//! single region).
//!
//! On a multi-core machine the per-round latency should drop with the
//! worker count until it saturates the hardware; on a single core the curve
//! is flat, which bounds the pool's scheduling overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use htsat_core::{GdSampler, SamplerConfig};
use htsat_instances::suite::{table2_instance, SuiteScale};
use htsat_tensor::Backend;

fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("thread_scaling");
    group.sample_size(10);
    for name in ["90-10-10-q", "s15850a_15_7"] {
        let instance = table2_instance(name, SuiteScale::Small).expect("known instance");
        for threads in [1usize, 2, 4, 8] {
            let config = SamplerConfig {
                batch_size: 512,
                backend: Backend::Threads(threads),
                ..SamplerConfig::default()
            };
            let mut sampler = GdSampler::new(&instance.cnf, config).expect("transform");
            group.throughput(Throughput::Elements(512));
            group.bench_with_input(
                BenchmarkId::new(format!("threads-{threads}"), name),
                &threads,
                |b, _| b.iter(|| sampler.sample_round()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_thread_scaling);
criterion_main!(benches);
