//! Criterion bench: gradient-descent sampling throughput (paper Table II,
//! "this work" column) — one gradient-descent round per iteration, on one
//! instance per family and across batch sizes (Fig. 3 scaling).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use htsat_core::{GdSampler, SamplerConfig};
use htsat_instances::suite::{table2_instance, SuiteScale};

fn bench_sample_round_per_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("gd_sample_round");
    group.sample_size(10);
    for name in ["or-50-10-7-UC-10", "90-10-10-q", "s15850a_3_2", "Prod-8"] {
        let instance = table2_instance(name, SuiteScale::Small).expect("known instance");
        let config = SamplerConfig {
            batch_size: 256,
            ..SamplerConfig::default()
        };
        let mut sampler = GdSampler::new(&instance.cnf, config).expect("transform");
        group.throughput(Throughput::Elements(256));
        group.bench_function(name, |b| b.iter(|| sampler.sample_round()));
    }
    group.finish();
}

fn bench_batch_size_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("gd_batch_scaling");
    group.sample_size(10);
    let instance = table2_instance("90-10-10-q", SuiteScale::Small).expect("known instance");
    for batch in [64usize, 256, 1024, 4096] {
        let config = SamplerConfig {
            batch_size: batch,
            ..SamplerConfig::default()
        };
        let mut sampler = GdSampler::new(&instance.cnf, config).expect("transform");
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, _| {
            b.iter(|| sampler.sample_round())
        });
    }
    group.finish();
}

fn bench_iteration_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("gd_iterations");
    group.sample_size(10);
    let instance = table2_instance("or-100-20-8-UC-10", SuiteScale::Small).expect("known instance");
    for iterations in [1usize, 5, 10] {
        let config = SamplerConfig {
            batch_size: 256,
            iterations,
            ..SamplerConfig::default()
        };
        let mut sampler = GdSampler::new(&instance.cnf, config).expect("transform");
        group.bench_with_input(
            BenchmarkId::from_parameter(iterations),
            &iterations,
            |b, _| b.iter(|| sampler.sample_round()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sample_round_per_family,
    bench_batch_size_scaling,
    bench_iteration_count
);
criterion_main!(benches);
