//! Criterion bench: baseline samplers (paper Table II's UniGen3, CMSGen and
//! DiffSampler columns) drawing a fixed number of unique solutions from the
//! same instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htsat_baselines::{CmsGenLike, DiffSamplerLike, QuickSamplerLike, SatSampler, WalkSatSampler};
use htsat_instances::suite::{table2_instance, SuiteScale};
use std::time::Duration;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_samplers");
    group.sample_size(10);
    let instance = table2_instance("90-10-10-q", SuiteScale::Small).expect("known instance");
    let target = 50usize;
    let timeout = Duration::from_secs(2);

    group.bench_function(BenchmarkId::new("cmsgen-like", target), |b| {
        b.iter(|| CmsGenLike::new().sample(&instance.cnf, target, timeout))
    });
    group.bench_function(BenchmarkId::new("diffsampler-like", target), |b| {
        b.iter(|| DiffSamplerLike::new().sample(&instance.cnf, target, timeout))
    });
    group.bench_function(BenchmarkId::new("quicksampler-like", target), |b| {
        b.iter(|| QuickSamplerLike::new().sample(&instance.cnf, target, timeout))
    });
    group.bench_function(BenchmarkId::new("walksat", target), |b| {
        b.iter(|| WalkSatSampler::new().sample(&instance.cnf, target, timeout))
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
