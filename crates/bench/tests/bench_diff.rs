//! `bench-diff` gate matrix: improvements pass, regressions past the
//! threshold fail with the offending cells named, incompatible
//! environments refuse without `--force`, missing cells are reported
//! rather than silently dropped, and a tampered summary block cannot
//! sneak a regression past the gate.

use htsat_bench::harness::{
    diff_artifacts, summarize, BenchArtifact, BenchSettings, Cell, CellKey, DiffError, DiffOptions,
    DiffReport, Environment, Sample, ARTIFACT_VERSION,
};

fn artifact(host: &str, scale: &str, cells: &[(&str, &str, u64, &[f64])]) -> BenchArtifact {
    BenchArtifact {
        version: ARTIFACT_VERSION,
        environment: Environment {
            host: host.to_string(),
            cores: 8,
            os: "linux-x86_64".to_string(),
            toolchain: "rustc 1.95.0".to_string(),
            git_rev: "0123456789ab".to_string(),
            scale: scale.to_string(),
        },
        settings: BenchSettings {
            invocations: 3,
            warmup: 1,
            target: 30,
            timeout_ms: 500,
            batch: 128,
            date: "2026-08-07".to_string(),
        },
        cells: cells
            .iter()
            .map(|&(instance, engine, threads, throughputs)| Cell {
                key: CellKey {
                    instance: instance.to_string(),
                    engine: engine.to_string(),
                    threads,
                },
                samples: throughputs
                    .iter()
                    .map(|&throughput| Sample {
                        seconds: 0.25,
                        unique: 30,
                        throughput,
                    })
                    .collect(),
                summary: summarize(throughputs).expect("valid throughputs"),
            })
            .collect(),
    }
}

fn scaled(base: &BenchArtifact, factor: f64) -> BenchArtifact {
    let mut out = base.clone();
    for cell in &mut out.cells {
        for sample in &mut cell.samples {
            sample.throughput *= factor;
            sample.seconds /= factor;
        }
        cell.summary = cell.recompute_summary().expect("valid scaled samples");
    }
    out
}

fn baseline() -> BenchArtifact {
    artifact(
        "ci-host",
        "small",
        &[
            ("90-10-10-q", "gd", 1, &[48_000.0, 47_500.0, 48_250.0]),
            ("90-10-10-q", "walksat", 1, &[800.0, 805.0, 795.0]),
            ("or-50-10-7-UC-10", "gd", 1, &[30_000.0, 29_500.0, 30_500.0]),
        ],
    )
}

#[test]
fn improvement_passes() {
    let old = baseline();
    let new = scaled(&old, 1.15);
    let report = diff_artifacts(&old, &new, &DiffOptions::default()).expect("compatible");
    assert!(report.passes());
    assert!(report.regressed_cells.is_empty());
    assert!(report.geomean_ratio > 1.1, "{}", report.geomean_ratio);
    assert!(
        report.regression_pct() < 0.0,
        "improvement is negative regression"
    );
    assert_eq!(report.compared.len(), 3);
    assert!(report.forced_mismatches.is_empty());
    assert!(report.missing_in_new.is_empty() && report.missing_in_old.is_empty());
}

#[test]
fn small_noise_within_threshold_passes() {
    let old = baseline();
    let new = scaled(&old, 0.95);
    let report = diff_artifacts(&old, &new, &DiffOptions::default()).expect("compatible");
    assert!(report.passes(), "5% dip vs 10% threshold must pass");
}

#[test]
fn regression_past_threshold_fails_and_names_the_offending_cells() {
    let old = baseline();
    let new = scaled(&old, 0.75); // uniform 25% regression
    let options = DiffOptions {
        threshold_pct: 20.0,
        force: false,
    };
    let report = diff_artifacts(&old, &new, &options).expect("compatible");
    assert!(!report.passes());
    assert!(
        report.regression_pct() > 20.0,
        "{}",
        report.regression_pct()
    );
    assert_eq!(
        report.regressed_cells.len(),
        3,
        "every cell regressed past 20%"
    );
    let named: Vec<String> = report
        .regressed_cells
        .iter()
        .map(|c| c.key.to_string())
        .collect();
    assert!(named.contains(&"90-10-10-q/gd/t1".to_string()), "{named:?}");
    assert!(
        named.contains(&"or-50-10-7-UC-10/gd/t1".to_string()),
        "{named:?}"
    );
}

#[test]
fn one_bad_cell_is_named_even_when_the_geomean_survives() {
    let old = baseline();
    let mut new = scaled(&old, 1.0);
    for sample in &mut new.cells[1].samples {
        sample.throughput *= 0.5;
    }
    new.cells[1].summary = new.cells[1].recompute_summary().expect("valid");
    let report = diff_artifacts(&old, &new, &DiffOptions::default()).expect("compatible");
    // Geomean over 3 cells: (1 * 0.5 * 1)^(1/3) ≈ 0.79 → still a failure at
    // the default 10% threshold, and the culprit is named first (worst-ratio
    // ordering).
    assert!(!report.passes());
    assert_eq!(report.regressed_cells.len(), 1);
    assert_eq!(report.compared[0].key.to_string(), "90-10-10-q/walksat/t1");
    assert!((report.compared[0].ratio - 0.5).abs() < 1e-12);
}

#[test]
fn host_mismatch_refuses_without_force() {
    let old = baseline();
    let mut new = scaled(&old, 1.0);
    new.environment.host = "other-host".to_string();
    match diff_artifacts(&old, &new, &DiffOptions::default()) {
        Err(DiffError::Incompatible(mismatches)) => {
            assert_eq!(mismatches.len(), 1);
            assert!(mismatches[0].contains("host"), "{mismatches:?}");
            assert!(mismatches[0].contains("other-host"), "{mismatches:?}");
        }
        other => panic!("expected Incompatible, got {other:?}"),
    }
    let forced = DiffOptions {
        force: true,
        ..DiffOptions::default()
    };
    let report = diff_artifacts(&old, &new, &forced).expect("--force compares anyway");
    assert_eq!(report.forced_mismatches.len(), 1);
    assert!(report.forced_mismatches[0].contains("host"));
    assert!(report.passes());
}

#[test]
fn scale_and_settings_mismatches_are_each_named() {
    let old = baseline();
    let mut new = scaled(&old, 1.0);
    new.environment.scale = "paper".to_string();
    new.settings.target = 100;
    new.settings.timeout_ms = 2000;
    match diff_artifacts(&old, &new, &DiffOptions::default()) {
        Err(DiffError::Incompatible(mismatches)) => {
            let joined = mismatches.join("; ");
            assert!(joined.contains("scale"), "{joined}");
            assert!(joined.contains("target"), "{joined}");
            assert!(joined.contains("timeout_ms"), "{joined}");
        }
        other => panic!("expected Incompatible, got {other:?}"),
    }
}

#[test]
fn missing_cells_are_reported_not_dropped() {
    let old = artifact(
        "ci-host",
        "small",
        &[
            ("90-10-10-q", "gd", 1, &[48_000.0, 47_500.0]),
            ("90-10-10-q", "walksat", 1, &[800.0, 805.0]),
        ],
    );
    let new = artifact(
        "ci-host",
        "small",
        &[
            ("90-10-10-q", "gd", 1, &[48_100.0, 47_900.0]),
            ("Prod-32", "gd", 1, &[120.0, 118.0]),
        ],
    );
    let report = diff_artifacts(&old, &new, &DiffOptions::default()).expect("compatible");
    assert_eq!(report.compared.len(), 1);
    assert_eq!(report.missing_in_new.len(), 1);
    assert_eq!(
        report.missing_in_new[0].to_string(),
        "90-10-10-q/walksat/t1"
    );
    assert_eq!(report.missing_in_old.len(), 1);
    assert_eq!(report.missing_in_old[0].to_string(), "Prod-32/gd/t1");
}

#[test]
fn zero_median_cells_are_unmeasurable_not_ratioed() {
    let old = artifact(
        "ci-host",
        "small",
        &[
            ("90-10-10-q", "gd", 1, &[48_000.0, 47_500.0]),
            ("Prod-32", "unigen", 1, &[0.0, 0.0]), // timed out both runs
        ],
    );
    let new = scaled(&old, 1.02);
    let report = diff_artifacts(&old, &new, &DiffOptions::default()).expect("compatible");
    assert_eq!(report.compared.len(), 1);
    assert_eq!(report.unmeasurable.len(), 1);
    assert_eq!(report.unmeasurable[0].to_string(), "Prod-32/unigen/t1");
    assert!(report.passes());
}

#[test]
fn disjoint_artifacts_have_no_comparable_cells() {
    let old = artifact("ci-host", "small", &[("90-10-10-q", "gd", 1, &[48_000.0])]);
    let new = artifact("ci-host", "small", &[("Prod-32", "gd", 1, &[120.0])]);
    assert_eq!(
        diff_artifacts(&old, &new, &DiffOptions::default()),
        Err(DiffError::NoComparableCells)
    );
}

#[test]
fn tampered_summary_cannot_hide_a_regression() {
    let old = baseline();
    let mut new = scaled(&old, 0.6); // 40% regression in the raw samples
    for (tampered, original) in new.cells.iter_mut().zip(&old.cells) {
        // Forge the summary block to claim the old numbers.
        tampered.summary = original.summary;
    }
    let report = diff_artifacts(&old, &new, &DiffOptions::default()).expect("compatible");
    assert!(
        !report.passes(),
        "gate must recompute medians from raw samples, not trust the summary"
    );
    assert!(
        (report.geomean_ratio - 0.6).abs() < 1e-9,
        "{}",
        report.geomean_ratio
    );
}

#[test]
fn gate_boundary_is_inclusive() {
    let report = DiffReport {
        threshold_pct: 10.0,
        forced_mismatches: Vec::new(),
        compared: Vec::new(),
        missing_in_new: Vec::new(),
        missing_in_old: Vec::new(),
        unmeasurable: Vec::new(),
        geomean_ratio: 0.9,
        regressed_cells: Vec::new(),
    };
    assert!(
        report.passes(),
        "a regression of exactly the threshold passes"
    );
    let report = DiffReport {
        geomean_ratio: 0.899,
        ..report
    };
    assert!(!report.passes());
}

/// End-to-end negative gate through the `repro` binary, exactly as CI runs
/// it: degrade an artifact by 25%, then `bench-diff` at a 20% threshold
/// must exit 1.
#[test]
fn degraded_artifact_fails_the_cli_gate() {
    use std::process::Command;

    let dir = std::env::temp_dir().join(format!("htsat-bench-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let old_path = dir.join("old.json");
    let degraded_path = dir.join("degraded.json");
    baseline().write_to(&old_path).expect("write baseline");

    let repro = env!("CARGO_BIN_EXE_repro");
    let degrade = Command::new(repro)
        .args([
            "bench-degrade",
            old_path.to_str().unwrap(),
            degraded_path.to_str().unwrap(),
            "--factor",
            "0.75",
        ])
        .output()
        .expect("run bench-degrade");
    assert!(
        degrade.status.success(),
        "bench-degrade failed: {}",
        String::from_utf8_lossy(&degrade.stderr)
    );

    let diff = Command::new(repro)
        .args([
            "bench-diff",
            old_path.to_str().unwrap(),
            degraded_path.to_str().unwrap(),
            "--threshold",
            "20",
        ])
        .output()
        .expect("run bench-diff");
    assert_eq!(
        diff.status.code(),
        Some(1),
        "25% synthetic regression at a 20% threshold must exit 1\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&diff.stdout),
        String::from_utf8_lossy(&diff.stderr)
    );
    let stdout = String::from_utf8_lossy(&diff.stdout);
    assert!(stdout.contains("FAIL"), "{stdout}");

    // And the same comparison in the improving direction passes with exit 0.
    let ok = Command::new(repro)
        .args([
            "bench-diff",
            degraded_path.to_str().unwrap(),
            old_path.to_str().unwrap(),
            "--threshold",
            "20",
        ])
        .output()
        .expect("run bench-diff");
    assert_eq!(ok.status.code(), Some(0), "improvement must exit 0");

    std::fs::remove_dir_all(&dir).ok();
}

/// Unknown flags on the binary list the valid flags and exit non-zero
/// (regression test for the old behaviour of silently ignoring them).
#[test]
fn unknown_flag_exits_nonzero_and_lists_valid_flags() {
    use std::process::Command;

    let repro = env!("CARGO_BIN_EXE_repro");
    let out = Command::new(repro)
        .args(["bench-diff", "a.json", "b.json", "--bogus"])
        .output()
        .expect("run repro");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--bogus"), "{stderr}");
    assert!(
        stderr.contains("--threshold"),
        "valid flags listed: {stderr}"
    );
    assert!(stderr.contains("--force"), "valid flags listed: {stderr}");
}
