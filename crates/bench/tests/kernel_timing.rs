//! Opt-in diagnostic: per-GD-iteration cost of the flat versus reference
//! kernel, isolated via the iteration-count slope of `sample_round` (the
//! init and hardening stages are iteration-independent, so
//! `(t(hi) - t(lo)) / (hi - lo)` is the pure inner-loop cost).
//!
//! Run with:
//! `cargo test --release -p htsat-bench --test kernel_timing -- --ignored --nocapture`

use htsat_core::{GdSampler, KernelChoice, SamplerConfig};
use htsat_instances::suite::{table2_instance, SuiteScale};
use htsat_tensor::Backend;
use std::time::Instant;

fn round_time_ms(cnf: &htsat_cnf::Cnf, kernel: KernelChoice, iterations: usize) -> f64 {
    let config = SamplerConfig {
        batch_size: 512,
        iterations,
        backend: Backend::Sequential,
        kernel,
        ..SamplerConfig::default()
    };
    let mut sampler = GdSampler::new(cnf, config).expect("build");
    // Warm-up round, then measure.
    sampler.sample_round();
    let rounds = 5;
    let start = Instant::now();
    for _ in 0..rounds {
        sampler.sample_round();
    }
    start.elapsed().as_secs_f64() * 1e3 / rounds as f64
}

#[test]
#[ignore = "timing diagnostic; run explicitly with --ignored --nocapture"]
fn forward_vs_backward_split() {
    use htsat_core::{compile, transform};
    for name in ["s15850a_15_7", "Prod-32"] {
        let instance = table2_instance(name, SuiteScale::Small).expect("known instance");
        let compiled = compile::compile(&transform(&instance.cnf).expect("transform"));
        let n = compiled.num_inputs();
        let rows = 512usize;
        let inputs: Vec<Vec<f32>> = (0..rows)
            .map(|b| {
                (0..n)
                    .map(|j| ((b * 31 + j * 7) % 41) as f32 / 41.0)
                    .collect()
            })
            .collect();
        let reps = 10;

        let mut ws = compiled.kernel.workspace();
        let start = Instant::now();
        for _ in 0..reps {
            for row in &inputs {
                compiled.kernel.forward(row, &mut ws);
            }
        }
        let flat_fwd = start.elapsed().as_secs_f64() * 1e3;

        let mut acts = Vec::new();
        let start = Instant::now();
        for _ in 0..reps {
            for row in &inputs {
                compiled.circuit.forward_single(row, &mut acts);
            }
        }
        let ref_fwd = start.elapsed().as_secs_f64() * 1e3;

        let mut grad = vec![0.0f32; n];
        let start = Instant::now();
        for _ in 0..reps {
            for row in &inputs {
                compiled.kernel.loss_and_grad(row, &mut grad, &mut ws);
            }
        }
        let flat_full = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        for _ in 0..reps {
            for row in &inputs {
                compiled.circuit.loss_and_grad_single(row, &mut grad);
            }
        }
        let ref_full = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "{name:<16} forward: flat {flat_fwd:.1}ms ref {ref_fwd:.1}ms | \
             fwd+bwd: flat {flat_full:.1}ms ref {ref_full:.1}ms"
        );
    }
}

#[test]
#[ignore = "timing diagnostic; run explicitly with --ignored --nocapture"]
fn isolated_kernel_cost() {
    use htsat_core::{compile, transform};
    use htsat_tensor::ops;
    for name in ["90-10-10-q", "s15850a_15_7", "Prod-32"] {
        let instance = table2_instance(name, SuiteScale::Small).expect("known instance");
        let compiled = compile::compile(&transform(&instance.cnf).expect("transform"));
        let n = compiled.num_inputs();
        let rows = 512usize;
        let mut logits: Vec<Vec<f32>> = (0..rows)
            .map(|b| {
                (0..n)
                    .map(|j| ((b * 31 + j * 7) % 41) as f32 / 10.0 - 2.0)
                    .collect()
            })
            .collect();
        let lr = 10.0f32;

        let mut ws = compiled.kernel.workspace();
        let start = Instant::now();
        for _ in 0..5 {
            for row in logits.iter_mut() {
                compiled.kernel.fused_gd_step(row, lr, &mut ws);
            }
        }
        let fused_ms = start.elapsed().as_secs_f64() * 1e3;

        let mut probs = vec![0.0f32; n];
        let mut grad = vec![0.0f32; n];
        let start = Instant::now();
        for _ in 0..5 {
            for row in logits.iter_mut() {
                for (p, &v) in probs.iter_mut().zip(row.iter()) {
                    *p = ops::embed_logit(v);
                }
                compiled.circuit.loss_and_grad_single(&probs, &mut grad);
                for ((v, &g), &p) in row.iter_mut().zip(grad.iter()).zip(probs.iter()) {
                    *v -= lr * (g * ops::sigmoid_grad_from_output(p));
                }
            }
        }
        let staged_ms = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "{name:<18} nodes={:<6} fused {fused_ms:.1}ms vs staged-reference {staged_ms:.1}ms",
            compiled.circuit.num_nodes()
        );
    }
}

#[test]
#[ignore = "timing diagnostic; run explicitly with --ignored --nocapture"]
fn per_iteration_kernel_cost() {
    for name in ["90-10-10-q", "s15850a_15_7", "Prod-32"] {
        let instance = table2_instance(name, SuiteScale::Small).expect("known instance");
        let (lo, hi) = (1usize, 9usize);
        for kernel in [KernelChoice::Flat, KernelChoice::Reference] {
            let t_lo = round_time_ms(&instance.cnf, kernel, lo);
            let t_hi = round_time_ms(&instance.cnf, kernel, hi);
            let slope = (t_hi - t_lo) / (hi - lo) as f64;
            println!(
                "{name:<18} {kernel:?}: t({lo})={t_lo:.2}ms t({hi})={t_hi:.2}ms \
                 -> {slope:.3} ms/iteration"
            );
        }
    }
}
