//! Property-based tests for the harness statistics kernel.
//!
//! Every summary number in a bench artifact flows through `summarize` /
//! `geomean`, so these invariants are what make the perf trajectory
//! trustworthy: order independence (interleaved invocation order must not
//! change the stats), sane degenerate cases (one sample, constant samples)
//! and refusal of garbage (NaN, negative values) instead of quietly
//! producing a number.

use htsat_bench::harness::{geomean, summarize, StatsError};
use proptest::prelude::*;

/// Positive finite throughput-like values (0.001 ..= ~4.3M solutions/s).
fn arb_samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        (1u32..u32::MAX).prop_map(|raw| f64::from(raw) / 1000.0),
        1..24,
    )
}

/// Deterministic Fisher–Yates shuffle driven by a SplitMix64 stream.
fn shuffled(samples: &[f64], seed: u64) -> Vec<f64> {
    let mut out = samples.to_vec();
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..out.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #[test]
    fn summary_is_permutation_invariant(samples in arb_samples(), seed in any::<u64>()) {
        let original = summarize(&samples).expect("valid samples");
        let permuted = summarize(&shuffled(&samples, seed)).expect("valid samples");
        // min/median/mean/ci are computed over the *sorted* samples, so a
        // permutation of the input must not change a single bit.
        prop_assert_eq!(original, permuted);
    }

    #[test]
    fn geomean_is_permutation_invariant_up_to_rounding(
        samples in arb_samples(),
        seed in any::<u64>(),
    ) {
        let original = geomean(&samples).expect("positive samples");
        let permuted = geomean(&shuffled(&samples, seed)).expect("positive samples");
        prop_assert!(close(original, permuted), "{original} vs {permuted}");
    }

    #[test]
    fn summary_is_bounded_by_the_extremes(samples in arb_samples()) {
        let s = summarize(&samples).expect("valid samples");
        let max = samples.iter().copied().fold(f64::MIN, f64::max);
        prop_assert_eq!(s.samples, samples.len());
        prop_assert!(s.min <= s.median && s.median <= max);
        prop_assert!(s.min <= s.mean && s.mean <= max + 1e-9 * max.abs());
        prop_assert!(s.ci95 >= 0.0);
    }

    #[test]
    fn geomean_sits_between_min_and_max(samples in arb_samples()) {
        let g = geomean(&samples).expect("positive samples");
        let min = samples.iter().copied().fold(f64::MAX, f64::min);
        let max = samples.iter().copied().fold(f64::MIN, f64::max);
        let slack = 1e-9 * max;
        prop_assert!(g >= min - slack && g <= max + slack, "{min} <= {g} <= {max}");
    }

    #[test]
    fn single_sample_summary_is_the_sample_itself(raw in 1u32..u32::MAX) {
        let value = f64::from(raw) / 1000.0;
        let s = summarize(&[value]).expect("one valid sample");
        prop_assert_eq!(s.samples, 1);
        prop_assert_eq!(s.min, value);
        prop_assert_eq!(s.median, value);
        prop_assert_eq!(s.mean, value);
        prop_assert_eq!(s.ci95, 0.0);
        let g = geomean(&[value]).expect("one positive sample");
        prop_assert!(close(g, value), "{g} vs {value}");
    }

    #[test]
    fn constant_samples_have_no_spread(raw in 1u32..u32::MAX, n in 2usize..16) {
        let value = f64::from(raw) / 1000.0;
        let samples = vec![value; n];
        let s = summarize(&samples).expect("constant samples");
        prop_assert_eq!(s.min, value);
        prop_assert_eq!(s.median, value);
        // The mean of n copies can pick up one ulp of rounding from the
        // running sum; the CI half-width must stay at that noise level.
        prop_assert!(close(s.mean, value), "{} vs {value}", s.mean);
        prop_assert!(s.ci95 <= 1e-9 * value.max(1.0), "ci95 {}", s.ci95);
    }

    #[test]
    fn scaling_samples_scales_the_summary(samples in arb_samples(), factor_raw in 1u32..4_000) {
        let factor = f64::from(factor_raw) / 100.0; // 0.01 ..= 40.0
        let scaled: Vec<f64> = samples.iter().map(|s| s * factor).collect();
        let a = summarize(&samples).expect("valid");
        let b = summarize(&scaled).expect("valid");
        prop_assert!(close(a.min * factor, b.min));
        prop_assert!(close(a.median * factor, b.median));
        prop_assert!(close(a.mean * factor, b.mean));
        prop_assert!(close(a.ci95 * factor, b.ci95));
    }

    #[test]
    fn nan_is_rejected_wherever_it_hides(samples in arb_samples(), at in any::<usize>()) {
        let mut poisoned = samples.clone();
        let index = at % poisoned.len();
        poisoned[index] = f64::NAN;
        prop_assert_eq!(summarize(&poisoned), Err(StatsError::InvalidSample { index }));
        prop_assert_eq!(geomean(&poisoned), Err(StatsError::InvalidSample { index }));
    }

    #[test]
    fn negative_and_infinite_samples_are_rejected(samples in arb_samples(), at in any::<usize>()) {
        let index = at % samples.len();
        let mut negative = samples.clone();
        negative[index] = -negative[index];
        prop_assert_eq!(summarize(&negative), Err(StatsError::InvalidSample { index }));
        let mut infinite = samples.clone();
        infinite[index] = f64::INFINITY;
        prop_assert_eq!(summarize(&infinite), Err(StatsError::InvalidSample { index }));
    }

    #[test]
    fn zero_throughput_is_summarizable_but_has_no_geomean(samples in arb_samples(), at in any::<usize>()) {
        // A cell that found nothing within the timeout is a legitimate
        // *summary* (zero throughput) but an illegitimate *ratio* input.
        let mut with_zero = samples.clone();
        let index = at % with_zero.len();
        with_zero[index] = 0.0;
        let s = summarize(&with_zero).expect("zero is a valid sample");
        prop_assert_eq!(s.min, 0.0);
        prop_assert_eq!(geomean(&with_zero), Err(StatsError::NonPositive { index }));
    }
}

#[test]
fn empty_sample_sets_are_rejected() {
    assert_eq!(summarize(&[]), Err(StatsError::Empty));
    assert_eq!(geomean(&[]), Err(StatsError::Empty));
}
