//! Bench-artifact schema tests: byte-identical round trips, schema
//! stability against a committed fixture, validation of garbage, and the
//! acceptance gate that a real harness run's summary stats are reproduced
//! from its own raw samples.

use htsat_bench::harness::{
    run_bench, summarize, ArtifactError, BenchArtifact, BenchConfig, BenchSettings, Cell, CellKey,
    Environment, Sample, ARTIFACT_VERSION,
};
use htsat_bench::RunOptions;
use std::time::Duration;

fn sample_artifact() -> BenchArtifact {
    let make_cell = |instance: &str, engine: &str, throughputs: &[f64]| Cell {
        key: CellKey {
            instance: instance.to_string(),
            engine: engine.to_string(),
            threads: 1,
        },
        samples: throughputs
            .iter()
            .enumerate()
            .map(|(i, &throughput)| Sample {
                seconds: 0.125 + i as f64 * 0.0625,
                unique: 30,
                throughput,
            })
            .collect(),
        summary: summarize(throughputs).expect("valid throughputs"),
    };
    BenchArtifact {
        version: ARTIFACT_VERSION,
        environment: Environment {
            host: "test-host".to_string(),
            cores: 4,
            os: "linux-x86_64".to_string(),
            toolchain: "rustc 1.95.0".to_string(),
            git_rev: "0123456789ab".to_string(),
            scale: "small".to_string(),
        },
        settings: BenchSettings {
            invocations: 3,
            warmup: 1,
            target: 30,
            timeout_ms: 500,
            batch: 128,
            date: "2026-08-07".to_string(),
        },
        cells: vec![
            make_cell("90-10-10-q", "gd", &[47890.5, 48102.25, 46011.75]),
            make_cell("90-10-10-q", "walksat", &[801.5, 799.25, 805.0]),
        ],
    }
}

#[test]
fn emit_parse_emit_is_byte_identical() {
    let artifact = sample_artifact();
    let first = artifact.encode();
    let reparsed = BenchArtifact::parse(&first).expect("parse own emission");
    assert_eq!(reparsed, artifact, "struct round trip");
    assert_eq!(reparsed.encode(), first, "byte-identical re-emission");
}

#[test]
fn file_name_embeds_host_and_date() {
    let artifact = sample_artifact();
    assert_eq!(artifact.file_name(), "BENCH_test-host_2026-08-07.json");
}

#[test]
fn committed_fixture_parses_forever() {
    // Schema-stability contract: this fixture file is FROZEN. If this test
    // fails, a schema change broke compatibility with every artifact ever
    // recorded — bump ARTIFACT_VERSION and teach `parse` both versions
    // instead of editing the fixture.
    let text = include_str!("fixtures/BENCH_schema-v1.json");
    let artifact = BenchArtifact::parse(text).expect("frozen fixture must keep parsing");
    assert_eq!(artifact.version, 1);
    assert!(!artifact.environment.host.is_empty());
    assert!(!artifact.cells.is_empty());
    for cell in &artifact.cells {
        assert_eq!(
            cell.recompute_summary().expect("fixture samples are valid"),
            cell.summary,
            "fixture summary of {} must be reproducible from its raw samples",
            cell.key
        );
    }
    // And the canonical form is stable: re-encoding the fixture reproduces
    // its bytes exactly, so artifacts never churn in git.
    assert_eq!(artifact.encode(), text);
}

#[test]
fn unknown_version_is_rejected_not_misread() {
    let mut doc = sample_artifact().encode();
    doc = doc.replacen("{\"version\":1,", "{\"version\":2,", 1);
    match BenchArtifact::parse(&doc) {
        Err(ArtifactError::UnsupportedVersion(2)) => {}
        other => panic!("expected UnsupportedVersion(2), got {other:?}"),
    }
}

#[test]
fn zero_duration_and_negative_throughput_are_rejected() {
    let mut artifact = sample_artifact();
    artifact.cells[0].samples[1].seconds = 0.0;
    match BenchArtifact::parse(&artifact.encode()) {
        Err(ArtifactError::InvalidSample { cell, reason }) => {
            assert!(cell.contains("90-10-10-q/gd"), "{cell}");
            assert!(reason.contains("duration"), "{reason}");
        }
        other => panic!("expected InvalidSample, got {other:?}"),
    }

    let mut artifact = sample_artifact();
    artifact.cells[1].samples[0].throughput = -1.0;
    assert!(matches!(
        BenchArtifact::parse(&artifact.encode()),
        Err(ArtifactError::InvalidSample { .. })
    ));
}

#[test]
fn missing_fields_are_named() {
    let err = BenchArtifact::parse("{\"version\":1}").expect_err("incomplete");
    match err {
        ArtifactError::Missing(path) => assert!(path.starts_with("environment"), "{path}"),
        other => panic!("expected Missing, got {other:?}"),
    }
    assert!(BenchArtifact::parse("not json").is_err());
}

/// The acceptance gate: a real `bench` run emits an artifact whose summary
/// stats are reproduced from its own raw samples, round-tripped through
/// the codec.
#[test]
fn real_bench_run_summary_is_reproduced_from_raw_samples() {
    let config = BenchConfig {
        options: RunOptions {
            target: 5,
            timeout: Duration::from_millis(300),
            batch_size: 64,
            ..RunOptions::default()
        },
        invocations: 2,
        warmup: 1,
        engines: vec!["gd".into(), "walksat".into()],
        thread_counts: vec![1],
        instances: vec!["90-10-10-q".into()],
    };
    let artifact = run_bench(&config).expect("quick harness run");
    let reparsed = BenchArtifact::parse(&artifact.encode()).expect("parse own emission");
    assert_eq!(reparsed.cells.len(), 2);
    for cell in &reparsed.cells {
        assert_eq!(
            cell.samples.len(),
            2,
            "2 timed invocations -> 2 samples in {}",
            cell.key
        );
        assert_eq!(
            cell.recompute_summary().expect("valid run samples"),
            cell.summary,
            "stored summary of {} must equal the one recomputed from raw samples",
            cell.key
        );
        for sample in &cell.samples {
            assert!(sample.seconds > 0.0 && sample.seconds.is_finite());
        }
    }
    // The environment block is populated, and the file name is canonical.
    assert!(reparsed.environment.cores >= 1);
    assert_eq!(reparsed.environment.scale, "small");
    let name = reparsed.file_name();
    assert!(
        name.starts_with("BENCH_") && name.ends_with(".json"),
        "{name}"
    );
    assert!(name.matches('_').count() >= 2, "{name}");
}
