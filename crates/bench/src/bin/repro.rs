//! `repro` — regenerate the paper's tables and figures.
//!
//! ```sh
//! cargo run --release -p htsat-bench --bin repro -- table2
//! cargo run --release -p htsat-bench --bin repro -- table2 --threads 8 --stream
//! cargo run --release -p htsat-bench --bin repro -- fig2 --instances 20
//! cargo run --release -p htsat-bench --bin repro -- threads --counts 1,2,4,8
//! cargo run --release -p htsat-bench --bin repro -- all --scale paper --timeout 30
//! ```
//!
//! Subcommands: `table2`, `fig2`, `fig3-iters`, `fig3-mem`, `fig4-speedup`,
//! `fig4-ops`, `fig4-transform`, `fig4`, `threads`, `serve-bench`, `all`.
//!
//! `serve-bench` starts the `htsat-serve` daemon on a loopback ephemeral
//! port, measures cold-load vs registry-hit round-trip latency, and fails
//! unless the daemon's `SAMPLE` reproduces the in-process stream
//! bit-for-bit at 1 and 8 threads — the CI loopback end-to-end gate.
//!
//! Options: `--scale small|paper`, `--target N`, `--timeout SECONDS`,
//! `--batch N`, `--threads N` (`0` = one worker per core), `--stream`
//! (collect through the streaming API), `--kernel flat|reference` (fused
//! flat kernel, the default, or the staged reference circuit),
//! `--instances N` (fig2 only), `--counts A,B,...` (threads only).

use htsat_bench::{
    ablation_instances, fig2, fig3_iterations, fig3_memory, fig4, format_table2, serve_bench,
    table2, threads_sweep, RunOptions,
};
use htsat_core::KernelChoice;
use htsat_instances::suite::SuiteScale;
use std::time::Duration;

struct CliArgs {
    command: String,
    options: RunOptions,
    fig2_instances: usize,
    thread_counts: Vec<usize>,
}

fn parse_args() -> Result<CliArgs, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| "all".to_string());
    let mut options = RunOptions::default();
    let mut fig2_instances = 12usize;
    let mut thread_counts = vec![1, 2, 4, 8];
    while let Some(flag) = args.next() {
        if flag == "--stream" {
            options.stream = true;
            continue;
        }
        let mut value = || {
            args.next()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--scale" => {
                options.scale = match value()?.as_str() {
                    "paper" => SuiteScale::Paper,
                    "small" => SuiteScale::Small,
                    other => return Err(format!("unknown scale `{other}`")),
                };
            }
            "--target" => {
                options.target = value()?
                    .parse()
                    .map_err(|e| format!("invalid --target: {e}"))?;
            }
            "--timeout" => {
                let secs: f64 = value()?
                    .parse()
                    .map_err(|e| format!("invalid --timeout: {e}"))?;
                options.timeout = Duration::from_secs_f64(secs);
            }
            "--batch" => {
                options.batch_size = value()?
                    .parse()
                    .map_err(|e| format!("invalid --batch: {e}"))?;
            }
            "--threads" => {
                options.threads = Some(
                    value()?
                        .parse()
                        .map_err(|e| format!("invalid --threads: {e}"))?,
                );
            }
            "--kernel" => {
                options.kernel = match value()?.as_str() {
                    "flat" => KernelChoice::Flat,
                    "reference" => KernelChoice::Reference,
                    other => return Err(format!("unknown kernel `{other}`")),
                };
            }
            "--instances" => {
                fig2_instances = value()?
                    .parse()
                    .map_err(|e| format!("invalid --instances: {e}"))?;
            }
            "--counts" => {
                thread_counts = value()?
                    .split(',')
                    .map(|c| c.trim().parse::<usize>())
                    .collect::<Result<Vec<usize>, _>>()
                    .map_err(|e| format!("invalid --counts: {e}"))?;
                if thread_counts.is_empty() {
                    return Err("--counts needs at least one thread count".to_string());
                }
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(CliArgs {
        command,
        options,
        fig2_instances,
        thread_counts,
    })
}

fn run_table2(options: &RunOptions) {
    println!("== Table II: unique-solution throughput (solutions/second) ==");
    println!(
        "   target {} unique solutions, timeout {:?}, batch {}, scale {:?}, backend {}, kernel {:?}{}\n",
        options.target,
        options.timeout,
        options.batch_size,
        options.scale,
        options.gd_backend().label(),
        options.kernel,
        if options.stream { ", streaming" } else { "" }
    );
    let rows = table2(options);
    print!("{}", format_table2(&rows));
    let geo: f64 = rows
        .iter()
        .filter(|r| r.speedup.is_finite() && r.speedup > 0.0)
        .map(|r| r.speedup.ln())
        .sum::<f64>()
        / rows.len().max(1) as f64;
    println!(
        "\ngeometric-mean speedup over the best baseline: {:.1}x",
        geo.exp()
    );
}

fn run_fig2(options: &RunOptions, instances: usize) {
    println!("== Fig. 2: latency (ms) vs unique solutions, per sampler ==\n");
    println!(
        "{:<22} {:<18} {:>10} {:>14}",
        "instance", "sampler", "unique", "latency (ms)"
    );
    for p in fig2(options, instances) {
        println!(
            "{:<22} {:<18} {:>10} {:>14.1}",
            p.instance, p.sampler, p.unique, p.latency_ms
        );
    }
}

fn run_fig3_iters(options: &RunOptions) {
    println!("== Fig. 3 (left): unique solutions vs GD iterations ==\n");
    println!("{:<22} {:>11} {:>10}", "instance", "iterations", "unique");
    for p in fig3_iterations(options, 10) {
        println!("{:<22} {:>11} {:>10}", p.instance, p.iterations, p.unique);
    }
}

fn run_fig3_mem(options: &RunOptions) {
    println!("== Fig. 3 (right): modelled memory (MiB) vs batch size ==\n");
    println!("{:<22} {:>12} {:>14}", "instance", "batch", "memory (MiB)");
    let batches = [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];
    for p in fig3_memory(options, &batches) {
        println!("{:<22} {:>12} {:>14.2}", p.instance, p.batch, p.memory_mib);
    }
}

fn run_fig4(options: &RunOptions) {
    println!("== Fig. 4: backend speedup, ops reduction, transformation time ==\n");
    println!(
        "{:<22} {:>16} {:>16} {:>10} {:>10} {:>14}",
        "instance", "parallel (/s)", "sequential (/s)", "speedup", "ops red.", "transform (s)"
    );
    for row in fig4(options) {
        println!(
            "{:<22} {:>16.1} {:>16.1} {:>9.1}x {:>9.1}x {:>14.4}",
            row.instance,
            row.parallel_throughput,
            row.sequential_throughput,
            row.speedup,
            row.ops_reduction,
            row.transform_seconds
        );
    }
}

fn run_threads(options: &RunOptions, counts: &[usize]) {
    println!("== Thread scaling: unique-solution throughput per worker count ==\n");
    println!(
        "{:<22} {:>8} {:>10} {:>18}",
        "instance", "threads", "unique", "throughput (/s)"
    );
    for p in threads_sweep(options, counts) {
        println!(
            "{:<22} {:>8} {:>10} {:>18.1}",
            p.instance, p.threads, p.unique, p.throughput
        );
    }
}

fn run_serve_bench(options: &RunOptions) {
    println!("== serve-bench: daemon round-trip latency and wire determinism ==\n");
    let report = serve_bench(options);
    println!("instance: {}\n", report.instance);
    println!("{:<42} {:>16} {:>8}", "leg", "round-trip (ms)", "unique");
    for leg in &report.legs {
        println!(
            "{:<42} {:>16.2} {:>8}",
            leg.label, leg.round_trip_ms, leg.unique
        );
    }
    println!(
        "\ncompiles: {} (one per loaded engine; warm legs ride the registry hit path)",
        report.compiles
    );
    println!(
        "wire determinism vs in-process streams (gd at 1 and 8 threads, walksat A/B): {}",
        if report.deterministic {
            "OK"
        } else {
            "MISMATCH"
        }
    );
    if report.compiles != htsat_bench::ServeBenchReport::EXPECTED_COMPILES || !report.deterministic
    {
        // CI runs this subcommand as the loopback end-to-end gate.
        std::process::exit(1);
    }
}

fn main() {
    let cli = match parse_args() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: repro <table2|fig2|fig3-iters|fig3-mem|fig4|fig4-speedup|fig4-ops|fig4-transform|threads|serve-bench|all> [--scale small|paper] [--target N] [--timeout S] [--batch N] [--threads N] [--stream] [--kernel flat|reference] [--instances N] [--counts A,B,...]");
            std::process::exit(2);
        }
    };
    let options = &cli.options;
    println!(
        "# htsat repro — {} ablation instances available\n",
        ablation_instances(options.scale).len()
    );
    match cli.command.as_str() {
        "table2" => run_table2(options),
        "fig2" => run_fig2(options, cli.fig2_instances),
        "fig3-iters" => run_fig3_iters(options),
        "fig3-mem" => run_fig3_mem(options),
        "fig4" | "fig4-speedup" | "fig4-ops" | "fig4-transform" => run_fig4(options),
        "threads" => run_threads(options, &cli.thread_counts),
        "serve-bench" => run_serve_bench(options),
        "all" => {
            run_table2(options);
            println!();
            run_fig2(options, cli.fig2_instances);
            println!();
            run_fig3_iters(options);
            println!();
            run_fig3_mem(options);
            println!();
            run_fig4(options);
        }
        other => {
            eprintln!("unknown subcommand `{other}`");
            std::process::exit(2);
        }
    }
}
