//! `repro` — regenerate the paper's tables and figures, and run the
//! statistical bench harness.
//!
//! ```sh
//! cargo run --release -p htsat-bench --bin repro -- table2
//! cargo run --release -p htsat-bench --bin repro -- table2 --threads 8 --stream
//! cargo run --release -p htsat-bench --bin repro -- fig2 --instances 20
//! cargo run --release -p htsat-bench --bin repro -- threads --counts 1,2,4,8
//! cargo run --release -p htsat-bench --bin repro -- all --scale paper --timeout 30
//! cargo run --release -p htsat-bench --bin repro -- bench --quick
//! cargo run --release -p htsat-bench --bin repro -- bench-diff old.json new.json --threshold 10
//! ```
//!
//! Subcommands: `table2`, `fig2`, `fig3-iters`, `fig3-mem`, `fig4-speedup`,
//! `fig4-ops`, `fig4-transform`, `fig4`, `threads`, `serve-bench`, `bench`,
//! `bench-diff`, `bench-degrade`, `stats`, `trace`, `all`. Each subcommand
//! accepts only its own flags (see `htsat_bench::cli`); a stray flag exits
//! non-zero naming the valid ones.
//!
//! `serve-bench` starts the `htsat-serve` daemon on a loopback ephemeral
//! port, measures cold-load vs registry-hit round-trip latency, and fails
//! unless the daemon's `SAMPLE` reproduces the in-process stream
//! bit-for-bit at 1 and 8 threads — the CI loopback end-to-end gate.
//!
//! `stats` connects to a *running* daemon, fetches its metrics snapshot
//! over the `STATS` wire verb and pretty-prints it; `--format prom` emits
//! the Prometheus text exposition instead, `--reset` zeroes the daemon's
//! counters and histograms after reading, and `--exercise` first drives a
//! LOAD + SAMPLE + induced error against the daemon and exits non-zero
//! unless the key counters moved — CI's observability gate.
//!
//! `trace` fetches a running daemon's recent request timelines over the
//! `TRACE` wire verb and prints one span waterfall per request (filter
//! with `--last`/`--verb`/`--min-ms`). `--exercise` first drives traced,
//! pipelined `SAMPLE` traffic from two v2 connections and exits non-zero
//! unless the returned timelines attribute the reader, queue, writer and
//! engine-round work — CI's trace gate.
//!
//! `bench` runs the statistical harness (interleaved invocations, warmup
//! separation, min/median/mean/CI per cell) and emits a
//! `BENCH_<host>_<date>.json` perf-trajectory artifact. `bench-diff` pairs
//! two artifacts and exits non-zero when the throughput geomean regresses
//! past the threshold; it refuses cross-host/cross-scale comparisons
//! without `--force`. `bench-degrade` scales an artifact's throughput
//! samples — CI's negative gate proving `bench-diff` catches an injected
//! regression.

use htsat_bench::cli::{self, Command, StatsFormat};
use htsat_bench::harness::{
    capture_environment, diff_artifacts, run_bench_with, summarize, utc_today, BenchArtifact,
    BenchConfig, BenchSettings, Cell, CellKey, DiffError, DiffOptions, Sample, ARTIFACT_VERSION,
};
use htsat_bench::{
    ablation_instances, fig2, fig3_iterations, fig3_memory, fig4, format_table2, serve_bench,
    table2, threads_sweep, RunOptions,
};
use std::path::{Path, PathBuf};

fn run_table2(options: &RunOptions) {
    println!("== Table II: unique-solution throughput (solutions/second) ==");
    println!(
        "   target {} unique solutions, timeout {:?}, batch {}, scale {:?}, backend {}, kernel {:?}{}\n",
        options.target,
        options.timeout,
        options.batch_size,
        options.scale,
        options.gd_backend().label(),
        options.kernel,
        if options.stream { ", streaming" } else { "" }
    );
    let rows = table2(options);
    print!("{}", format_table2(&rows));
    let geo: f64 = rows
        .iter()
        .filter(|r| r.speedup.is_finite() && r.speedup > 0.0)
        .map(|r| r.speedup.ln())
        .sum::<f64>()
        / rows.len().max(1) as f64;
    println!(
        "\ngeometric-mean speedup over the best baseline: {:.1}x",
        geo.exp()
    );
}

fn run_fig2(options: &RunOptions, instances: usize) {
    println!("== Fig. 2: latency (ms) vs unique solutions, per sampler ==\n");
    println!(
        "{:<22} {:<18} {:>10} {:>14}",
        "instance", "sampler", "unique", "latency (ms)"
    );
    for p in fig2(options, instances) {
        println!(
            "{:<22} {:<18} {:>10} {:>14.1}",
            p.instance, p.sampler, p.unique, p.latency_ms
        );
    }
}

fn run_fig3_iters(options: &RunOptions) {
    println!("== Fig. 3 (left): unique solutions vs GD iterations ==\n");
    println!("{:<22} {:>11} {:>10}", "instance", "iterations", "unique");
    for p in fig3_iterations(options, 10) {
        println!("{:<22} {:>11} {:>10}", p.instance, p.iterations, p.unique);
    }
}

fn run_fig3_mem(options: &RunOptions) {
    println!("== Fig. 3 (right): modelled memory (MiB) vs batch size ==\n");
    println!("{:<22} {:>12} {:>14}", "instance", "batch", "memory (MiB)");
    let batches = [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];
    for p in fig3_memory(options, &batches) {
        println!("{:<22} {:>12} {:>14.2}", p.instance, p.batch, p.memory_mib);
    }
}

fn run_fig4(options: &RunOptions) {
    println!("== Fig. 4: backend speedup, ops reduction, transformation time ==\n");
    println!(
        "{:<22} {:>16} {:>16} {:>10} {:>10} {:>14}",
        "instance", "parallel (/s)", "sequential (/s)", "speedup", "ops red.", "transform (s)"
    );
    for row in fig4(options) {
        println!(
            "{:<22} {:>16.1} {:>16.1} {:>9.1}x {:>9.1}x {:>14.4}",
            row.instance,
            row.parallel_throughput,
            row.sequential_throughput,
            row.speedup,
            row.ops_reduction,
            row.transform_seconds
        );
    }
}

/// Builds a single-sample artifact cell from one measured run.
fn single_sample_cell(key: CellKey, seconds: f64, unique: u64, throughput: f64) -> Cell {
    let sample = Sample {
        seconds,
        unique,
        throughput,
    };
    let summary = match summarize(&[sample.throughput]) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("error: cannot summarize cell `{key}`: {e}");
            std::process::exit(2);
        }
    };
    Cell {
        key,
        samples: vec![sample],
        summary,
    }
}

/// Folds cells into a bench artifact at `path`: appended to an existing
/// artifact (replacing cells with the same key, so re-runs are idempotent)
/// or written as a fresh one recorded through the harness's environment
/// capture.
fn fold_into_artifact(path: &Path, options: &RunOptions, new_cells: Vec<Cell>) {
    let mut artifact = if path.exists() {
        match BenchArtifact::read_from(path) {
            Ok(artifact) => artifact,
            Err(e) => {
                eprintln!("error: cannot fold into {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    } else {
        BenchArtifact {
            version: ARTIFACT_VERSION,
            environment: capture_environment(options.scale),
            settings: BenchSettings {
                invocations: 1,
                warmup: 0,
                target: options.target as u64,
                timeout_ms: options.timeout.as_millis() as u64,
                batch: options.batch_size as u64,
                date: utc_today(),
            },
            cells: Vec::new(),
        }
    };
    let folded = new_cells.len();
    for cell in new_cells {
        if let Some(existing) = artifact.cells.iter_mut().find(|c| c.key == cell.key) {
            *existing = cell;
        } else {
            artifact.cells.push(cell);
        }
    }
    if let Err(e) = artifact.write_to(path) {
        eprintln!("error: cannot write {}: {e}", path.display());
        std::process::exit(2);
    }
    println!(
        "\nfolded {folded} cell(s) into {} ({} total)",
        path.display(),
        artifact.cells.len()
    );
}

fn run_threads(options: &RunOptions, counts: &[usize], out: Option<&Path>) {
    println!("== Thread scaling: unique-solution throughput per worker count ==\n");
    println!(
        "{:<22} {:>8} {:>10} {:>18}",
        "instance", "threads", "unique", "throughput (/s)"
    );
    let points = threads_sweep(options, counts);
    for p in &points {
        println!(
            "{:<22} {:>8} {:>10} {:>18.1}",
            p.instance, p.threads, p.unique, p.throughput
        );
    }
    if let Some(path) = out {
        let cells = points
            .iter()
            .filter(|p| p.throughput > 0.0)
            .map(|p| {
                single_sample_cell(
                    CellKey {
                        instance: p.instance.clone(),
                        engine: "gd".to_string(),
                        threads: p.threads as u64,
                    },
                    p.unique as f64 / p.throughput,
                    p.unique as u64,
                    p.throughput,
                )
            })
            .collect();
        fold_into_artifact(path, options, cells);
    }
}

fn run_serve_bench(options: &RunOptions, out: Option<&Path>, router: bool) {
    println!("== serve-bench: daemon round-trip latency and wire determinism ==\n");
    let report = serve_bench(options);
    print_serve_report(&report);
    let routed = if router {
        println!(
            "\n== serve-bench --router: the same legs through htsat-router \
             (2 registered daemons) ==\n"
        );
        let routed = htsat_bench::serve_bench_routed(options);
        print_serve_report(&routed);
        Some(routed)
    } else {
        None
    };
    let gate_failed = |report: &htsat_bench::ServeBenchReport| {
        report.compiles != htsat_bench::ServeBenchReport::EXPECTED_COMPILES || !report.deterministic
    };
    if gate_failed(&report) || routed.as_ref().is_some_and(gate_failed) {
        // CI runs this subcommand as the loopback end-to-end gate.
        std::process::exit(1);
    }
    if let Some(path) = out {
        // The wire legs as artifact cells: unique solutions per second of
        // client-observed round-trip, so the streaming numbers live in the
        // same perf-trajectory format as the in-process harness. Routed
        // legs fold in under `-routed` engine names, making the cost of
        // the extra hop a first-class perf-trajectory series.
        let mut cells = serve_cells(&report, "");
        if let Some(routed) = &routed {
            cells.extend(serve_cells(routed, "-routed"));
        }
        fold_into_artifact(path, options, cells);
    }
}

fn print_serve_report(report: &htsat_bench::ServeBenchReport) {
    println!("instance: {}\n", report.instance);
    println!("{:<42} {:>16} {:>8}", "leg", "round-trip (ms)", "unique");
    for leg in &report.legs {
        println!(
            "{:<42} {:>16.2} {:>8}",
            leg.label, leg.round_trip_ms, leg.unique
        );
    }
    println!(
        "\ncompiles: {} (one per loaded engine; warm legs ride the registry hit path)",
        report.compiles
    );
    println!(
        "wire determinism vs in-process streams (gd at 1 and 8 threads, walksat A/B): {}",
        if report.deterministic {
            "OK"
        } else {
            "MISMATCH"
        }
    );
}

/// The measured wire legs as artifact cells; `suffix` distinguishes the
/// routed series (e.g. `wire-gd-routed`) from the direct one.
fn serve_cells(report: &htsat_bench::ServeBenchReport, suffix: &str) -> Vec<Cell> {
    let engine_of = |label: &str| -> Option<(&'static str, u64)> {
        if label.contains("pipelined") {
            Some(("wire-gd-pipelined", 1))
        } else if label.contains("walksat") {
            Some(("wire-walksat", 1))
        } else if label.contains("SAMPLE warm, 8") {
            Some(("wire-gd", 8))
        } else if label.contains("SAMPLE warm, 1") {
            Some(("wire-gd", 1))
        } else {
            None // LOAD legs carry no solutions to rate
        }
    };
    report
        .legs
        .iter()
        .filter(|leg| leg.unique > 0 && leg.round_trip_ms > 0.0)
        .filter_map(|leg| {
            let (engine, threads) = engine_of(&leg.label)?;
            let seconds = leg.round_trip_ms / 1e3;
            Some(single_sample_cell(
                CellKey {
                    instance: report.instance.clone(),
                    engine: format!("{engine}{suffix}"),
                    threads,
                },
                seconds,
                leg.unique as u64,
                leg.unique as f64 / seconds,
            ))
        })
        .collect()
}

fn run_bench_cmd(config: &BenchConfig, out: Option<PathBuf>) {
    println!("== bench: statistical harness (interleaved invocations) ==\n");
    println!(
        "matrix: {} instance(s) x {} engine(s) x {} thread count(s), {} warmup + {} timed invocations ({} runs)",
        config.instances.len(),
        config.engines.len(),
        config.thread_counts.len(),
        config.warmup,
        config.invocations,
        config.total_runs()
    );
    let artifact = match run_bench_with(config, |event| {
        println!(
            "  invocation {}/{}{}",
            event.invocation,
            event.total,
            if event.warmup { " (warmup)" } else { "" }
        );
    }) {
        Ok(artifact) => artifact,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    println!(
        "\nhost {} ({} core(s), {}), {} @ {}, scale {}\n",
        artifact.environment.host,
        artifact.environment.cores,
        artifact.environment.os,
        artifact.environment.toolchain,
        artifact.environment.git_rev,
        artifact.environment.scale,
    );
    println!(
        "{:<22} {:<14} {:>7} {:>12} {:>12} {:>12} {:>10}",
        "instance", "engine", "threads", "min (/s)", "median (/s)", "mean (/s)", "ci95 (±)"
    );
    for cell in &artifact.cells {
        println!(
            "{:<22} {:<14} {:>7} {:>12.1} {:>12.1} {:>12.1} {:>10.1}",
            cell.key.instance,
            cell.key.engine,
            cell.key.threads,
            cell.summary.min,
            cell.summary.median,
            cell.summary.mean,
            cell.summary.ci95
        );
    }

    let path = out.unwrap_or_else(|| PathBuf::from(artifact.file_name()));
    if let Err(e) = artifact.write_to(&path) {
        eprintln!("error: cannot write {}: {e}", path.display());
        std::process::exit(2);
    }
    println!("\nwrote {}", path.display());
}

fn read_artifact(path: &Path) -> BenchArtifact {
    match BenchArtifact::read_from(path) {
        Ok(artifact) => artifact,
        Err(e) => {
            eprintln!("error: {}: {e}", path.display());
            std::process::exit(2);
        }
    }
}

fn run_bench_diff(old_path: &Path, new_path: &Path, options: &DiffOptions) {
    println!("== bench-diff: throughput trajectory gate ==\n");
    let old = read_artifact(old_path);
    let new = read_artifact(new_path);
    let report = match diff_artifacts(&old, &new, options) {
        Ok(report) => report,
        Err(e @ DiffError::Incompatible(_)) => {
            eprintln!("error: {e}");
            std::process::exit(3);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    for mismatch in &report.forced_mismatches {
        println!("warning: comparing across {mismatch} (forced)");
    }
    for key in &report.missing_in_new {
        println!("warning: cell {key} is in the old artifact only (not compared)");
    }
    for key in &report.missing_in_old {
        println!("warning: cell {key} is in the new artifact only (not compared)");
    }
    for key in &report.unmeasurable {
        println!("warning: cell {key} has a zero median on one side (not compared)");
    }
    if !report.forced_mismatches.is_empty()
        || !report.missing_in_new.is_empty()
        || !report.missing_in_old.is_empty()
        || !report.unmeasurable.is_empty()
    {
        println!();
    }

    println!(
        "{:<40} {:>12} {:>12} {:>8}",
        "cell", "old (/s)", "new (/s)", "ratio"
    );
    for cell in &report.compared {
        println!(
            "{:<40} {:>12.1} {:>12.1} {:>7.2}x",
            cell.key.to_string(),
            cell.old_median,
            cell.new_median,
            cell.ratio
        );
    }
    println!(
        "\ngeomean ratio: {:.3}x ({}{:.1}% vs old), threshold {:.1}%",
        report.geomean_ratio,
        if report.regression_pct() >= 0.0 {
            "-"
        } else {
            "+"
        },
        report.regression_pct().abs(),
        report.threshold_pct
    );
    if !report.regressed_cells.is_empty() {
        println!("cells individually past the threshold:");
        for cell in &report.regressed_cells {
            println!(
                "  {} regressed to {:.2}x ({:.1} -> {:.1} /s)",
                cell.key, cell.ratio, cell.old_median, cell.new_median
            );
        }
    }
    if report.passes() {
        println!("PASS");
    } else {
        println!("FAIL: geomean throughput regressed past the threshold");
        std::process::exit(1);
    }
}

/// Drives one LOAD, one SAMPLE and one deliberately failing SAMPLE against
/// the daemon, so a subsequent snapshot provably has moving counters.
fn exercise_daemon(client: &mut htsat_serve::Client) {
    use htsat_serve::proto::SampleParams;
    let instance = htsat_instances::families::or_chain("stats-exercise", 16, 2, 0x0B5);
    let dimacs_text = htsat_cnf::dimacs::to_string(&instance.cnf);
    let load = match client.load_dimacs(Some("stats-exercise"), &dimacs_text) {
        Ok(load) => load,
        Err(e) => {
            eprintln!("error: exercise LOAD failed: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = client.sample(&SampleParams {
        n: 5,
        seed: 7,
        ..SampleParams::new(load.fingerprint)
    }) {
        eprintln!("error: exercise SAMPLE failed: {e}");
        std::process::exit(2);
    }
    // An induced NOT_LOADED error: a fingerprint nothing was loaded under.
    let missing =
        htsat_cnf::Fingerprint::of(&htsat_instances::families::or_chain("absent", 8, 2, 1).cnf);
    match client.sample(&SampleParams::new(missing)) {
        Err(htsat_serve::ClientError::Server(_)) => {}
        Ok(_) => {
            eprintln!("error: exercise expected a server error for an unloaded fingerprint");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("error: exercise error probe failed at the transport: {e}");
            std::process::exit(2);
        }
    }
}

fn run_stats(
    addr: &str,
    reset: bool,
    exercise: bool,
    timeout_ms: Option<u64>,
    format: StatsFormat,
) {
    let mut client = connect_daemon(addr, timeout_ms);
    if exercise {
        exercise_daemon(&mut client);
    }
    let snapshot = match if reset {
        client.stats_reset()
    } else {
        client.stats()
    } {
        Ok(snapshot) => snapshot,
        Err(e @ htsat_serve::ClientError::Timeout { .. }) => {
            eprintln!("error: STATS {e}");
            std::process::exit(3);
        }
        Err(e) => {
            eprintln!("error: STATS failed: {e}");
            std::process::exit(2);
        }
    };

    if exercise {
        check_exercised_snapshot(&snapshot);
    }
    if format == StatsFormat::Prom {
        // Machine exposition: nothing but the metrics on stdout, so the
        // output can be piped straight into a scrape file or promtool.
        print!("{}", snapshot.to_prometheus_text());
        if exercise {
            eprintln!("exercise: OK (load/sample/error counters all moved)");
        }
        return;
    }

    println!(
        "== stats: {addr} (schema {}{}) ==\n",
        htsat_obs::SNAPSHOT_SCHEMA,
        if reset { ", counters reset" } else { "" }
    );
    println!("counters:");
    for (name, value) in &snapshot.counters {
        println!("  {name:<40} {value:>14}");
    }
    println!("\ngauges:");
    for (name, value) in &snapshot.gauges {
        println!("  {name:<40} {value:>14}");
    }
    println!("\nhistograms (span durations in ns):");
    println!(
        "  {:<40} {:>10} {:>12} {:>12} {:>12}",
        "name", "count", "mean", "p50<=", "p99<="
    );
    for (name, hist) in &snapshot.histograms {
        println!(
            "  {:<40} {:>10} {:>12} {:>12} {:>12}",
            name,
            hist.count,
            hist.mean(),
            hist.quantile_upper_bound(0.5),
            hist.quantile_upper_bound(0.99)
        );
    }

    if exercise {
        println!("\nexercise: OK (load/sample/error counters all moved)");
    }
}

/// The CI observability gate: the traffic `exercise_daemon` just drove must
/// be visible in the snapshot that came back over the wire.
fn check_exercised_snapshot(snapshot: &htsat_obs::Snapshot) {
    let expect_counter = |name: &str| {
        if snapshot.counter(name).unwrap_or(0) == 0 {
            eprintln!("error: exercised daemon reports zero `{name}`");
            std::process::exit(1);
        }
    };
    for name in [
        "serve.requests.load",
        "serve.requests.sample",
        "serve.errors.not-loaded",
        "serve.registry.compiles",
        "engine.sessions",
        "engine.samples",
        "runtime.regions",
    ] {
        expect_counter(name);
    }
    if snapshot.histogram("serve.request").map_or(0, |h| h.count) == 0 {
        eprintln!("error: exercised daemon reports an empty `serve.request` span");
        std::process::exit(1);
    }
}

/// Connects to a running daemon, arming the read timeout when given;
/// exits with a diagnostic on failure (shared by `stats` and `trace`).
fn connect_daemon(addr: &str, timeout_ms: Option<u64>) -> htsat_serve::Client {
    let mut client = match htsat_serve::Client::connect(addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("error: cannot connect to {addr}: {e}");
            std::process::exit(2);
        }
    };
    if let Some(ms) = timeout_ms {
        if let Err(e) = client.set_timeout(Some(std::time::Duration::from_millis(ms))) {
            eprintln!("error: cannot arm the {ms}ms read timeout: {e}");
            std::process::exit(2);
        }
    }
    client
}

/// Drives traced, pipelined `SAMPLE` traffic from two v2 connections so a
/// subsequent `TRACE` provably has attributable timelines: each client
/// negotiates v2, stamps its own trace id, loads one formula and runs two
/// interleaved chunked `SAMPLE` streams.
fn exercise_traced(addr: &str, timeout_ms: Option<u64>) {
    use htsat_serve::proto::SampleParams;
    let instance = htsat_instances::families::or_chain("trace-exercise", 16, 2, 0x0B5);
    let dimacs_text = htsat_cnf::dimacs::to_string(&instance.cnf);
    for (who, trace_id) in [(1u64, 0xAAAA_0001u128), (2, 0xAAAA_0002)] {
        let mut client = connect_daemon(addr, timeout_ms);
        if let Err(e) = client.hello() {
            eprintln!("error: exercise client {who}: HELLO failed: {e}");
            std::process::exit(2);
        }
        client.set_trace(Some(htsat_obs::TraceId::from_u128(trace_id)));
        let load = match client.load_dimacs(Some("trace-exercise"), &dimacs_text) {
            Ok(load) => load,
            Err(e) => {
                eprintln!("error: exercise client {who}: LOAD failed: {e}");
                std::process::exit(2);
            }
        };
        // Two pipelined streams per connection: concurrent requests on one
        // wire, each with its own timeline.
        let params_a = SampleParams {
            n: 5,
            seed: 7 + who,
            ..SampleParams::new(load.fingerprint)
        };
        let params_b = SampleParams {
            n: 5,
            seed: 100 + who,
            ..SampleParams::new(load.fingerprint)
        };
        let ids = [
            client.sample_start(&params_a),
            client.sample_start(&params_b),
        ];
        for id in ids {
            let id = match id {
                Ok(id) => id,
                Err(e) => {
                    eprintln!("error: exercise client {who}: SAMPLE start failed: {e}");
                    std::process::exit(2);
                }
            };
            loop {
                match client.sample_next(id) {
                    Ok(htsat_serve::SampleEvent::Batch(_)) => {}
                    Ok(htsat_serve::SampleEvent::Done(_)) => break,
                    Err(e) => {
                        eprintln!("error: exercise client {who}: stream {id} failed: {e}");
                        std::process::exit(2);
                    }
                }
            }
        }
    }
}

/// Nesting depth of one span in its timeline (roots are depth 0).
fn span_depth(spans: &[htsat_obs::trace::SpanRecord], index: usize) -> usize {
    let mut depth = 0;
    let mut parent = spans[index].parent;
    // A cycle would mean a corrupt timeline; the guard keeps this total.
    while let Some(p) = parent {
        match spans.get(p as usize) {
            Some(span) if depth <= spans.len() => {
                depth += 1;
                parent = span.parent;
            }
            _ => break,
        }
    }
    depth
}

/// One waterfall bar positioning a span inside its request's total.
fn span_bar(start_ns: u64, duration_ns: u64, total_ns: u64, width: usize) -> String {
    let scale = |ns: u64| -> usize {
        if total_ns == 0 {
            0
        } else {
            ((ns as u128 * width as u128) / total_ns as u128) as usize
        }
    };
    let from = scale(start_ns).min(width.saturating_sub(1));
    let len = scale(duration_ns).max(1).min(width - from);
    let mut bar = String::with_capacity(width);
    for i in 0..width {
        bar.push(if i >= from && i < from + len {
            '#'
        } else {
            '.'
        });
    }
    bar
}

fn run_trace(
    addr: &str,
    last: Option<u64>,
    verb: Option<&str>,
    min_ms: Option<u64>,
    exercise: bool,
    timeout_ms: Option<u64>,
) {
    if exercise {
        exercise_traced(addr, timeout_ms);
    }
    let mut client = connect_daemon(addr, timeout_ms);
    let report = match client.trace(last, verb, min_ms) {
        Ok(report) => report,
        Err(e @ htsat_serve::ClientError::Timeout { .. }) => {
            eprintln!("error: TRACE {e}");
            std::process::exit(3);
        }
        Err(e) => {
            eprintln!("error: TRACE failed: {e}");
            std::process::exit(2);
        }
    };

    const BAR: usize = 32;
    println!(
        "== trace: {addr} (schema {}, {} timeline(s), {} dropped at the ring) ==",
        htsat_obs::TRACE_SCHEMA,
        report.timelines.len(),
        report.dropped_traces
    );
    for timeline in &report.timelines {
        println!(
            "\ntrace {} verb={} request_id={} total={:.3}ms spans={}{}",
            timeline.trace.to_hex(),
            timeline.verb,
            timeline.request_id,
            timeline.total_ns as f64 / 1e6,
            timeline.spans.len(),
            if timeline.dropped_spans > 0 {
                format!(" (+{} dropped)", timeline.dropped_spans)
            } else {
                String::new()
            }
        );
        for (i, span) in timeline.spans.iter().enumerate() {
            let indent = "  ".repeat(span_depth(&timeline.spans, i) + 1);
            let label = format!("{indent}{}", span.name);
            println!(
                "{label:<34} {} {:>10.3}ms @ +{:.3}ms",
                span_bar(span.start_ns, span.duration_ns, timeline.total_ns, BAR),
                span.duration_ns as f64 / 1e6,
                span.start_ns as f64 / 1e6,
            );
        }
    }

    if exercise {
        // The CI trace gate: the traffic just driven must come back as
        // timelines attributing every stage of the request path.
        let sample_timelines: Vec<_> = report
            .timelines
            .iter()
            .filter(|t| t.verb == "sample")
            .collect();
        if sample_timelines.len() < 4 {
            eprintln!(
                "error: exercised daemon returned {} sample timeline(s); expected the 4 driven",
                sample_timelines.len()
            );
            std::process::exit(1);
        }
        for required in [
            "serve.reader",
            "serve.request",
            "serve.worker.queue_wait",
            "serve.writer.serialize",
            "serve.writer.write",
            "engine.round",
        ] {
            if !sample_timelines
                .iter()
                .any(|t| t.spans.iter().any(|s| s.name == required))
            {
                eprintln!("error: no exercised sample timeline contains a `{required}` span");
                std::process::exit(1);
            }
        }
        // The explicit ids stamped by the exercise clients must be the ids
        // the ring recorded (wire propagation, not server-side minting).
        for expected in [0xAAAA_0001u128, 0xAAAA_0002] {
            if !sample_timelines
                .iter()
                .any(|t| t.trace.as_u128() == expected)
            {
                eprintln!("error: no timeline carries the client-supplied trace id {expected:#x}");
                std::process::exit(1);
            }
        }
        println!("\nexercise: OK (pipelined traced samples attributed end-to-end)");
    }
}

fn run_bench_degrade(input: &Path, output: &Path, factor: f64) {
    let mut artifact = read_artifact(input);
    for cell in &mut artifact.cells {
        for sample in &mut cell.samples {
            sample.throughput *= factor;
            // Keep the artifact self-consistent: same unique count over a
            // proportionally longer (or shorter) wall-clock.
            sample.seconds /= factor;
        }
        match cell.recompute_summary() {
            Ok(summary) => cell.summary = summary,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    if let Err(e) = artifact.write_to(output) {
        eprintln!("error: cannot write {}: {e}", output.display());
        std::process::exit(2);
    }
    println!(
        "wrote {} with every throughput sample scaled by {factor}",
        output.display()
    );
}

fn main() {
    let command = match cli::parse(std::env::args().skip(1)) {
        Ok(command) => command,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{}", cli::usage());
            std::process::exit(2);
        }
    };
    match &command {
        Command::Bench { .. }
        | Command::BenchDiff { .. }
        | Command::BenchDegrade { .. }
        | Command::Stats { .. }
        | Command::Trace { .. } => {}
        _ => {
            // The figure/table subcommands print the historical header.
            let scale = match &command {
                Command::Table2(o)
                | Command::Fig2(o, _)
                | Command::Fig3Iters(o)
                | Command::Fig3Mem(o)
                | Command::Fig4(o)
                | Command::Threads(o, _, _)
                | Command::ServeBench(o, _, _)
                | Command::All(o, _) => o.scale,
                _ => unreachable!(),
            };
            println!(
                "# htsat repro — {} ablation instances available\n",
                ablation_instances(scale).len()
            );
        }
    }
    match command {
        Command::Table2(options) => run_table2(&options),
        Command::Fig2(options, instances) => run_fig2(&options, instances),
        Command::Fig3Iters(options) => run_fig3_iters(&options),
        Command::Fig3Mem(options) => run_fig3_mem(&options),
        Command::Fig4(options) => run_fig4(&options),
        Command::Threads(options, counts, out) => run_threads(&options, &counts, out.as_deref()),
        Command::ServeBench(options, out, router) => {
            run_serve_bench(&options, out.as_deref(), router);
        }
        Command::All(options, instances) => {
            run_table2(&options);
            println!();
            run_fig2(&options, instances);
            println!();
            run_fig3_iters(&options);
            println!();
            run_fig3_mem(&options);
            println!();
            run_fig4(&options);
        }
        Command::Bench { config, out } => run_bench_cmd(&config, out),
        Command::BenchDiff { old, new, options } => run_bench_diff(&old, &new, &options),
        Command::Stats {
            addr,
            reset,
            exercise,
            timeout_ms,
            format,
        } => run_stats(&addr, reset, exercise, timeout_ms, format),
        Command::Trace {
            addr,
            last,
            verb,
            min_ms,
            exercise,
            timeout_ms,
        } => run_trace(&addr, last, verb.as_deref(), min_ms, exercise, timeout_ms),
        Command::BenchDegrade {
            input,
            output,
            factor,
        } => run_bench_degrade(&input, &output, factor),
    }
}
