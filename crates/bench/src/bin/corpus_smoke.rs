//! `corpus_smoke` — CI smoke test over a generated DIMACS corpus.
//!
//! ```sh
//! cargo run --release -p htsat-instances --bin gen_suite -- /tmp/corpus --scale small
//! cargo run --release -p htsat-bench --bin corpus_smoke -- /tmp/corpus --budget-ms 500
//! ```
//!
//! For every `.cnf` file in the directory: parse it, build the
//! transformation + sampler, and stream samples for a bounded budget. Every
//! returned sample is validated against the parsed CNF. Exits non-zero if
//! any file fails to parse, any sampler fails to build, any sample is
//! invalid, or no instance yields a single solution — the cheap end-to-end
//! guard that the generator, the DIMACS round-trip and the sampling pipeline
//! stay compatible.
//!
//! Options: `--budget-ms N` (per-instance sampling budget, default 500),
//! `--target N` (solutions to aim for per instance, default 16),
//! `--threads N` (worker threads, default auto),
//! `--kernel flat|reference|both` (execution form of the GD inner loop;
//! `both` replays every instance through the fused flat kernel *and* the
//! staged reference circuit for a fixed round budget and fails unless the
//! two produce **identical solution sequences** — the CI kernel-equivalence
//! gate).

use htsat_cnf::dimacs;
use htsat_core::{GdSampler, KernelChoice, SamplerConfig};
use htsat_tensor::Backend;
use std::path::PathBuf;
use std::time::Duration;

/// Rounds replayed per kernel in `--kernel both` mode (a fixed budget, so
/// the flat/reference comparison is deterministic).
const EQUIV_ROUNDS: usize = 2;

#[derive(Clone, Copy, PartialEq, Eq)]
enum KernelMode {
    Single(KernelChoice),
    Both,
}

struct Config {
    dir: PathBuf,
    budget: Duration,
    target: usize,
    threads: usize,
    kernel: KernelMode,
}

fn parse_args() -> Result<Config, String> {
    let mut args = std::env::args().skip(1);
    let dir = match args.next() {
        Some(dir) if !dir.starts_with("--") => PathBuf::from(dir),
        _ => return Err("missing corpus directory".to_string()),
    };
    let mut config = Config {
        dir,
        budget: Duration::from_millis(500),
        target: 16,
        threads: 0,
        kernel: KernelMode::Single(KernelChoice::Flat),
    };
    while let Some(flag) = args.next() {
        let value = args
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--budget-ms" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|e| format!("invalid --budget-ms: {e}"))?;
                config.budget = Duration::from_millis(ms);
            }
            "--target" => {
                config.target = value
                    .parse()
                    .map_err(|e| format!("invalid --target: {e}"))?;
            }
            "--threads" => {
                config.threads = value
                    .parse()
                    .map_err(|e| format!("invalid --threads: {e}"))?;
            }
            "--kernel" => {
                config.kernel = match value.as_str() {
                    "flat" => KernelMode::Single(KernelChoice::Flat),
                    "reference" => KernelMode::Single(KernelChoice::Reference),
                    "both" => KernelMode::Both,
                    other => return Err(format!("unknown kernel `{other}`")),
                };
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(config)
}

fn main() {
    let config = match parse_args() {
        Ok(config) => config,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: corpus_smoke <corpus-dir> [--budget-ms N] [--target N] [--threads N] [--kernel flat|reference|both]"
            );
            std::process::exit(2);
        }
    };

    let mut files: Vec<PathBuf> = match std::fs::read_dir(&config.dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "cnf"))
            .collect(),
        Err(e) => {
            eprintln!("cannot read {}: {e}", config.dir.display());
            std::process::exit(1);
        }
    };
    files.sort();
    if files.is_empty() {
        eprintln!("no .cnf files in {}", config.dir.display());
        std::process::exit(1);
    }

    let mut failures = 0usize;
    let mut total_solutions = 0usize;
    if config.kernel == KernelMode::Both {
        // The equivalence replay needs a deterministic workload, so it uses
        // a fixed round budget per kernel instead of the wall-clock knobs.
        println!(
            "kernel-equivalence mode: fixed {EQUIV_ROUNDS}-round replay per kernel \
             (--budget-ms and --target are ignored)\n"
        );
    }
    println!(
        "{:<40} {:>8} {:>9} {:>8} {:>8}",
        "file", "vars", "clauses", "unique", "status"
    );
    for file in &files {
        let name = file
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let cnf = match dimacs::read_file(file) {
            Ok(cnf) => cnf,
            Err(e) => {
                println!(
                    "{name:<40} {:>8} {:>9} {:>8} parse error: {e}",
                    "-", "-", "-"
                );
                failures += 1;
                continue;
            }
        };
        let sampler_config = |kernel: KernelChoice| SamplerConfig {
            batch_size: 128,
            backend: Backend::Threads(config.threads),
            kernel,
            ..SamplerConfig::default()
        };
        let build = |kernel: KernelChoice| GdSampler::new(&cnf, sampler_config(kernel));
        let report_transform_error = |e: &dyn std::fmt::Display| {
            println!(
                "{name:<40} {:>8} {:>9} {:>8} transform error: {e}",
                cnf.num_vars(),
                cnf.num_clauses(),
                "-"
            );
        };
        let (solutions, equiv_note) = match config.kernel {
            KernelMode::Single(kernel) => {
                let mut sampler = match build(kernel) {
                    Ok(sampler) => sampler,
                    Err(e) => {
                        report_transform_error(&e);
                        failures += 1;
                        continue;
                    }
                };
                let solutions: Vec<Vec<bool>> = sampler
                    .stream()
                    .with_timeout(config.budget)
                    .take(config.target)
                    .collect();
                (solutions, None)
            }
            KernelMode::Both => {
                // Kernel-equivalence replay: a fixed round budget (no
                // wall-clock cutoff, so the comparison is deterministic)
                // through both execution forms; the fused flat kernel must
                // emit the identical solution sequence as the reference
                // circuit, row for row.
                let run = |kernel: KernelChoice| -> Result<Vec<Vec<bool>>, String> {
                    let mut sampler = build(kernel).map_err(|e| e.to_string())?;
                    let mut sequence = Vec::new();
                    for _ in 0..EQUIV_ROUNDS {
                        sequence.extend(sampler.sample_round());
                    }
                    Ok(sequence)
                };
                match (run(KernelChoice::Flat), run(KernelChoice::Reference)) {
                    (Ok(flat), Ok(reference)) => {
                        if flat == reference {
                            (flat, Some("kernels agree".to_string()))
                        } else {
                            failures += 1;
                            // Point the investigator at the first divergent
                            // row, not just the sequence lengths.
                            let first_diff = flat
                                .iter()
                                .zip(reference.iter())
                                .position(|(a, b)| a != b)
                                .unwrap_or_else(|| flat.len().min(reference.len()));
                            let note = format!(
                                "KERNEL MISMATCH: flat {} vs reference {} rows, \
                                 first divergence at row {first_diff}",
                                flat.len(),
                                reference.len()
                            );
                            (flat, Some(note))
                        }
                    }
                    (Err(e), _) | (_, Err(e)) => {
                        report_transform_error(&e);
                        failures += 1;
                        continue;
                    }
                }
            }
        };
        let invalid = solutions
            .iter()
            .filter(|s| !cnf.is_satisfied_by_bits(s))
            .count();
        // An invalid-sample failure must not hide a kernel-equivalence
        // failure (or vice versa): report both.
        let mut notes: Vec<String> = Vec::new();
        if invalid > 0 {
            failures += 1;
            notes.push(format!("{invalid} INVALID samples"));
        }
        notes.extend(equiv_note);
        let status = if notes.is_empty() {
            "ok".to_string()
        } else {
            notes.join("; ")
        };
        // In `both` mode the rows come straight from sample_round and may
        // repeat; count distinct solutions so the summary's "unique" label
        // stays accurate in every mode (the streaming path is already
        // deduplicated).
        let unique = solutions
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len();
        total_solutions += unique;
        println!(
            "{name:<40} {:>8} {:>9} {:>8} {status}",
            cnf.num_vars(),
            cnf.num_clauses(),
            unique
        );
    }
    println!(
        "\n{} files, {} unique solutions, {} failures",
        files.len(),
        total_solutions,
        failures
    );
    if failures > 0 {
        std::process::exit(1);
    }
    if total_solutions == 0 {
        eprintln!("corpus smoke produced no solutions at all — sampling pipeline is broken");
        std::process::exit(1);
    }
}
