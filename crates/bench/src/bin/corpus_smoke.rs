//! `corpus_smoke` — CI smoke test over a generated DIMACS corpus.
//!
//! ```sh
//! cargo run --release -p htsat-instances --bin gen_suite -- /tmp/corpus --scale small
//! cargo run --release -p htsat-bench --bin corpus_smoke -- /tmp/corpus --budget-ms 500
//! ```
//!
//! For every `.cnf` file in the directory: parse it, build the
//! transformation + sampler, and stream samples for a bounded budget. Every
//! returned sample is validated against the parsed CNF. Exits non-zero if
//! any file fails to parse, any sampler fails to build, any sample is
//! invalid, or no instance yields a single solution — the cheap end-to-end
//! guard that the generator, the DIMACS round-trip and the sampling pipeline
//! stay compatible.
//!
//! Options: `--budget-ms N` (per-instance sampling budget, default 500),
//! `--target N` (solutions to aim for per instance, default 16),
//! `--threads N` (worker threads, default auto).

use htsat_cnf::dimacs;
use htsat_core::{GdSampler, SamplerConfig};
use htsat_tensor::Backend;
use std::path::PathBuf;
use std::time::Duration;

struct Config {
    dir: PathBuf,
    budget: Duration,
    target: usize,
    threads: usize,
}

fn parse_args() -> Result<Config, String> {
    let mut args = std::env::args().skip(1);
    let dir = match args.next() {
        Some(dir) if !dir.starts_with("--") => PathBuf::from(dir),
        _ => return Err("missing corpus directory".to_string()),
    };
    let mut config = Config {
        dir,
        budget: Duration::from_millis(500),
        target: 16,
        threads: 0,
    };
    while let Some(flag) = args.next() {
        let value = args
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--budget-ms" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|e| format!("invalid --budget-ms: {e}"))?;
                config.budget = Duration::from_millis(ms);
            }
            "--target" => {
                config.target = value
                    .parse()
                    .map_err(|e| format!("invalid --target: {e}"))?;
            }
            "--threads" => {
                config.threads = value
                    .parse()
                    .map_err(|e| format!("invalid --threads: {e}"))?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(config)
}

fn main() {
    let config = match parse_args() {
        Ok(config) => config,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: corpus_smoke <corpus-dir> [--budget-ms N] [--target N] [--threads N]"
            );
            std::process::exit(2);
        }
    };

    let mut files: Vec<PathBuf> = match std::fs::read_dir(&config.dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "cnf"))
            .collect(),
        Err(e) => {
            eprintln!("cannot read {}: {e}", config.dir.display());
            std::process::exit(1);
        }
    };
    files.sort();
    if files.is_empty() {
        eprintln!("no .cnf files in {}", config.dir.display());
        std::process::exit(1);
    }

    let mut failures = 0usize;
    let mut total_solutions = 0usize;
    println!(
        "{:<40} {:>8} {:>9} {:>8} {:>8}",
        "file", "vars", "clauses", "unique", "status"
    );
    for file in &files {
        let name = file
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let cnf = match dimacs::read_file(file) {
            Ok(cnf) => cnf,
            Err(e) => {
                println!(
                    "{name:<40} {:>8} {:>9} {:>8} parse error: {e}",
                    "-", "-", "-"
                );
                failures += 1;
                continue;
            }
        };
        let sampler_config = SamplerConfig {
            batch_size: 128,
            backend: Backend::Threads(config.threads),
            ..SamplerConfig::default()
        };
        let mut sampler = match GdSampler::new(&cnf, sampler_config) {
            Ok(sampler) => sampler,
            Err(e) => {
                println!(
                    "{name:<40} {:>8} {:>9} {:>8} transform error: {e}",
                    cnf.num_vars(),
                    cnf.num_clauses(),
                    "-"
                );
                failures += 1;
                continue;
            }
        };
        let solutions: Vec<Vec<bool>> = sampler
            .stream()
            .with_timeout(config.budget)
            .take(config.target)
            .collect();
        let invalid = solutions
            .iter()
            .filter(|s| !cnf.is_satisfied_by_bits(s))
            .count();
        let status = if invalid > 0 {
            failures += 1;
            format!("{invalid} INVALID samples")
        } else {
            "ok".to_string()
        };
        total_solutions += solutions.len();
        println!(
            "{name:<40} {:>8} {:>9} {:>8} {status}",
            cnf.num_vars(),
            cnf.num_clauses(),
            solutions.len()
        );
    }
    println!(
        "\n{} files, {} unique solutions, {} failures",
        files.len(),
        total_solutions,
        failures
    );
    if failures > 0 {
        std::process::exit(1);
    }
    if total_solutions == 0 {
        eprintln!("corpus smoke produced no solutions at all — sampling pipeline is broken");
        std::process::exit(1);
    }
}
