//! Argument parsing for the `repro` binary.
//!
//! Parsing lives in the library so it is unit-testable, and it is strict
//! per subcommand: every subcommand declares the flags it accepts, and a
//! stray flag — even one another subcommand would take — is an error that
//! names the valid flags instead of being silently ignored. Historically
//! `--instances` was accepted (and ignored) by every subcommand except
//! `fig2`, which made typos invisible; now `repro table2 --instances 3`
//! exits non-zero with the valid flag list.

use crate::harness::{BenchConfig, DiffOptions};
use crate::RunOptions;
use htsat_core::KernelChoice;
use htsat_instances::suite::SuiteScale;
use std::path::PathBuf;
use std::time::Duration;

/// A parsed `repro` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `table2` — the Table II reproduction.
    Table2(RunOptions),
    /// `fig2` — latency vs unique solutions, with an instance cap.
    Fig2(RunOptions, usize),
    /// `fig3-iters` — solutions vs iteration count.
    Fig3Iters(RunOptions),
    /// `fig3-mem` — modelled memory vs batch size.
    Fig3Mem(RunOptions),
    /// `fig4` and its column aliases.
    Fig4(RunOptions),
    /// `threads` — the thread-scaling sweep; `--out` folds the points into
    /// a bench artifact.
    Threads(RunOptions, Vec<usize>, Option<PathBuf>),
    /// `serve-bench` — the daemon loopback gate; `--out` folds the wire
    /// legs into a bench artifact, and `--router` adds a leg driven
    /// through an `htsat-router` fronting two registered daemons.
    ServeBench(RunOptions, Option<PathBuf>, bool),
    /// `all` — every figure and table in sequence.
    All(RunOptions, usize),
    /// `bench` — the statistical harness; emits an artifact.
    Bench {
        /// Assembled harness configuration.
        config: BenchConfig,
        /// Explicit output path (`--out`); default is
        /// `BENCH_<host>_<date>.json` in the working directory.
        out: Option<PathBuf>,
    },
    /// `bench-diff <old> <new>` — the regression gate.
    BenchDiff {
        /// Baseline artifact path.
        old: PathBuf,
        /// Candidate artifact path.
        new: PathBuf,
        /// Threshold / force options.
        options: DiffOptions,
    },
    /// `stats --addr HOST:PORT` — fetch and pretty-print a running
    /// daemon's metrics snapshot over the `STATS` wire verb.
    Stats {
        /// Daemon address to connect to.
        addr: String,
        /// Reset counters and histograms after reading (`STATS reset`).
        reset: bool,
        /// Drive a LOAD + SAMPLE + induced error against the daemon first,
        /// then assert the key counters moved — CI's observability gate.
        exercise: bool,
        /// Socket read timeout (`--timeout-ms`); an unresponsive daemon
        /// surfaces as a typed `ClientError::Timeout` instead of a hang.
        timeout_ms: Option<u64>,
        /// Output format (`--format pretty|prom`).
        format: StatsFormat,
    },
    /// `trace --addr HOST:PORT` — fetch a running daemon's recent request
    /// timelines over the `TRACE` wire verb and print span waterfalls.
    Trace {
        /// Daemon address to connect to.
        addr: String,
        /// Cap on returned timelines (`--last N`; `None` = the whole ring).
        last: Option<u64>,
        /// Keep only this wire verb's timelines (`--verb sample`).
        verb: Option<String>,
        /// Keep only requests at least this slow (`--min-ms N`).
        min_ms: Option<u64>,
        /// Drive traced LOAD + SAMPLE traffic against the daemon first,
        /// then assert the returned timelines attribute it — CI's
        /// trace gate.
        exercise: bool,
        /// Socket read timeout (`--timeout-ms`).
        timeout_ms: Option<u64>,
    },
    /// `bench-degrade <in> <out> --factor F` — scales every throughput
    /// sample; CI's negative gate uses it to prove `bench-diff` catches an
    /// injected regression.
    BenchDegrade {
        /// Input artifact path.
        input: PathBuf,
        /// Output artifact path.
        output: PathBuf,
        /// Multiplier applied to every throughput sample.
        factor: f64,
    },
}

/// How `repro stats` renders the snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StatsFormat {
    /// Human-readable tables (the default).
    #[default]
    Pretty,
    /// Prometheus text exposition format, suitable for a scrape endpoint
    /// or `promtool` ingestion.
    Prom,
}

/// Every subcommand with the flags it accepts.
const SUBCOMMANDS: &[(&str, &[&str])] = &[
    ("table2", RUN_FLAGS),
    ("fig2", FIG2_FLAGS),
    ("fig3-iters", RUN_FLAGS),
    ("fig3-mem", RUN_FLAGS),
    ("fig4", RUN_FLAGS),
    ("fig4-speedup", RUN_FLAGS),
    ("fig4-ops", RUN_FLAGS),
    ("fig4-transform", RUN_FLAGS),
    ("threads", THREADS_FLAGS),
    ("serve-bench", SERVE_BENCH_FLAGS),
    ("all", FIG2_FLAGS),
    ("bench", BENCH_FLAGS),
    ("bench-diff", DIFF_FLAGS),
    ("bench-degrade", DEGRADE_FLAGS),
    ("stats", STATS_FLAGS),
    ("trace", TRACE_FLAGS),
];

const RUN_FLAGS: &[&str] = &[
    "--scale",
    "--target",
    "--timeout",
    "--batch",
    "--threads",
    "--stream",
    "--kernel",
];
const FIG2_FLAGS: &[&str] = &[
    "--scale",
    "--target",
    "--timeout",
    "--batch",
    "--threads",
    "--stream",
    "--kernel",
    "--instances",
];
const THREADS_FLAGS: &[&str] = &[
    "--scale",
    "--target",
    "--timeout",
    "--batch",
    "--threads",
    "--stream",
    "--kernel",
    "--counts",
    "--out",
];
const SERVE_BENCH_FLAGS: &[&str] = &[
    "--scale",
    "--target",
    "--timeout",
    "--batch",
    "--threads",
    "--stream",
    "--kernel",
    "--out",
    "--router",
];
const BENCH_FLAGS: &[&str] = &[
    "--scale",
    "--target",
    "--timeout",
    "--batch",
    "--quick",
    "--invocations",
    "--warmup",
    "--engines",
    "--suite",
    "--counts",
    "--out",
];
const DIFF_FLAGS: &[&str] = &["--threshold", "--force"];
const DEGRADE_FLAGS: &[&str] = &["--factor"];
const STATS_FLAGS: &[&str] = &[
    "--addr",
    "--reset",
    "--exercise",
    "--timeout-ms",
    "--format",
];
const TRACE_FLAGS: &[&str] = &[
    "--addr",
    "--last",
    "--verb",
    "--min-ms",
    "--exercise",
    "--timeout-ms",
];

/// One line listing every subcommand, for error messages and `--help`-style
/// usage output.
#[must_use]
pub fn usage() -> String {
    let names: Vec<&str> = SUBCOMMANDS.iter().map(|(name, _)| *name).collect();
    format!(
        "usage: repro <{}> [flags...]\n  run flags: {}\n  bench flags: {}\n  bench-diff: repro bench-diff <old.json> <new.json> [--threshold PCT] [--force]\n  bench-degrade: repro bench-degrade <in.json> <out.json> --factor F\n  stats: repro stats --addr HOST:PORT [--reset] [--exercise] [--timeout-ms MS] [--format pretty|prom]\n  trace: repro trace --addr HOST:PORT [--last N] [--verb V] [--min-ms MS] [--exercise] [--timeout-ms MS]",
        names.join("|"),
        RUN_FLAGS.join(" "),
        BENCH_FLAGS.join(" ")
    )
}

fn valid_flags(command: &str) -> &'static [&'static str] {
    SUBCOMMANDS
        .iter()
        .find(|(name, _)| *name == command)
        .map(|(_, flags)| *flags)
        .unwrap_or(&[])
}

/// Parses a `repro` argument list (without the program name).
///
/// # Errors
///
/// A human-readable message for unknown subcommands (naming the valid
/// ones), flags a subcommand does not accept (naming its valid flags),
/// malformed values, and missing positional arguments.
pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Command, String> {
    let mut args = args.into_iter().peekable();
    let command = args.next().unwrap_or_else(|| "all".to_string());
    if !SUBCOMMANDS.iter().any(|(name, _)| *name == command) {
        let names: Vec<&str> = SUBCOMMANDS.iter().map(|(name, _)| *name).collect();
        return Err(format!(
            "unknown subcommand `{command}` (valid: {})",
            names.join(", ")
        ));
    }
    let allowed = valid_flags(&command);

    let mut options = RunOptions::default();
    let mut fig2_instances = 12usize;
    let mut thread_counts = vec![1usize, 2, 4, 8];
    let mut quick = false;
    let mut router = false;
    let mut invocations: Option<usize> = None;
    let mut warmup: Option<usize> = None;
    let mut engines: Option<Vec<String>> = None;
    let mut suite: Option<Vec<String>> = None;
    let mut bench_counts: Option<Vec<usize>> = None;
    let mut out: Option<PathBuf> = None;
    let mut diff_options = DiffOptions::default();
    let mut factor: Option<f64> = None;
    let mut addr: Option<String> = None;
    let mut stats_reset = false;
    let mut exercise = false;
    let mut timeout_ms: Option<u64> = None;
    let mut stats_format = StatsFormat::default();
    let mut trace_last: Option<u64> = None;
    let mut trace_verb: Option<String> = None;
    let mut trace_min_ms: Option<u64> = None;
    let mut positionals: Vec<String> = Vec::new();
    // `bench` leaves scale/target/timeout/batch at the profile's values
    // (standard or --quick) unless explicitly overridden.
    let mut scale_set = false;
    let mut target_set = false;
    let mut timeout_set = false;
    let mut batch_set = false;

    while let Some(arg) = args.next() {
        if !arg.starts_with("--") {
            positionals.push(arg);
            continue;
        }
        if !allowed.contains(&arg.as_str()) {
            return Err(format!(
                "subcommand `{command}` does not accept `{arg}` (valid flags: {})",
                if allowed.is_empty() {
                    "none".to_string()
                } else {
                    allowed.join(", ")
                }
            ));
        }
        // Flags without a value.
        match arg.as_str() {
            "--stream" => {
                options.stream = true;
                continue;
            }
            "--quick" => {
                quick = true;
                continue;
            }
            "--router" => {
                router = true;
                continue;
            }
            "--force" => {
                diff_options.force = true;
                continue;
            }
            "--reset" => {
                stats_reset = true;
                continue;
            }
            "--exercise" => {
                exercise = true;
                continue;
            }
            _ => {}
        }
        let value = args
            .next()
            .ok_or_else(|| format!("missing value for {arg}"))?;
        match arg.as_str() {
            "--scale" => {
                options.scale = match value.as_str() {
                    "paper" => SuiteScale::Paper,
                    "small" => SuiteScale::Small,
                    other => return Err(format!("unknown scale `{other}`")),
                };
                scale_set = true;
            }
            "--target" => {
                options.target = value
                    .parse()
                    .map_err(|e| format!("invalid --target: {e}"))?;
                target_set = true;
            }
            "--timeout" => {
                let secs: f64 = value
                    .parse()
                    .map_err(|e| format!("invalid --timeout: {e}"))?;
                options.timeout = Duration::from_secs_f64(secs);
                timeout_set = true;
            }
            "--batch" => {
                options.batch_size = value.parse().map_err(|e| format!("invalid --batch: {e}"))?;
                batch_set = true;
            }
            "--threads" => {
                options.threads = Some(
                    value
                        .parse()
                        .map_err(|e| format!("invalid --threads: {e}"))?,
                );
            }
            "--kernel" => {
                options.kernel = match value.as_str() {
                    "flat" => KernelChoice::Flat,
                    "reference" => KernelChoice::Reference,
                    other => return Err(format!("unknown kernel `{other}`")),
                };
            }
            "--instances" => {
                fig2_instances = value
                    .parse()
                    .map_err(|e| format!("invalid --instances: {e}"))?;
            }
            "--counts" => {
                let counts = value
                    .split(',')
                    .map(|c| c.trim().parse::<usize>())
                    .collect::<Result<Vec<usize>, _>>()
                    .map_err(|e| format!("invalid --counts: {e}"))?;
                if counts.is_empty() {
                    return Err("--counts needs at least one thread count".to_string());
                }
                thread_counts.clone_from(&counts);
                bench_counts = Some(counts);
            }
            "--invocations" => {
                invocations = Some(
                    value
                        .parse()
                        .map_err(|e| format!("invalid --invocations: {e}"))?,
                );
            }
            "--warmup" => {
                warmup = Some(
                    value
                        .parse()
                        .map_err(|e| format!("invalid --warmup: {e}"))?,
                );
            }
            "--engines" => {
                engines = Some(split_list(&value, "--engines")?);
            }
            "--suite" => {
                suite = Some(split_list(&value, "--suite")?);
            }
            "--out" => {
                out = Some(PathBuf::from(value));
            }
            "--threshold" => {
                let pct: f64 = value
                    .parse()
                    .map_err(|e| format!("invalid --threshold: {e}"))?;
                if !pct.is_finite() || pct < 0.0 {
                    return Err(format!("invalid --threshold: `{pct}` must be >= 0"));
                }
                diff_options.threshold_pct = pct;
            }
            "--addr" => {
                addr = Some(value);
            }
            "--format" => {
                stats_format = match value.as_str() {
                    "pretty" => StatsFormat::Pretty,
                    "prom" => StatsFormat::Prom,
                    other => return Err(format!("unknown format `{other}` (valid: pretty, prom)")),
                };
            }
            "--last" => {
                trace_last = Some(value.parse().map_err(|e| format!("invalid --last: {e}"))?);
            }
            "--verb" => {
                trace_verb = Some(value);
            }
            "--min-ms" => {
                trace_min_ms = Some(
                    value
                        .parse()
                        .map_err(|e| format!("invalid --min-ms: {e}"))?,
                );
            }
            "--timeout-ms" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|e| format!("invalid --timeout-ms: {e}"))?;
                if ms == 0 {
                    return Err("invalid --timeout-ms: must be > 0".to_string());
                }
                timeout_ms = Some(ms);
            }
            "--factor" => {
                let f: f64 = value
                    .parse()
                    .map_err(|e| format!("invalid --factor: {e}"))?;
                if !f.is_finite() || f <= 0.0 {
                    return Err(format!("invalid --factor: `{f}` must be > 0"));
                }
                factor = Some(f);
            }
            other => unreachable!("flag `{other}` accepted but unhandled"),
        }
    }

    let expect_positionals = |want: usize, what: &str| -> Result<(), String> {
        if positionals.len() == want {
            Ok(())
        } else {
            Err(format!(
                "`{command}` takes exactly {want} positional argument(s) ({what}); got {}",
                positionals.len()
            ))
        }
    };

    match command.as_str() {
        "table2" => {
            expect_positionals(0, "")?;
            Ok(Command::Table2(options))
        }
        "fig2" => {
            expect_positionals(0, "")?;
            Ok(Command::Fig2(options, fig2_instances))
        }
        "fig3-iters" => {
            expect_positionals(0, "")?;
            Ok(Command::Fig3Iters(options))
        }
        "fig3-mem" => {
            expect_positionals(0, "")?;
            Ok(Command::Fig3Mem(options))
        }
        "fig4" | "fig4-speedup" | "fig4-ops" | "fig4-transform" => {
            expect_positionals(0, "")?;
            Ok(Command::Fig4(options))
        }
        "threads" => {
            expect_positionals(0, "")?;
            Ok(Command::Threads(options, thread_counts, out))
        }
        "serve-bench" => {
            expect_positionals(0, "")?;
            Ok(Command::ServeBench(options, out, router))
        }
        "all" => {
            expect_positionals(0, "")?;
            Ok(Command::All(options, fig2_instances))
        }
        "bench" => {
            expect_positionals(0, "")?;
            let mut config = if quick {
                BenchConfig::quick()
            } else {
                BenchConfig::default()
            };
            if scale_set {
                config.options.scale = options.scale;
            }
            if target_set {
                config.options.target = options.target;
            }
            if timeout_set {
                config.options.timeout = options.timeout;
            }
            if batch_set {
                config.options.batch_size = options.batch_size;
            }
            if let Some(i) = invocations {
                config.invocations = i;
            }
            if let Some(w) = warmup {
                config.warmup = w;
            }
            if let Some(e) = engines {
                config.engines = e;
            }
            if let Some(s) = suite {
                config.instances = s;
            }
            if let Some(c) = bench_counts {
                config.thread_counts = c;
            }
            Ok(Command::Bench { config, out })
        }
        "bench-diff" => {
            expect_positionals(2, "<old.json> <new.json>")?;
            Ok(Command::BenchDiff {
                old: PathBuf::from(&positionals[0]),
                new: PathBuf::from(&positionals[1]),
                options: diff_options,
            })
        }
        "stats" => {
            expect_positionals(0, "")?;
            Ok(Command::Stats {
                addr: addr.ok_or("stats requires --addr HOST:PORT")?,
                reset: stats_reset,
                exercise,
                timeout_ms,
                format: stats_format,
            })
        }
        "trace" => {
            expect_positionals(0, "")?;
            Ok(Command::Trace {
                addr: addr.ok_or("trace requires --addr HOST:PORT")?,
                last: trace_last,
                verb: trace_verb,
                min_ms: trace_min_ms,
                exercise,
                timeout_ms,
            })
        }
        "bench-degrade" => {
            expect_positionals(2, "<in.json> <out.json>")?;
            Ok(Command::BenchDegrade {
                input: PathBuf::from(&positionals[0]),
                output: PathBuf::from(&positionals[1]),
                factor: factor.ok_or("bench-degrade requires --factor F (e.g. 0.75)")?,
            })
        }
        _ => unreachable!("subcommand validated above"),
    }
}

fn split_list(value: &str, flag: &str) -> Result<Vec<String>, String> {
    let items: Vec<String> = value
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if items.is_empty() {
        return Err(format!("{flag} needs at least one comma-separated name"));
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_str(line: &str) -> Result<Command, String> {
        parse(line.split_whitespace().map(str::to_string))
    }

    #[test]
    fn defaults_to_all() {
        assert!(matches!(parse([].into_iter()), Ok(Command::All(_, 12))));
    }

    #[test]
    fn unknown_subcommand_lists_valid_ones() {
        let err = parse_str("tabel2").unwrap_err();
        assert!(err.contains("unknown subcommand `tabel2`"), "{err}");
        assert!(err.contains("table2"), "{err}");
        assert!(err.contains("bench-diff"), "{err}");
    }

    #[test]
    fn stray_flag_names_the_valid_flags_per_subcommand() {
        // `--instances` belongs to fig2/all, not table2 — historically it
        // was silently ignored there.
        let err = parse_str("table2 --instances 3").unwrap_err();
        assert!(
            err.contains("`table2` does not accept `--instances`"),
            "{err}"
        );
        assert!(err.contains("--kernel"), "lists valid flags: {err}");
        assert!(!err.contains("--instances,"), "{err}");

        // `--counts` belongs to threads/bench, not fig2.
        let err = parse_str("fig2 --counts 1,2").unwrap_err();
        assert!(err.contains("`fig2` does not accept `--counts`"), "{err}");

        // Flags never accepted anywhere are still caught.
        let err = parse_str("bench --bogus 1").unwrap_err();
        assert!(err.contains("`bench` does not accept `--bogus`"), "{err}");
        assert!(err.contains("--engines"), "{err}");
    }

    #[test]
    fn fig2_accepts_instances_and_threads_accepts_counts() {
        assert!(matches!(
            parse_str("fig2 --instances 3"),
            Ok(Command::Fig2(_, 3))
        ));
        match parse_str("threads --counts 1,2 --out /tmp/t.json").expect("parse") {
            Command::Threads(_, counts, out) => {
                assert_eq!(counts, vec![1, 2]);
                assert_eq!(out, Some(PathBuf::from("/tmp/t.json")));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse_str("serve-bench --out /tmp/s.json"),
            Ok(Command::ServeBench(_, Some(_), false))
        ));
        assert!(matches!(
            parse_str("serve-bench --router"),
            Ok(Command::ServeBench(_, None, true))
        ));
        assert!(
            parse_str("table2 --router").is_err(),
            "--router is a serve-bench flag only"
        );
    }

    #[test]
    fn bench_quick_profile_with_overrides() {
        let Command::Bench { config, out } =
            parse_str("bench --quick --engines gd --invocations 2 --out /tmp/x.json")
                .expect("parse")
        else {
            panic!("expected bench");
        };
        assert_eq!(config.engines, vec!["gd".to_string()]);
        assert_eq!(config.invocations, 2);
        // --quick's profile survives for everything not overridden.
        assert_eq!(config.warmup, BenchConfig::quick().warmup);
        assert_eq!(config.options.target, BenchConfig::quick().options.target);
        assert_eq!(out, Some(PathBuf::from("/tmp/x.json")));
    }

    #[test]
    fn bench_diff_requires_two_paths_and_parses_gate_flags() {
        let err = parse_str("bench-diff only-one.json").unwrap_err();
        assert!(err.contains("exactly 2"), "{err}");

        let Command::BenchDiff { old, new, options } =
            parse_str("bench-diff a.json b.json --threshold 25 --force").expect("parse")
        else {
            panic!("expected bench-diff");
        };
        assert_eq!(old, PathBuf::from("a.json"));
        assert_eq!(new, PathBuf::from("b.json"));
        assert!((options.threshold_pct - 25.0).abs() < 1e-12);
        assert!(options.force);
    }

    #[test]
    fn bench_degrade_requires_factor() {
        let err = parse_str("bench-degrade a.json b.json").unwrap_err();
        assert!(err.contains("--factor"), "{err}");
        assert!(parse_str("bench-degrade a.json b.json --factor 0").is_err());
        assert!(matches!(
            parse_str("bench-degrade a.json b.json --factor 0.75"),
            Ok(Command::BenchDegrade { factor, .. }) if (factor - 0.75).abs() < 1e-12
        ));
    }

    #[test]
    fn stats_requires_addr_and_takes_its_two_switches() {
        let err = parse_str("stats").unwrap_err();
        assert!(err.contains("--addr"), "{err}");
        assert!(matches!(
            parse_str("stats --addr 127.0.0.1:7878"),
            Ok(Command::Stats {
                reset: false,
                exercise: false,
                ..
            })
        ));
        let Command::Stats {
            addr,
            reset,
            exercise,
            timeout_ms,
            ..
        } = parse_str("stats --addr 127.0.0.1:7878 --reset --exercise --timeout-ms 250")
            .expect("parse")
        else {
            panic!("expected stats");
        };
        assert_eq!(addr, "127.0.0.1:7878");
        assert!(reset && exercise);
        assert_eq!(timeout_ms, Some(250));
        assert!(parse_str("stats --addr x --timeout-ms 0").is_err());
        // Its flags stay scoped to it.
        let err = parse_str("table2 --addr x").unwrap_err();
        assert!(err.contains("`table2` does not accept `--addr`"), "{err}");
    }

    #[test]
    fn stats_format_defaults_pretty_and_rejects_junk() {
        assert!(matches!(
            parse_str("stats --addr x"),
            Ok(Command::Stats {
                format: StatsFormat::Pretty,
                ..
            })
        ));
        assert!(matches!(
            parse_str("stats --addr x --format prom"),
            Ok(Command::Stats {
                format: StatsFormat::Prom,
                ..
            })
        ));
        let err = parse_str("stats --addr x --format xml").unwrap_err();
        assert!(err.contains("unknown format `xml`"), "{err}");
    }

    #[test]
    fn trace_requires_addr_and_parses_filters() {
        let err = parse_str("trace").unwrap_err();
        assert!(err.contains("--addr"), "{err}");
        let Command::Trace {
            addr,
            last,
            verb,
            min_ms,
            exercise,
            timeout_ms,
        } = parse_str(
            "trace --addr 127.0.0.1:7878 --last 5 --verb sample --min-ms 2 \
             --exercise --timeout-ms 250",
        )
        .expect("parse")
        else {
            panic!("expected trace");
        };
        assert_eq!(addr, "127.0.0.1:7878");
        assert_eq!(last, Some(5));
        assert_eq!(verb.as_deref(), Some("sample"));
        assert_eq!(min_ms, Some(2));
        assert!(exercise);
        assert_eq!(timeout_ms, Some(250));
        // Its filters stay scoped to it.
        let err = parse_str("stats --addr x --last 3").unwrap_err();
        assert!(err.contains("`stats` does not accept `--last`"), "{err}");
        let err = parse_str("trace --addr x --format prom").unwrap_err();
        assert!(err.contains("`trace` does not accept `--format`"), "{err}");
    }

    #[test]
    fn malformed_values_error() {
        assert!(parse_str("table2 --target nope").is_err());
        assert!(parse_str("table2 --scale huge").is_err());
        assert!(parse_str("bench-diff a b --threshold -3").is_err());
        assert!(parse_str("table2 --timeout").is_err(), "missing value");
    }
}
