//! Pairing and regression gating between two bench artifacts.
//!
//! `bench-diff` pairs the cells of two artifacts by (instance, engine,
//! threads), computes the per-cell throughput ratio new/old from the
//! medians **recomputed from raw samples**, and gates on the geometric mean
//! of those ratios: a geomean below `1 - threshold%` is a regression and
//! the CLI exits non-zero. Cells present on only one side are reported —
//! never silently dropped — because a vanished cell is exactly how a perf
//! regression hides (the slow configuration stops being measured).
//!
//! Artifacts from different hosts or suite scales are refused outright
//! unless forced: cross-machine throughput comparisons are noise dressed
//! up as signal, the failure mode the recorded [`super::Environment`]
//! block exists to prevent.

use super::artifact::{BenchArtifact, CellKey};
use super::stats::geomean;
use std::collections::BTreeMap;
use std::fmt;

/// Options of a diff run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffOptions {
    /// Maximum tolerated geomean throughput regression, in percent.
    pub threshold_pct: f64,
    /// Compare even when the environments are incompatible.
    pub force: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            threshold_pct: 10.0,
            force: false,
        }
    }
}

/// One compared cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellDiff {
    /// Cell identity.
    pub key: CellKey,
    /// Median throughput in the old artifact (recomputed from raw samples).
    pub old_median: f64,
    /// Median throughput in the new artifact (recomputed from raw samples).
    pub new_median: f64,
    /// `new_median / old_median`.
    pub ratio: f64,
}

/// The outcome of pairing two artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Threshold the report was gated against, in percent.
    pub threshold_pct: f64,
    /// Environment mismatches that were overridden by `--force` (empty for
    /// a clean comparison).
    pub forced_mismatches: Vec<String>,
    /// Cells present in both artifacts with positive medians, sorted by
    /// ratio (worst first).
    pub compared: Vec<CellDiff>,
    /// Cells of the old artifact absent from the new one.
    pub missing_in_new: Vec<CellKey>,
    /// Cells of the new artifact absent from the old one.
    pub missing_in_old: Vec<CellKey>,
    /// Cells paired but skipped because a median was zero (no solutions
    /// within the timeout on at least one side — a ratio would be 0 or ∞).
    pub unmeasurable: Vec<CellKey>,
    /// Geometric mean of the compared ratios.
    pub geomean_ratio: f64,
    /// Compared cells whose individual ratio is below `1 - threshold%`.
    pub regressed_cells: Vec<CellDiff>,
}

impl DiffReport {
    /// The geomean regression in percent (negative = improvement).
    #[must_use]
    pub fn regression_pct(&self) -> f64 {
        (1.0 - self.geomean_ratio) * 100.0
    }

    /// Whether the gate passes: the geomean did not regress by more than
    /// the threshold.
    #[must_use]
    pub fn passes(&self) -> bool {
        self.geomean_ratio >= 1.0 - self.threshold_pct / 100.0
    }
}

/// Why two artifacts could not be compared.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffError {
    /// The environments are incompatible (each string names one mismatch);
    /// pass `--force` to compare anyway.
    Incompatible(Vec<String>),
    /// No cell exists in both artifacts with a measurable median.
    NoComparableCells,
}

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffError::Incompatible(mismatches) => write!(
                f,
                "artifacts are not comparable ({}); rerun with --force to compare anyway",
                mismatches.join("; ")
            ),
            DiffError::NoComparableCells => {
                write!(f, "no (instance, engine, threads) cell is present and measurable in both artifacts")
            }
        }
    }
}

impl std::error::Error for DiffError {}

/// Environment/settings mismatches that make a comparison dishonest.
fn mismatches(old: &BenchArtifact, new: &BenchArtifact) -> Vec<String> {
    let mut out = Vec::new();
    let mut check = |what: &str, a: &dyn fmt::Display, b: &dyn fmt::Display| {
        let (a, b) = (a.to_string(), b.to_string());
        if a != b {
            out.push(format!("{what}: `{a}` vs `{b}`"));
        }
    };
    check("host", &old.environment.host, &new.environment.host);
    check("scale", &old.environment.scale, &new.environment.scale);
    check("target", &old.settings.target, &new.settings.target);
    check("batch", &old.settings.batch, &new.settings.batch);
    check(
        "timeout_ms",
        &old.settings.timeout_ms,
        &new.settings.timeout_ms,
    );
    out
}

fn medians(artifact: &BenchArtifact) -> BTreeMap<CellKey, f64> {
    artifact
        .cells
        .iter()
        .map(|cell| {
            // Raw samples are the source of truth; a hand-edited summary
            // block must not be able to sneak a regression past the gate.
            let median = cell.recompute_summary().map_or(0.0, |s| s.median);
            (cell.key.clone(), median)
        })
        .collect()
}

/// Pairs two artifacts and gates the throughput trajectory.
///
/// # Errors
///
/// [`DiffError::Incompatible`] when host/scale/settings differ and `force`
/// is off; [`DiffError::NoComparableCells`] when the pairing is empty.
pub fn diff(
    old: &BenchArtifact,
    new: &BenchArtifact,
    options: &DiffOptions,
) -> Result<DiffReport, DiffError> {
    let mismatches = mismatches(old, new);
    if !mismatches.is_empty() && !options.force {
        return Err(DiffError::Incompatible(mismatches));
    }

    let old_cells = medians(old);
    let new_cells = medians(new);
    let mut compared = Vec::new();
    let mut unmeasurable = Vec::new();
    let missing_in_new: Vec<CellKey> = old_cells
        .keys()
        .filter(|k| !new_cells.contains_key(*k))
        .cloned()
        .collect();
    let missing_in_old: Vec<CellKey> = new_cells
        .keys()
        .filter(|k| !old_cells.contains_key(*k))
        .cloned()
        .collect();
    for (key, old_median) in &old_cells {
        let Some(new_median) = new_cells.get(key) else {
            continue;
        };
        if *old_median <= 0.0 || *new_median <= 0.0 {
            unmeasurable.push(key.clone());
            continue;
        }
        compared.push(CellDiff {
            key: key.clone(),
            old_median: *old_median,
            new_median: *new_median,
            ratio: new_median / old_median,
        });
    }
    if compared.is_empty() {
        return Err(DiffError::NoComparableCells);
    }
    compared.sort_by(|a, b| a.ratio.partial_cmp(&b.ratio).expect("finite ratios"));

    let ratios: Vec<f64> = compared.iter().map(|c| c.ratio).collect();
    let geomean_ratio = geomean(&ratios).expect("positive finite ratios");
    let cell_floor = 1.0 - options.threshold_pct / 100.0;
    let regressed_cells = compared
        .iter()
        .filter(|c| c.ratio < cell_floor)
        .cloned()
        .collect();
    Ok(DiffReport {
        threshold_pct: options.threshold_pct,
        forced_mismatches: mismatches,
        compared,
        missing_in_new,
        missing_in_old,
        unmeasurable,
        geomean_ratio,
        regressed_cells,
    })
}
