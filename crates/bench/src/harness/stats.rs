//! The statistics kernel of the bench harness.
//!
//! Every summary number in a bench artifact comes from these functions and
//! nowhere else, so their invariants (permutation independence, behaviour on
//! degenerate sample sets, refusal of NaN) are pinned by property tests in
//! `tests/proptest_stats.rs`. The kernel is deliberately tiny: per-cell
//! samples are at most a few dozen values, so clarity beats asymptotics.

use std::fmt;

/// Why a sample set could not be summarized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// The sample set was empty.
    Empty,
    /// A sample was NaN, infinite or negative — throughput samples are
    /// finite and non-negative by construction, so anything else means a
    /// corrupted artifact, not a slow run.
    InvalidSample {
        /// Index of the offending sample.
        index: usize,
    },
    /// Geometric-mean input contained a non-positive value (`ln` would
    /// produce NaN / -inf).
    NonPositive {
        /// Index of the offending sample.
        index: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::Empty => write!(f, "empty sample set"),
            StatsError::InvalidSample { index } => {
                write!(f, "sample #{index} is NaN, infinite or negative")
            }
            StatsError::NonPositive { index } => {
                write!(f, "sample #{index} is not positive (geomean is undefined)")
            }
        }
    }
}

impl std::error::Error for StatsError {}

/// Summary statistics of one cell's per-invocation samples.
///
/// `ci95` is the half-width of the 95% confidence interval of the mean
/// under the normal approximation (`1.96 · s / √n`, with `s` the corrected
/// sample standard deviation). A single sample — or a constant sample set —
/// has zero half-width; the artifact still records every raw sample, so a
/// reader who wants bootstrap or t-distribution intervals can recompute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples summarized.
    pub samples: usize,
    /// Smallest sample.
    pub min: f64,
    /// Median (midpoint average for even counts).
    pub median: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Half-width of the 95% confidence interval of the mean.
    pub ci95: f64,
}

fn validate(samples: &[f64]) -> Result<(), StatsError> {
    if samples.is_empty() {
        return Err(StatsError::Empty);
    }
    for (index, s) in samples.iter().enumerate() {
        if !s.is_finite() || *s < 0.0 {
            return Err(StatsError::InvalidSample { index });
        }
    }
    Ok(())
}

/// Summarizes a sample set: min, median, mean and 95% CI half-width.
///
/// # Errors
///
/// [`StatsError::Empty`] for an empty set, [`StatsError::InvalidSample`] if
/// any sample is NaN, infinite or negative.
pub fn summarize(samples: &[f64]) -> Result<Summary, StatsError> {
    validate(samples)?;
    let n = samples.len();
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("validated finite samples"));
    let median = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    };
    let mean = sorted.iter().sum::<f64>() / n as f64;
    let ci95 = if n < 2 {
        0.0
    } else {
        let var = sorted.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        1.96 * var.sqrt() / (n as f64).sqrt()
    };
    Ok(Summary {
        samples: n,
        min: sorted[0],
        median,
        mean,
        ci95,
    })
}

/// Geometric mean of a set of positive values.
///
/// # Errors
///
/// [`StatsError::Empty`] for an empty set, [`StatsError::InvalidSample`]
/// for NaN/infinite/negative values, [`StatsError::NonPositive`] for zeros
/// (the logarithm is undefined).
pub fn geomean(samples: &[f64]) -> Result<f64, StatsError> {
    validate(samples)?;
    if let Some(index) = samples.iter().position(|s| *s <= 0.0) {
        return Err(StatsError::NonPositive { index });
    }
    let log_mean = samples.iter().map(|s| s.ln()).sum::<f64>() / samples.len() as f64;
    Ok(log_mean.exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_odd_and_even_medians() {
        let s = summarize(&[3.0, 1.0, 2.0]).expect("stats");
        assert_eq!(s.median, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.mean, 2.0);
        let s = summarize(&[4.0, 1.0, 2.0, 3.0]).expect("stats");
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn single_sample_has_zero_ci() {
        let s = summarize(&[7.5]).expect("stats");
        assert_eq!((s.min, s.median, s.mean, s.ci95), (7.5, 7.5, 7.5, 0.0));
    }

    #[test]
    fn rejects_nan_and_negative() {
        assert_eq!(summarize(&[]), Err(StatsError::Empty));
        assert_eq!(
            summarize(&[1.0, f64::NAN]),
            Err(StatsError::InvalidSample { index: 1 })
        );
        assert_eq!(
            summarize(&[-1.0]),
            Err(StatsError::InvalidSample { index: 0 })
        );
        assert_eq!(
            summarize(&[f64::INFINITY]),
            Err(StatsError::InvalidSample { index: 0 })
        );
    }

    #[test]
    fn geomean_matches_hand_computation() {
        let g = geomean(&[1.0, 4.0]).expect("geomean");
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(
            geomean(&[1.0, 0.0]),
            Err(StatsError::NonPositive { index: 1 })
        );
    }
}
