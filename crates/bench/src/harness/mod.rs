//! The statistical bench harness: interleaved invocations over a matrix of
//! (instance, engine, threads) cells, emitting a machine-readable
//! perf-trajectory artifact.
//!
//! # Measurement discipline (cargo-harness style)
//!
//! * **Interleaved runs.** One *invocation* is a full sweep of the matrix —
//!   every cell runs once, in a fixed order — and the harness repeats `I`
//!   invocations. No cell is ever run `I` times in a tight loop: a
//!   frequency-scaling event or a background process perturbs *all* cells
//!   of one invocation roughly equally instead of poisoning a single
//!   cell's entire sample set.
//! * **Warmup / timing separation.** The first `warmup` invocations run
//!   the identical sweep but record nothing, so page-cache population,
//!   allocator growth and branch-predictor warmup are not billed to the
//!   first measured cell.
//! * **Statistics, not single numbers.** Each cell keeps every raw
//!   per-invocation sample; summaries (min / median / mean / 95% CI) are
//!   computed by [`stats`] and recomputable from the artifact forever.
//! * **Tracked environment.** The artifact records host, core count,
//!   toolchain, git revision and suite scale; `bench-diff` refuses to
//!   compare artifacts whose host or scale differ (see [`diff`]).
//!
//! Each cell run streams one engine through the same measurement loop as
//! the Table II reproduction (preparation inside the timed window, target
//! cut-off, per-run timeout), so harness numbers and `repro table2`
//! numbers share semantics.

pub mod artifact;
pub mod diff;
pub mod stats;

pub use artifact::{
    ArtifactError, BenchArtifact, BenchSettings, Cell, CellKey, Environment, Sample,
    ARTIFACT_VERSION,
};
pub use diff::{diff as diff_artifacts, CellDiff, DiffError, DiffOptions, DiffReport};
pub use stats::{geomean, summarize, StatsError, Summary};

use crate::RunOptions;
use htsat_core::SampleEngine;
use htsat_core::TransformConfig;
use htsat_instances::suite::{table2_instance, SuiteScale};
use htsat_instances::Instance;
use htsat_tensor::Backend;
use std::fmt;
use std::process::Command;
use std::time::{Duration, SystemTime};

/// Configuration of one harness run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchConfig {
    /// Shared run options (scale, target, timeout, batch size).
    pub options: RunOptions,
    /// Timed invocations (full interleaved sweeps of the matrix).
    pub invocations: usize,
    /// Warmup invocations before timing starts.
    pub warmup: usize,
    /// Engines of the matrix, by canonical name (`gd`, `walksat`, ...).
    pub engines: Vec<String>,
    /// Worker-thread counts of the matrix.
    pub thread_counts: Vec<usize>,
    /// Instance names of the matrix (Table II names).
    pub instances: Vec<String>,
}

impl Default for BenchConfig {
    /// The standard matrix: the four ablation instances, the paper's
    /// sampler plus the two fastest baselines, one thread, five timed
    /// invocations after one warmup.
    fn default() -> Self {
        BenchConfig {
            options: RunOptions {
                target: 100,
                timeout: Duration::from_secs(2),
                ..RunOptions::default()
            },
            invocations: 5,
            warmup: 1,
            engines: vec!["gd".into(), "cmsgen".into(), "walksat".into()],
            thread_counts: vec![1],
            instances: vec![
                "or-100-20-8-UC-10".into(),
                "90-10-10-q".into(),
                "s15850a_15_7".into(),
                "Prod-32".into(),
            ],
        }
    }
}

impl BenchConfig {
    /// A matrix small enough for CI: two fast instances, two engines,
    /// three timed invocations after one warmup, tight target/timeout.
    #[must_use]
    pub fn quick() -> Self {
        BenchConfig {
            options: RunOptions {
                target: 30,
                timeout: Duration::from_millis(500),
                batch_size: 128,
                ..RunOptions::default()
            },
            invocations: 3,
            warmup: 1,
            engines: vec!["gd".into(), "walksat".into()],
            thread_counts: vec![1],
            instances: vec!["90-10-10-q".into(), "or-50-10-7-UC-10".into()],
        }
    }

    /// Total cell runs the harness will execute (warmup included).
    #[must_use]
    pub fn total_runs(&self) -> usize {
        (self.invocations + self.warmup)
            * self.engines.len()
            * self.thread_counts.len()
            * self.instances.len()
    }
}

/// Why a harness run could not start.
#[derive(Debug, Clone, PartialEq)]
pub enum BenchError {
    /// An instance name is not in the Table II suite.
    UnknownInstance(String),
    /// An engine name is not a canonical engine.
    UnknownEngine(String),
    /// The matrix was empty along one axis.
    EmptyMatrix(&'static str),
    /// Summarizing a cell failed.
    Stats(StatsError),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::UnknownInstance(name) => write!(
                f,
                "unknown instance `{name}` (valid: {})",
                htsat_instances::suite::table2_names().join(", ")
            ),
            BenchError::UnknownEngine(name) => write!(
                f,
                "unknown engine `{name}` (valid: {})",
                htsat_baselines::ENGINE_NAMES.join(", ")
            ),
            BenchError::EmptyMatrix(axis) => write!(f, "the `{axis}` axis of the matrix is empty"),
            BenchError::Stats(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BenchError {}

impl From<StatsError> for BenchError {
    fn from(e: StatsError) -> Self {
        BenchError::Stats(e)
    }
}

/// Progress of a running harness, reported once per invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvocationEvent {
    /// 1-based invocation number (warmup invocations first).
    pub invocation: usize,
    /// Total invocations, warmup included.
    pub total: usize,
    /// Whether this invocation is warmup (unrecorded).
    pub warmup: bool,
}

/// Runs the harness silently. See [`run_bench_with`].
///
/// # Errors
///
/// Propagates [`BenchError`].
pub fn run_bench(config: &BenchConfig) -> Result<BenchArtifact, BenchError> {
    run_bench_with(config, |_| {})
}

/// Runs the matrix in interleaved invocation order and returns the
/// artifact, invoking `progress` at the start of every invocation.
///
/// # Errors
///
/// [`BenchError::UnknownInstance`] / [`BenchError::UnknownEngine`] for bad
/// matrix axes (checked before any measurement), [`BenchError::EmptyMatrix`]
/// for an empty axis, [`BenchError::Stats`] if a cell cannot be summarized.
pub fn run_bench_with(
    config: &BenchConfig,
    mut progress: impl FnMut(InvocationEvent),
) -> Result<BenchArtifact, BenchError> {
    if config.instances.is_empty() {
        return Err(BenchError::EmptyMatrix("instances"));
    }
    if config.engines.is_empty() {
        return Err(BenchError::EmptyMatrix("engines"));
    }
    if config.thread_counts.is_empty() {
        return Err(BenchError::EmptyMatrix("threads"));
    }
    if config.invocations == 0 {
        return Err(BenchError::EmptyMatrix("invocations"));
    }

    // Resolve every axis before the first measurement so a typo fails in
    // milliseconds, not after a half-finished run.
    let instances: Vec<Instance> = config
        .instances
        .iter()
        .map(|name| {
            table2_instance(name, config.options.scale)
                .ok_or_else(|| BenchError::UnknownInstance(name.clone()))
        })
        .collect::<Result<_, _>>()?;
    let engines: Vec<&'static str> = config
        .engines
        .iter()
        .map(|name| {
            htsat_baselines::resolve_engine_name(name)
                .ok_or_else(|| BenchError::UnknownEngine(name.clone()))
        })
        .collect::<Result<_, _>>()?;

    // Cell order is fixed: instance-major, then engine, then threads. One
    // invocation sweeps all cells once; samples land per cell.
    let mut keys: Vec<CellKey> = Vec::new();
    for instance in &instances {
        for engine in &engines {
            for &threads in &config.thread_counts {
                keys.push(CellKey {
                    instance: instance.name.clone(),
                    engine: (*engine).to_string(),
                    threads: threads as u64,
                });
            }
        }
    }
    let mut samples: Vec<Vec<Sample>> = vec![Vec::new(); keys.len()];

    let total = config.warmup + config.invocations;
    for invocation in 0..total {
        let warmup = invocation < config.warmup;
        progress(InvocationEvent {
            invocation: invocation + 1,
            total,
            warmup,
        });
        let mut cell = 0usize;
        for instance in &instances {
            for engine in &engines {
                for &threads in &config.thread_counts {
                    let result = run_cell(instance, engine, threads, &config.options);
                    if !warmup {
                        samples[cell].push(result);
                    }
                    cell += 1;
                }
            }
        }
    }

    let cells = keys
        .into_iter()
        .zip(samples)
        .map(|(key, samples)| {
            let throughputs: Vec<f64> = samples.iter().map(|s| s.throughput).collect();
            Ok(Cell {
                key,
                summary: summarize(&throughputs)?,
                samples,
            })
        })
        .collect::<Result<Vec<Cell>, BenchError>>()?;

    Ok(BenchArtifact {
        version: ARTIFACT_VERSION,
        environment: capture_environment(config.options.scale),
        settings: BenchSettings {
            invocations: config.invocations as u64,
            warmup: config.warmup as u64,
            target: config.options.target as u64,
            timeout_ms: config.options.timeout.as_millis() as u64,
            batch: config.options.batch_size as u64,
            date: utc_today(),
        },
        cells,
    })
}

/// One timed run of one cell, through the same measurement loop as the
/// Table II reproduction (preparation inside the window, target cut-off,
/// timeout). The GD engine gets the harness batch/kernel options installed
/// as its session template; baselines prepare from the CNF alone.
fn run_cell(
    instance: &Instance,
    engine: &'static str,
    threads: usize,
    options: &RunOptions,
) -> Sample {
    let backend = Backend::Threads(threads);
    let result = crate::run_engine(
        || {
            if engine == "gd" {
                crate::gd_engine(instance, options, backend)
                    .map(|e| Box::new(e) as Box<dyn SampleEngine>)
            } else {
                htsat_baselines::engine_by_name(engine, &instance.cnf, &TransformConfig::default())
            }
        },
        engine,
        options,
        backend,
        engine == "gd",
    );
    Sample {
        seconds: result.elapsed.as_secs_f64().max(1e-9),
        unique: result.unique as u64,
        throughput: result.throughput,
    }
}

/// Records the environment a run happened in. Host and scale gate
/// comparability in [`diff`]; the rest is provenance.
#[must_use]
pub fn capture_environment(scale: SuiteScale) -> Environment {
    Environment {
        host: detect_host(),
        cores: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) as u64,
        os: format!("{}-{}", std::env::consts::OS, std::env::consts::ARCH),
        toolchain: command_stdout("rustc", &["--version"]).unwrap_or_else(|| "unknown".into()),
        git_rev: command_stdout("git", &["rev-parse", "--short=12", "HEAD"])
            .unwrap_or_else(|| "unknown".into()),
        scale: scale_label(scale).to_string(),
    }
}

/// The string form of a suite scale as recorded in artifacts.
#[must_use]
pub fn scale_label(scale: SuiteScale) -> &'static str {
    match scale {
        SuiteScale::Small => "small",
        SuiteScale::Paper => "paper",
    }
}

fn detect_host() -> String {
    let raw = std::env::var("HOSTNAME")
        .ok()
        .filter(|h| !h.trim().is_empty())
        .or_else(|| {
            std::fs::read_to_string("/etc/hostname")
                .ok()
                .map(|h| h.trim().to_string())
                .filter(|h| !h.is_empty())
        })
        .or_else(|| command_stdout("hostname", &[]))
        .unwrap_or_default();
    artifact::sanitize_component(&raw)
}

fn command_stdout(program: &str, args: &[&str]) -> Option<String> {
    let output = Command::new(program).args(args).output().ok()?;
    if !output.status.success() {
        return None;
    }
    let text = String::from_utf8(output.stdout).ok()?;
    let line = text.lines().next()?.trim().to_string();
    (!line.is_empty()).then_some(line)
}

/// Today's UTC date as `YYYY-MM-DD`, from the system clock.
#[must_use]
pub fn utc_today() -> String {
    let secs = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Days-since-epoch → (year, month, day), Howard Hinnant's civil-calendar
/// algorithm (exact for the proleptic Gregorian calendar).
fn civil_from_days(days: i64) -> (i64, u32, u32) {
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_from_days_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // 2024-01-01
        assert_eq!(civil_from_days(20_514), (2026, 3, 2)); // after a leap year
    }

    #[test]
    fn environment_capture_is_sane() {
        let env = capture_environment(SuiteScale::Small);
        assert!(!env.host.is_empty());
        assert!(env.cores >= 1);
        assert_eq!(env.scale, "small");
        assert!(env.os.contains('-'));
    }

    #[test]
    fn unknown_axes_fail_before_measurement() {
        let mut config = BenchConfig::quick();
        config.instances = vec!["no-such-instance".into()];
        assert!(matches!(
            run_bench(&config),
            Err(BenchError::UnknownInstance(_))
        ));
        let mut config = BenchConfig::quick();
        config.engines = vec!["no-such-engine".into()];
        assert!(matches!(
            run_bench(&config),
            Err(BenchError::UnknownEngine(_))
        ));
        let mut config = BenchConfig::quick();
        config.thread_counts.clear();
        assert!(matches!(
            run_bench(&config),
            Err(BenchError::EmptyMatrix("threads"))
        ));
    }

    #[test]
    fn total_runs_counts_warmup() {
        let config = BenchConfig::quick();
        // (1 warmup + 3 timed) x 2 instances x 2 engines x 1 thread count.
        assert_eq!(config.total_runs(), 16);
    }
}
