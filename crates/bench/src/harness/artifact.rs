//! The machine-readable bench artifact: `BENCH_<host>_<date>.json`.
//!
//! An artifact is the durable record of one harness run: a schema `version`,
//! the recorded [`Environment`] (so numbers from different machines are
//! never silently compared), the harness [`BenchSettings`], and one
//! [`Cell`] per (instance, engine, threads) matrix entry carrying **every
//! raw per-invocation sample** plus the [`Summary`] computed from them.
//! Raw samples are the source of truth — `bench-diff` and the tests
//! recompute summaries from them rather than trusting the stored block.
//!
//! Serialization goes through the shared [`htsat_json`] codec, whose object
//! keys keep insertion order: emit → parse → emit is byte-identical, which
//! keeps committed reference artifacts diffable and is pinned by a
//! round-trip test. The schema is versioned; parsing rejects versions this
//! build does not understand instead of misreading them, and a committed
//! fixture in `tests/fixtures/` must keep parsing forever.

use super::stats::{summarize, StatsError, Summary};
use htsat_json::{Json, JsonError};
use std::fmt;
use std::path::Path;

/// Schema version this build reads and writes.
pub const ARTIFACT_VERSION: u64 = 1;

/// The recorded host environment of a run.
///
/// Two artifacts are only comparable when `host` and `scale` match —
/// `bench-diff` refuses otherwise (unless forced). The remaining fields are
/// provenance: they explain a trajectory step (new toolchain, new commit)
/// without gating the comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Environment {
    /// Hostname the run was recorded on.
    pub host: String,
    /// Hardware threads available on the host.
    pub cores: u64,
    /// Operating system and architecture, e.g. `linux-x86_64`.
    pub os: String,
    /// Toolchain that built the harness (`rustc --version`).
    pub toolchain: String,
    /// Git revision of the workspace at run time.
    pub git_rev: String,
    /// Suite scale the instances were generated at (`small` / `paper`).
    pub scale: String,
}

/// The harness settings of a run, recorded so a reader can reproduce it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchSettings {
    /// Timed invocations (full interleaved sweeps of the matrix).
    pub invocations: u64,
    /// Warmup invocations executed before timing started.
    pub warmup: u64,
    /// Unique-solution target per cell run.
    pub target: u64,
    /// Per-run timeout in milliseconds.
    pub timeout_ms: u64,
    /// GD batch size.
    pub batch: u64,
    /// UTC date of the run (`YYYY-MM-DD`), also embedded in the file name.
    pub date: String,
}

/// Identity of one matrix cell.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellKey {
    /// Instance name.
    pub instance: String,
    /// Engine name (`gd` or a baseline).
    pub engine: String,
    /// Worker-thread count.
    pub threads: u64,
}

impl fmt::Display for CellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/t{}", self.instance, self.engine, self.threads)
    }
}

/// One timed invocation of one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Wall-clock seconds of the run (preparation + sampling).
    pub seconds: f64,
    /// Unique solutions obtained.
    pub unique: u64,
    /// Unique-solution throughput (solutions / second).
    pub throughput: f64,
}

/// One matrix cell: identity, raw samples, and their summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Cell identity.
    pub key: CellKey,
    /// Raw per-invocation samples, in invocation order.
    pub samples: Vec<Sample>,
    /// Summary statistics over the throughput samples.
    pub summary: Summary,
}

impl Cell {
    /// Recomputes the summary from the raw throughput samples.
    ///
    /// # Errors
    ///
    /// Propagates [`StatsError`] for empty or invalid sample sets.
    pub fn recompute_summary(&self) -> Result<Summary, StatsError> {
        let throughputs: Vec<f64> = self.samples.iter().map(|s| s.throughput).collect();
        summarize(&throughputs)
    }
}

/// A complete bench artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArtifact {
    /// Schema version ([`ARTIFACT_VERSION`]).
    pub version: u64,
    /// Recorded host environment.
    pub environment: Environment,
    /// Harness settings of the run.
    pub settings: BenchSettings,
    /// One entry per matrix cell, in run order.
    pub cells: Vec<Cell>,
}

/// Why an artifact could not be parsed or validated.
#[derive(Debug)]
pub enum ArtifactError {
    /// The document is not valid JSON.
    Json(JsonError),
    /// A required field is missing or has the wrong type.
    Missing(String),
    /// The document declares a schema version this build does not know.
    UnsupportedVersion(u64),
    /// A sample failed validation (NaN / zero duration / negative values).
    InvalidSample {
        /// The cell the sample belongs to.
        cell: String,
        /// What was wrong with it.
        reason: String,
    },
    /// Summary statistics could not be computed.
    Stats(StatsError),
    /// The file could not be read or written.
    Io(std::io::Error),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Json(e) => write!(f, "invalid JSON: {e}"),
            ArtifactError::Missing(path) => write!(f, "missing or mistyped field `{path}`"),
            ArtifactError::UnsupportedVersion(v) => write!(
                f,
                "unsupported artifact version {v} (this build reads version {ARTIFACT_VERSION})"
            ),
            ArtifactError::InvalidSample { cell, reason } => {
                write!(f, "invalid sample in cell `{cell}`: {reason}")
            }
            ArtifactError::Stats(e) => write!(f, "{e}"),
            ArtifactError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<JsonError> for ArtifactError {
    fn from(e: JsonError) -> Self {
        ArtifactError::Json(e)
    }
}

impl From<StatsError> for ArtifactError {
    fn from(e: StatsError) -> Self {
        ArtifactError::Stats(e)
    }
}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

fn get<'a>(obj: &'a Json, path: &str) -> Result<&'a Json, ArtifactError> {
    let mut value = obj;
    for key in path.split('.') {
        value = value
            .get(key)
            .ok_or_else(|| ArtifactError::Missing(path.to_string()))?;
    }
    Ok(value)
}

fn get_str(obj: &Json, path: &str) -> Result<String, ArtifactError> {
    get(obj, path)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| ArtifactError::Missing(path.to_string()))
}

fn get_u64(obj: &Json, path: &str) -> Result<u64, ArtifactError> {
    get(obj, path)?
        .as_u64()
        .ok_or_else(|| ArtifactError::Missing(path.to_string()))
}

fn get_f64(obj: &Json, path: &str) -> Result<f64, ArtifactError> {
    get(obj, path)?
        .as_f64()
        .ok_or_else(|| ArtifactError::Missing(path.to_string()))
}

impl BenchArtifact {
    /// The canonical file name of this artifact: `BENCH_<host>_<date>.json`.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!(
            "BENCH_{}_{}.json",
            sanitize_component(&self.environment.host),
            self.settings.date
        )
    }

    /// Serializes the artifact to its canonical JSON document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let env = &self.environment;
        let set = &self.settings;
        Json::obj(vec![
            ("version", Json::from(self.version)),
            (
                "environment",
                Json::obj(vec![
                    ("host", env.host.as_str().into()),
                    ("cores", env.cores.into()),
                    ("os", env.os.as_str().into()),
                    ("toolchain", env.toolchain.as_str().into()),
                    ("git_rev", env.git_rev.as_str().into()),
                    ("scale", env.scale.as_str().into()),
                ]),
            ),
            (
                "settings",
                Json::obj(vec![
                    ("invocations", set.invocations.into()),
                    ("warmup", set.warmup.into()),
                    ("target", set.target.into()),
                    ("timeout_ms", set.timeout_ms.into()),
                    ("batch", set.batch.into()),
                    ("date", set.date.as_str().into()),
                ]),
            ),
            (
                "cells",
                Json::Arr(self.cells.iter().map(cell_to_json).collect()),
            ),
        ])
    }

    /// Serializes to the canonical text form (one JSON document plus a
    /// trailing newline). This is the byte sequence the round-trip test
    /// pins: `parse(encode(a)).encode() == encode(a)`.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut text = self.to_json().encode();
        text.push('\n');
        text
    }

    /// Parses and validates an artifact document.
    ///
    /// # Errors
    ///
    /// [`ArtifactError`] on malformed JSON, missing fields, an unsupported
    /// schema version, or invalid samples (NaN / non-positive durations /
    /// negative throughput).
    pub fn parse(text: &str) -> Result<BenchArtifact, ArtifactError> {
        let doc = Json::parse(text.trim_end_matches(['\n', '\r']))?;
        let version = get_u64(&doc, "version")?;
        if version != ARTIFACT_VERSION {
            return Err(ArtifactError::UnsupportedVersion(version));
        }
        let environment = Environment {
            host: get_str(&doc, "environment.host")?,
            cores: get_u64(&doc, "environment.cores")?,
            os: get_str(&doc, "environment.os")?,
            toolchain: get_str(&doc, "environment.toolchain")?,
            git_rev: get_str(&doc, "environment.git_rev")?,
            scale: get_str(&doc, "environment.scale")?,
        };
        let settings = BenchSettings {
            invocations: get_u64(&doc, "settings.invocations")?,
            warmup: get_u64(&doc, "settings.warmup")?,
            target: get_u64(&doc, "settings.target")?,
            timeout_ms: get_u64(&doc, "settings.timeout_ms")?,
            batch: get_u64(&doc, "settings.batch")?,
            date: get_str(&doc, "settings.date")?,
        };
        let cells = get(&doc, "cells")?
            .as_arr()
            .ok_or_else(|| ArtifactError::Missing("cells".to_string()))?
            .iter()
            .map(cell_from_json)
            .collect::<Result<Vec<Cell>, ArtifactError>>()?;
        Ok(BenchArtifact {
            version,
            environment,
            settings,
            cells,
        })
    }

    /// Writes the canonical text form to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_to(&self, path: &Path) -> Result<(), ArtifactError> {
        std::fs::write(path, self.encode())?;
        Ok(())
    }

    /// Reads and parses an artifact file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and [`BenchArtifact::parse`] errors.
    pub fn read_from(path: &Path) -> Result<BenchArtifact, ArtifactError> {
        let text = std::fs::read_to_string(path)?;
        BenchArtifact::parse(&text)
    }
}

fn cell_to_json(cell: &Cell) -> Json {
    Json::obj(vec![
        ("instance", cell.key.instance.as_str().into()),
        ("engine", cell.key.engine.as_str().into()),
        ("threads", cell.key.threads.into()),
        (
            "samples",
            Json::Arr(
                cell.samples
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("seconds", s.seconds.into()),
                            ("unique", s.unique.into()),
                            ("throughput", s.throughput.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "summary",
            Json::obj(vec![
                ("samples", Json::from(cell.summary.samples)),
                ("min", cell.summary.min.into()),
                ("median", cell.summary.median.into()),
                ("mean", cell.summary.mean.into()),
                ("ci95", cell.summary.ci95.into()),
            ]),
        ),
    ])
}

fn cell_from_json(value: &Json) -> Result<Cell, ArtifactError> {
    let key = CellKey {
        instance: get_str(value, "instance")?,
        engine: get_str(value, "engine")?,
        threads: get_u64(value, "threads")?,
    };
    let samples = get(value, "samples")?
        .as_arr()
        .ok_or_else(|| ArtifactError::Missing("cells[].samples".to_string()))?
        .iter()
        .map(|s| {
            let sample = Sample {
                seconds: get_f64(s, "seconds")?,
                unique: get_u64(s, "unique")?,
                throughput: get_f64(s, "throughput")?,
            };
            validate_sample(&key, &sample)?;
            Ok(sample)
        })
        .collect::<Result<Vec<Sample>, ArtifactError>>()?;
    let summary = Summary {
        samples: get_u64(value, "summary.samples")? as usize,
        min: get_f64(value, "summary.min")?,
        median: get_f64(value, "summary.median")?,
        mean: get_f64(value, "summary.mean")?,
        ci95: get_f64(value, "summary.ci95")?,
    };
    Ok(Cell {
        key,
        samples,
        summary,
    })
}

/// Rejects samples no real run can produce: NaN or zero/negative durations
/// (nothing completes in literally no time — a zero means a broken clock or
/// a hand-edited file) and NaN/negative throughput.
fn validate_sample(key: &CellKey, sample: &Sample) -> Result<(), ArtifactError> {
    if !sample.seconds.is_finite() || sample.seconds <= 0.0 {
        return Err(ArtifactError::InvalidSample {
            cell: key.to_string(),
            reason: format!(
                "duration {} s is not a positive finite number",
                sample.seconds
            ),
        });
    }
    if !sample.throughput.is_finite() || sample.throughput < 0.0 {
        return Err(ArtifactError::InvalidSample {
            cell: key.to_string(),
            reason: format!(
                "throughput {} /s is not a non-negative finite number",
                sample.throughput
            ),
        });
    }
    Ok(())
}

/// Replaces anything outside `[A-Za-z0-9._-]` so the host can be embedded
/// in a file name.
#[must_use]
pub fn sanitize_component(raw: &str) -> String {
    let cleaned: String = raw
        .trim()
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '-'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "unknown-host".to_string()
    } else {
        cleaned
    }
}
