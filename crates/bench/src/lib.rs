//! # htsat-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation section:
//!
//! | Paper artifact | Harness entry point | `repro` subcommand |
//! |---|---|---|
//! | Table II (throughput + speedups) | [`table2`] | `table2` |
//! | Fig. 2 (latency vs unique solutions) | [`fig2`] | `fig2` |
//! | Fig. 3 left (solutions vs iterations) | [`fig3_iterations`] | `fig3-iters` |
//! | Fig. 3 right (memory vs batch size) | [`fig3_memory`] | `fig3-mem` |
//! | Fig. 4 left (parallel-vs-serial speedup) | [`fig4_speedup`] | `fig4-speedup` |
//! | Fig. 4 middle (ops reduction) | [`fig4_ops`] | `fig4-ops` |
//! | Fig. 4 right (transformation time) | [`fig4_transform`] | `fig4-transform` |
//!
//! Absolute numbers differ from the paper (our "GPU" is a rayon thread pool,
//! our baselines are re-implementations), but the comparisons the paper draws
//! — who wins, by how much, and how the trends scale — are reproduced.
//!
//! Beyond the figure reproductions, the [`harness`] module is a statistical
//! bench runner (interleaved invocations, warmup/timing separation,
//! min/median/mean/CI summaries) that records machine-readable
//! `BENCH_<host>_<date>.json` perf-trajectory artifacts; `repro bench` runs
//! it, `repro bench-diff` gates one artifact against another (CI's
//! regression gate), and `repro bench-degrade` injects synthetic
//! regressions to prove the gate fires. The [`cli`] module owns `repro`
//! argument parsing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod harness;

use htsat_baselines::engine_by_name;
use htsat_core::{
    transform, GdSampler, KernelChoice, PreparedFormula, SampleEngine, SamplerConfig,
    SessionConfig, TransformConfig, TransformError,
};
use htsat_instances::suite::{full_suite, table2_instances, SuiteScale};
use htsat_instances::Instance;
use htsat_tensor::Backend;
use std::time::Duration;

/// Options shared by every experiment runner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// Instance scale (shrunk for quick runs, paper-sized otherwise).
    pub scale: SuiteScale,
    /// Target number of unique solutions per instance.
    pub target: usize,
    /// Per-sampler, per-instance timeout.
    pub timeout: Duration,
    /// Batch size of the gradient-descent samplers.
    pub batch_size: usize,
    /// Worker threads for the gradient-descent sampler: `Some(0)` sizes the
    /// pool to the machine, `Some(n)` pins it, `None` uses the default
    /// backend (also auto-sized).
    pub threads: Option<usize>,
    /// Historical flag: the harness used to switch the GD sampler between
    /// the blocking `sample` call and the streaming API. Since the engine
    /// redesign *every* sampler is collected through the one streaming
    /// service ([`SampleEngine::stream`]), so this no longer changes the
    /// measurement; retained for CLI compatibility.
    pub stream: bool,
    /// Execution form of the gradient-descent inner loop: the fused flat
    /// kernel (default) or the staged reference circuit.
    pub kernel: KernelChoice,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            scale: SuiteScale::Small,
            target: 200,
            timeout: Duration::from_secs(3),
            batch_size: 512,
            threads: None,
            stream: false,
            kernel: KernelChoice::default(),
        }
    }
}

impl RunOptions {
    /// The backend the gradient-descent sampler runs on under these options.
    #[must_use]
    pub fn gd_backend(&self) -> Backend {
        match self.threads {
            Some(n) => Backend::Threads(n),
            None => Backend::default(),
        }
    }
}

/// One sampler's result on one instance.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplerResult {
    /// Sampler name.
    pub sampler: &'static str,
    /// Unique solutions found.
    pub unique: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Unique-solution throughput (solutions / second).
    pub throughput: f64,
}

/// One row of the Table II reproduction.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Instance name.
    pub instance: String,
    /// Primary-input count reported by the transformation.
    pub primary_inputs: usize,
    /// Primary-output / constrained-output count.
    pub primary_outputs: usize,
    /// CNF variable count.
    pub vars: usize,
    /// CNF clause count.
    pub clauses: usize,
    /// Per-sampler results, "this work" first.
    pub results: Vec<SamplerResult>,
    /// Speedup of "this work" over the best baseline.
    pub speedup: f64,
}

fn gd_config(options: &RunOptions, backend: Backend) -> SamplerConfig {
    SamplerConfig {
        batch_size: options.batch_size,
        backend,
        kernel: options.kernel,
        ..SamplerConfig::default()
    }
}

/// Prepares the paper's sampler as a [`SampleEngine`] with the harness
/// options (batch size, kernel choice) installed as the session template.
pub(crate) fn gd_engine(
    instance: &Instance,
    options: &RunOptions,
    backend: Backend,
) -> Result<PreparedFormula, TransformError> {
    Ok(
        PreparedFormula::prepare(&instance.cnf, &TransformConfig::default())?
            .with_template(gd_config(options, backend)),
    )
}

/// Runs one engine on one instance — THE measurement loop every comparison
/// in this harness goes through, whether the engine is the GD sampler or a
/// baseline. `build` runs *inside* the timed window, matching the
/// historical measurement (engine preparation counted against the sampler,
/// as a one-shot CLI run would pay it). `count_surplus` preserves the
/// historical counting: the GD rows always included the final round's
/// surplus beyond the target, the baseline rows stopped exactly at it.
pub(crate) fn run_engine(
    build: impl FnOnce() -> Result<Box<dyn SampleEngine>, TransformError>,
    label: &'static str,
    options: &RunOptions,
    backend: Backend,
    count_surplus: bool,
) -> SamplerResult {
    let started = std::time::Instant::now();
    let config = SessionConfig {
        seed: 0,
        backend,
        batch: None,
    };
    let unique = match build().and_then(|engine| engine.stream(&config)) {
        Ok(stream) => {
            let mut stream = stream.with_timeout(options.timeout);
            let consumed = stream.by_ref().take(options.target).count();
            if count_surplus {
                consumed + stream.drain_ready().len()
            } else {
                consumed
            }
        }
        Err(_) => 0,
    };
    let elapsed = started.elapsed();
    SamplerResult {
        sampler: label,
        unique,
        elapsed,
        throughput: htsat_runtime::unique_throughput(unique, elapsed),
    }
}

/// Runs the GD engine on one instance (the "this-work" rows).
fn run_gd(instance: &Instance, options: &RunOptions, backend: Backend) -> SamplerResult {
    run_engine(
        || gd_engine(instance, options, backend).map(|e| Box::new(e) as Box<dyn SampleEngine>),
        "this-work",
        options,
        backend,
        true,
    )
}

/// Runs a baseline engine (by canonical name) on one instance.
fn run_named_engine(
    name: &'static str,
    instance: &Instance,
    options: &RunOptions,
) -> SamplerResult {
    run_engine(
        || engine_by_name(name, &instance.cnf, &TransformConfig::default()),
        name,
        options,
        options.gd_backend(),
        false,
    )
}

/// The baseline engines of the Table II comparison, in table order.
const TABLE2_BASELINES: [&str; 3] = ["unigen", "cmsgen", "diffsampler"];

/// The full baseline roster of the Fig. 2 comparison.
const FIG2_BASELINES: [&str; 5] = ["unigen", "cmsgen", "diffsampler", "quicksampler", "walksat"];

/// Reproduces Table II: unique-solution throughput of this work against the
/// UniGen-, CMSGen- and DiffSampler-style baselines on the 14 representative
/// instances.
pub fn table2(options: &RunOptions) -> Vec<Table2Row> {
    table2_instances(options.scale)
        .iter()
        .map(|instance| table2_row(instance, options))
        .collect()
}

/// Runs the Table II measurement for a single instance.
pub fn table2_row(instance: &Instance, options: &RunOptions) -> Table2Row {
    let transform_result = transform(&instance.cnf).ok();
    let (pi, po) = transform_result
        .as_ref()
        .map(|t| (t.primary_inputs().len(), t.netlist.outputs().len()))
        .unwrap_or((0, 0));
    // One loop over engines instead of a special case per sampler: the GD
    // engine ("this-work") first, then every Table II baseline through the
    // identical measurement path.
    let mut results = vec![run_gd(instance, options, options.gd_backend())];
    for name in TABLE2_BASELINES {
        results.push(run_named_engine(name, instance, options));
    }
    let ours = results[0].throughput;
    let best_baseline = results[1..]
        .iter()
        .map(|r| r.throughput)
        .fold(0.0f64, f64::max);
    Table2Row {
        instance: instance.name.clone(),
        primary_inputs: pi,
        primary_outputs: po,
        vars: instance.num_vars(),
        clauses: instance.num_clauses(),
        results,
        speedup: if best_baseline > 0.0 {
            ours / best_baseline
        } else {
            f64::INFINITY
        },
    }
}

/// One point of the Fig. 2 latency-vs-solutions curve.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Point {
    /// Instance name.
    pub instance: String,
    /// Sampler name.
    pub sampler: &'static str,
    /// Unique solutions obtained.
    pub unique: usize,
    /// Latency in milliseconds.
    pub latency_ms: f64,
}

/// Reproduces Fig. 2: runtime versus number of unique solutions across the
/// full suite (or its first `max_instances` entries) for every sampler.
pub fn fig2(options: &RunOptions, max_instances: usize) -> Vec<Fig2Point> {
    let mut points = Vec::new();
    for instance in full_suite(options.scale).into_iter().take(max_instances) {
        let gd = run_gd(&instance, options, options.gd_backend());
        points.push(Fig2Point {
            instance: instance.name.clone(),
            sampler: "this-work",
            unique: gd.unique,
            latency_ms: gd.elapsed.as_secs_f64() * 1e3,
        });
        for name in FIG2_BASELINES {
            let r = run_named_engine(name, &instance, options);
            points.push(Fig2Point {
                instance: instance.name.clone(),
                sampler: r.sampler,
                unique: r.unique,
                latency_ms: r.elapsed.as_secs_f64() * 1e3,
            });
        }
    }
    points
}

/// The four instances used by the paper's Fig. 3 / Fig. 4 ablations.
pub fn ablation_instances(scale: SuiteScale) -> Vec<Instance> {
    ["or-100-20-8-UC-10", "90-10-10-q", "s15850a_15_7", "Prod-32"]
        .iter()
        .filter_map(|name| htsat_instances::suite::table2_instance(name, scale))
        .collect()
}

/// One point of the Fig. 3 (left) learning curve.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3IterPoint {
    /// Instance name.
    pub instance: String,
    /// Number of gradient-descent iterations.
    pub iterations: usize,
    /// Unique solutions obtained from one batch.
    pub unique: usize,
}

/// Reproduces Fig. 3 (left): unique solutions versus iteration count.
pub fn fig3_iterations(options: &RunOptions, max_iterations: usize) -> Vec<Fig3IterPoint> {
    let mut points = Vec::new();
    for instance in ablation_instances(options.scale) {
        for iterations in 1..=max_iterations {
            let config = SamplerConfig {
                batch_size: options.batch_size,
                iterations,
                ..SamplerConfig::default()
            };
            let unique = match GdSampler::new(&instance.cnf, config) {
                Ok(mut sampler) => {
                    let mut set = std::collections::HashSet::new();
                    for bits in sampler.sample_round() {
                        set.insert(bits);
                    }
                    set.len()
                }
                Err(_) => 0,
            };
            points.push(Fig3IterPoint {
                instance: instance.name.clone(),
                iterations,
                unique,
            });
        }
    }
    points
}

/// One point of the Fig. 3 (right) memory curve.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3MemPoint {
    /// Instance name.
    pub instance: String,
    /// Batch size.
    pub batch: usize,
    /// Modelled memory usage in MiB.
    pub memory_mib: f64,
}

/// Reproduces Fig. 3 (right): memory usage versus batch size.
pub fn fig3_memory(options: &RunOptions, batches: &[usize]) -> Vec<Fig3MemPoint> {
    let mut points = Vec::new();
    for instance in ablation_instances(options.scale) {
        if let Ok(sampler) = GdSampler::new(&instance.cnf, gd_config(options, options.gd_backend()))
        {
            for &batch in batches {
                points.push(Fig3MemPoint {
                    instance: instance.name.clone(),
                    batch,
                    memory_mib: sampler.memory_model_for_batch(batch).total_mib(),
                });
            }
        }
    }
    points
}

/// One row of the Fig. 4 ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// Instance name.
    pub instance: String,
    /// Throughput with the data-parallel ("GPU") backend.
    pub parallel_throughput: f64,
    /// Throughput with the sequential ("CPU") backend.
    pub sequential_throughput: f64,
    /// Parallel-over-sequential speedup (Fig. 4 left).
    pub speedup: f64,
    /// Ops-reduction ratio of the transformation (Fig. 4 middle).
    pub ops_reduction: f64,
    /// Transformation latency in seconds (Fig. 4 right).
    pub transform_seconds: f64,
}

/// Reproduces Fig. 4: backend speedup, ops reduction and transformation time
/// for the four ablation instances.
pub fn fig4(options: &RunOptions) -> Vec<Fig4Row> {
    ablation_instances(options.scale)
        .iter()
        .map(|instance| {
            let parallel = run_gd(instance, options, options.gd_backend());
            let sequential = run_gd(instance, options, Backend::Sequential);
            let stats = transform(&instance.cnf)
                .map(|t| {
                    (
                        t.stats.ops_reduction(),
                        t.stats.transform_time.as_secs_f64(),
                    )
                })
                .unwrap_or((0.0, 0.0));
            Fig4Row {
                instance: instance.name.clone(),
                parallel_throughput: parallel.throughput,
                sequential_throughput: sequential.throughput,
                speedup: if sequential.throughput > 0.0 {
                    parallel.throughput / sequential.throughput
                } else {
                    f64::INFINITY
                },
                ops_reduction: stats.0,
                transform_seconds: stats.1,
            }
        })
        .collect()
}

/// Convenience alias of [`fig4`] exposing only the speedup column.
pub fn fig4_speedup(options: &RunOptions) -> Vec<(String, f64)> {
    fig4(options)
        .into_iter()
        .map(|r| (r.instance, r.speedup))
        .collect()
}

/// Convenience alias of [`fig4`] exposing only the ops-reduction column.
pub fn fig4_ops(options: &RunOptions) -> Vec<(String, f64)> {
    fig4(options)
        .into_iter()
        .map(|r| (r.instance, r.ops_reduction))
        .collect()
}

/// Convenience alias of [`fig4`] exposing only the transformation time.
pub fn fig4_transform(options: &RunOptions) -> Vec<(String, f64)> {
    fig4(options)
        .into_iter()
        .map(|r| (r.instance, r.transform_seconds))
        .collect()
}

/// One measurement of the thread-scaling sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadsPoint {
    /// Instance name.
    pub instance: String,
    /// Worker-thread count of the sampler's pool.
    pub threads: usize,
    /// Unique solutions obtained.
    pub unique: usize,
    /// Unique-solution throughput (solutions / second).
    pub throughput: f64,
}

/// Runs the gradient-descent sampler on the ablation instances at each
/// requested worker-thread count — the executor's scaling curve, and the
/// measurement behind `docs/BASELINES.md`.
pub fn threads_sweep(options: &RunOptions, counts: &[usize]) -> Vec<ThreadsPoint> {
    let mut points = Vec::new();
    for instance in ablation_instances(options.scale) {
        for &threads in counts {
            let result = run_gd(&instance, options, Backend::Threads(threads));
            points.push(ThreadsPoint {
                instance: instance.name.clone(),
                threads,
                unique: result.unique,
                throughput: result.throughput,
            });
        }
    }
    points
}

/// One measured leg of the daemon round-trip benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBenchLeg {
    /// What the leg measured.
    pub label: String,
    /// Client-observed round-trip latency in milliseconds.
    pub round_trip_ms: f64,
    /// Unique solutions carried back over the wire (0 for `LOAD` legs).
    pub unique: usize,
}

/// The outcome of [`serve_bench`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBenchReport {
    /// Instance the daemon served.
    pub instance: String,
    /// The measured legs, in execution order.
    pub legs: Vec<ServeBenchLeg>,
    /// Engine preparations the daemon performed (must stay
    /// [`ServeBenchReport::EXPECTED_COMPILES`]: one per loaded engine — the
    /// warm legs ride the registry hit path).
    pub compiles: u64,
    /// Whether every daemon `SAMPLE` reproduced the in-process engine
    /// stream bit-for-bit: the GD engine at 1 and 8 threads, plus a
    /// baseline engine (`walksat`) over the wire.
    pub deterministic: bool,
}

impl ServeBenchReport {
    /// Engine preparations a clean run performs: one GD compile plus one
    /// walksat preparation. Anything more means a warm leg recompiled.
    pub const EXPECTED_COMPILES: u64 = 2;
}

/// Round-trips the daemon on a loopback ephemeral port: cold `LOAD`
/// (parse + transform + compile), warm re-`LOAD` (registry hit), warm
/// `SAMPLE`s at 1 and 8 worker threads whose solution sequences are checked
/// bit-for-bit against the in-process streaming API, and a baseline-engine
/// leg (`"engine": "walksat"`) checked the same way against the in-process
/// adapter.
///
/// This is both a latency benchmark (what does the wire cost over calling
/// the library directly?) and the CI loopback end-to-end gate.
pub fn serve_bench(options: &RunOptions) -> ServeBenchReport {
    use htsat_serve::{serve, ServeConfig};

    let server = serve(ServeConfig::default()).expect("bind loopback daemon");
    let (instance, legs, deterministic, mut client) = drive_wire_legs(options, server.local_addr());
    let compiles = server.registry().counters().compiles;
    client.shutdown().expect("graceful shutdown");
    ServeBenchReport {
        instance,
        legs,
        compiles,
        deterministic,
    }
}

/// [`serve_bench`] with every wire leg driven through an `htsat-router`
/// fronting two daemons that joined via the `REGISTER` heartbeat: same
/// legs, same bit-for-bit determinism checks, now measured across the
/// extra hop. `compiles` sums both backend registries, so
/// [`ServeBenchReport::EXPECTED_COMPILES`] still applies — each engine's
/// preparation happens exactly once somewhere in the fleet.
pub fn serve_bench_routed(options: &RunOptions) -> ServeBenchReport {
    use htsat_router::{route, RouterConfig};
    use htsat_serve::{serve, ServeConfig};
    use std::time::{Duration, Instant};

    let router = route(RouterConfig::default()).expect("bind loopback router");
    let router_addr = router.local_addr().to_string();
    let backends: Vec<htsat_serve::ServerHandle> = (0..2)
        .map(|_| {
            let config = ServeConfig {
                register: Some(router_addr.clone()),
                ..Default::default()
            };
            serve(config).expect("bind loopback backend")
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    while router.discovery().live().len() < backends.len() {
        assert!(
            Instant::now() < deadline,
            "backends never registered with the router"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let (instance, legs, deterministic, mut client) = drive_wire_legs(options, router.local_addr());
    let compiles = backends
        .iter()
        .map(|backend| backend.registry().counters().compiles)
        .sum();
    // One SHUTDOWN through the router broadcasts to the daemons, then
    // stops the router itself — the graceful-tree teardown path.
    client.shutdown().expect("tree shutdown");
    ServeBenchReport {
        instance,
        legs,
        compiles,
        deterministic,
    }
}

/// Runs the measured wire legs against any daemon-compatible address (a
/// daemon or a router): cold and warm `LOAD`, warm `SAMPLE`s at 1 and 8
/// worker threads, the walksat A/B leg, and the pipelined v2 leg. Returns
/// the instance name, the legs, the bit-for-bit verdict, and the
/// still-open client so the caller can read compile counters before
/// shutting the tree down.
fn drive_wire_legs(
    options: &RunOptions,
    addr: std::net::SocketAddr,
) -> (String, Vec<ServeBenchLeg>, bool, htsat_serve::Client) {
    use htsat_serve::proto::SampleParams;
    use htsat_serve::Client;
    use std::time::Instant;

    let instance = htsat_instances::suite::table2_instance("or-60-20-10-UC-10", options.scale)
        .expect("table2 instance exists");
    let dimacs_text = htsat_cnf::dimacs::to_string(&instance.cnf);
    let mut client = Client::connect(addr).expect("connect");
    let mut legs = Vec::new();

    let started = Instant::now();
    let load = client
        .load_dimacs(Some(&instance.name), &dimacs_text)
        .expect("cold load");
    legs.push(ServeBenchLeg {
        label: "LOAD cold (parse+transform+compile)".to_string(),
        round_trip_ms: started.elapsed().as_secs_f64() * 1e3,
        unique: 0,
    });
    assert!(!load.cached, "first load cannot be cached");

    let started = Instant::now();
    let reload = client
        .load_dimacs(Some(&instance.name), &dimacs_text)
        .expect("warm load");
    legs.push(ServeBenchLeg {
        label: "LOAD warm (registry hit)".to_string(),
        round_trip_ms: started.elapsed().as_secs_f64() * 1e3,
        unique: 0,
    });
    assert!(reload.cached, "second load must hit the registry");

    let seed = 0xBEEF;
    let mut deterministic = true;
    for threads in [1usize, 8] {
        // In-process reference sequence for the same seed and thread count.
        let config = SamplerConfig {
            seed,
            backend: Backend::Threads(threads),
            ..SamplerConfig::default()
        };
        let mut reference = GdSampler::new(&instance.cnf, config).expect("reference sampler");
        let expected: Vec<Vec<bool>> = reference.stream().take(options.target).collect();

        let started = Instant::now();
        let reply = client
            .sample(&SampleParams {
                n: options.target,
                seed,
                threads: Some(threads),
                ..SampleParams::new(load.fingerprint)
            })
            .expect("warm sample");
        legs.push(ServeBenchLeg {
            label: format!("SAMPLE warm, {threads} thread(s)"),
            round_trip_ms: started.elapsed().as_secs_f64() * 1e3,
            unique: reply.solutions.len(),
        });
        deterministic &= reply.solutions == expected;
    }

    // A/B leg: the same formula served by a baseline engine over the wire,
    // checked bit-for-bit against the in-process adapter — the engine API's
    // acceptance gate.
    let walksat_n = options.target.min(16);
    let walksat = engine_by_name("walksat", &instance.cnf, &TransformConfig::default())
        .expect("walksat engine");
    let expected: Vec<Vec<bool>> = walksat
        .stream(&SessionConfig::with_seed(seed))
        .expect("walksat stream")
        .take(walksat_n)
        .collect();
    let started = Instant::now();
    let load = client
        .load_dimacs_engine(Some(&instance.name), "walksat", &dimacs_text)
        .expect("load walksat engine");
    let reply = client
        .sample(&SampleParams {
            n: walksat_n,
            seed,
            threads: Some(1),
            ..SampleParams::with_engine(load.fingerprint, "walksat")
        })
        .expect("walksat sample");
    legs.push(ServeBenchLeg {
        label: "LOAD+SAMPLE engine=walksat (A/B vs gd)".to_string(),
        round_trip_ms: started.elapsed().as_secs_f64() * 1e3,
        unique: reply.solutions.len(),
    });
    deterministic &= reply.solutions == expected;

    // Protocol v2 leg: upgrade the connection and run two chunked SAMPLEs
    // pipelined on it, draining their interleaved frames round-robin. Each
    // reassembled stream must stay bit-identical to its in-process
    // reference — the multiplexed framing is not allowed to cost
    // determinism (or much latency).
    client.hello().expect("protocol v2 negotiation");
    let pipelined_n = options.target.min(32);
    let references: Vec<Vec<Vec<bool>>> = (0..2u64)
        .map(|lane| {
            let config = SamplerConfig {
                seed: seed + 1 + lane,
                backend: Backend::Threads(1),
                ..SamplerConfig::default()
            };
            let mut reference =
                GdSampler::new(&instance.cnf, config).expect("pipelined reference sampler");
            reference.stream().take(pipelined_n).collect()
        })
        .collect();
    let started = Instant::now();
    let mut lanes: Vec<(u64, Vec<Vec<bool>>, bool)> = (0..2u64)
        .map(|lane| {
            let id = client
                .sample_start(&SampleParams {
                    n: pipelined_n,
                    seed: seed + 1 + lane,
                    threads: Some(1),
                    ..SampleParams::new(load.fingerprint)
                })
                .expect("start pipelined sample");
            (id, Vec::new(), false)
        })
        .collect();
    let mut open = lanes.len();
    while open > 0 {
        for (id, solutions, done) in &mut lanes {
            if *done {
                continue;
            }
            match client.sample_next(*id).expect("pipelined sample frame") {
                htsat_serve::SampleEvent::Batch(batch) => solutions.extend(batch),
                htsat_serve::SampleEvent::Done(_) => {
                    *done = true;
                    open -= 1;
                }
            }
        }
    }
    legs.push(ServeBenchLeg {
        label: "SAMPLE x2 pipelined (v2 chunked)".to_string(),
        round_trip_ms: started.elapsed().as_secs_f64() * 1e3,
        unique: lanes.iter().map(|(_, s, _)| s.len()).sum(),
    });
    for (lane, reference) in references.iter().enumerate() {
        deterministic &= &lanes[lane].1 == reference;
    }

    (instance.name, legs, deterministic, client)
}

/// Formats the Table II rows as a text table.
pub fn format_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:>6} {:>6} {:>8} {:>9} {:>14} {:>12} {:>12} {:>14} {:>9}\n",
        "instance",
        "PI",
        "PO",
        "vars",
        "clauses",
        "this-work",
        "unigen",
        "cmsgen",
        "diffsampler",
        "speedup"
    ));
    for row in rows {
        let t = |name: &str| {
            row.results
                .iter()
                .find(|r| r.sampler.contains(name))
                .map(|r| r.throughput)
                .unwrap_or(0.0)
        };
        out.push_str(&format!(
            "{:<20} {:>6} {:>6} {:>8} {:>9} {:>14.1} {:>12.1} {:>12.1} {:>14.1} {:>8.1}x\n",
            row.instance,
            row.primary_inputs,
            row.primary_outputs,
            row.vars,
            row.clauses,
            t("this-work"),
            t("unigen"),
            t("cmsgen"),
            t("diffsampler"),
            row.speedup
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_options() -> RunOptions {
        RunOptions {
            scale: SuiteScale::Small,
            target: 20,
            timeout: Duration::from_millis(500),
            batch_size: 64,
            threads: None,
            stream: false,
            kernel: KernelChoice::default(),
        }
    }

    #[test]
    fn flat_and_reference_kernel_options_find_identical_unique_counts() {
        let instance = htsat_instances::suite::table2_instance("90-10-10-q", SuiteScale::Small)
            .expect("exists");
        // A tight target both kernels reach within their first round, so
        // the wall-clock timeout never truncates either run and the unique
        // counts (target + the final round's deterministic surplus) must
        // match exactly — the kernels are bit-identical.
        let flat = RunOptions {
            target: 5,
            ..quick_options()
        };
        let reference = RunOptions {
            kernel: KernelChoice::Reference,
            ..flat
        };
        let a = run_gd(&instance, &flat, flat.gd_backend());
        let b = run_gd(&instance, &reference, reference.gd_backend());
        assert!(a.unique >= 5);
        assert_eq!(a.unique, b.unique);
    }

    #[test]
    fn table2_row_produces_all_samplers() {
        let instance = htsat_instances::suite::table2_instance("90-10-10-q", SuiteScale::Small)
            .expect("exists");
        let row = table2_row(&instance, &quick_options());
        assert_eq!(row.results.len(), 4);
        assert_eq!(row.results[0].sampler, "this-work");
        assert!(row.vars > 0 && row.clauses > 0);
    }

    #[test]
    fn ablation_instances_resolve() {
        assert_eq!(ablation_instances(SuiteScale::Small).len(), 4);
    }

    #[test]
    fn gd_backend_reflects_thread_option() {
        let mut options = quick_options();
        assert_eq!(options.gd_backend(), Backend::default());
        options.threads = Some(2);
        assert_eq!(options.gd_backend(), Backend::Threads(2));
    }

    #[test]
    fn streaming_and_blocking_paths_find_solutions() {
        let instance = htsat_instances::suite::table2_instance("90-10-10-q", SuiteScale::Small)
            .expect("exists");
        let blocking = quick_options();
        let streaming = RunOptions {
            stream: true,
            ..blocking
        };
        let a = run_gd(&instance, &blocking, blocking.gd_backend());
        let b = run_gd(&instance, &streaming, streaming.gd_backend());
        assert!(a.unique > 0);
        assert!(b.unique > 0);
    }

    #[test]
    fn threads_sweep_produces_a_point_per_instance_and_count() {
        let points = threads_sweep(&quick_options(), &[1, 2]);
        assert_eq!(points.len(), 4 * 2);
        assert!(points.iter().all(|p| p.threads == 1 || p.threads == 2));
    }

    #[test]
    fn fig3_memory_is_monotone_in_batch() {
        let points = fig3_memory(&quick_options(), &[100, 1_000, 10_000]);
        for chunk in points.chunks(3) {
            assert!(chunk[0].memory_mib < chunk[1].memory_mib);
            assert!(chunk[1].memory_mib < chunk[2].memory_mib);
        }
    }

    #[test]
    fn fig3_iterations_produces_points_for_each_instance() {
        let points = fig3_iterations(&quick_options(), 2);
        assert_eq!(points.len(), 4 * 2);
    }

    #[test]
    fn format_table2_contains_instance_names() {
        let instance =
            htsat_instances::suite::table2_instance("or-50-10-7-UC-10", SuiteScale::Small)
                .expect("exists");
        let rows = vec![table2_row(&instance, &quick_options())];
        let text = format_table2(&rows);
        assert!(text.contains("or-50-10-7-UC-10"));
        assert!(text.contains("speedup"));
    }
}
