//! The [`Executor`] contract and its single-threaded reference
//! implementation.

use std::ops::Range;

/// An execution strategy for embarrassingly parallel, index-addressed work.
///
/// The methods cover the workspace's needs: [`Executor::reduce_rows_with`]
/// is the shape of a batched kernel with per-worker scratch state (each
/// batch row mutated independently, one scalar reduced across the batch,
/// one workspace per worker per parallel region), [`Executor::reduce_rows`]
/// is its stateless convenience wrapper, and [`Executor::map_indices`] is
/// the shape of a batched collection (one value per index, order preserved).
///
/// Implementations must be *order-transparent*: `map_indices` returns results
/// in index order and `reduce_rows`/`reduce_rows_with` visit every row
/// exactly once, so for a pure `f` every executor produces the same output.
/// The workspace handed to `f` must therefore never leak information between
/// rows — kernels must fully overwrite whatever scratch they read. The
/// floating-point sum returned by the reductions is accumulated per chunk
/// and then in chunk order, so it is deterministic for a fixed executor but
/// may differ in the last bits between executors with different chunking.
pub trait Executor {
    /// Number of worker threads this executor uses (1 for sequential).
    fn threads(&self) -> usize;

    /// Runs `f(row_index, row, workspace)` over every `width`-sized row of
    /// `rows`, mutating rows in place, and returns the sum of the per-row
    /// results.
    ///
    /// `init` builds one workspace **per worker thread per parallel
    /// region** — not per row. This is the executor entry point for
    /// allocation-free kernels: a worker claims rows until the region
    /// drains, reusing the same workspace for every row it visits.
    ///
    /// Returns `0.0` when `width == 0` (no rows, no workspaces).
    fn reduce_rows_with<W, I, F>(&self, rows: &mut [f32], width: usize, init: I, f: F) -> f64
    where
        W: Send,
        I: Fn() -> W + Send + Sync,
        F: Fn(usize, &mut [f32], &mut W) -> f64 + Send + Sync;

    /// Runs `f(row_index, row)` over every `width`-sized row of `rows`,
    /// mutating rows in place, and returns the sum of the per-row results.
    ///
    /// Returns `0.0` when `width == 0`.
    fn reduce_rows<F>(&self, rows: &mut [f32], width: usize, f: F) -> f64
    where
        F: Fn(usize, &mut [f32]) -> f64 + Send + Sync,
    {
        self.reduce_rows_with(rows, width, || (), |i, row, (): &mut ()| f(i, row))
    }

    /// Maps `f` over `0..n` and collects the results in index order.
    fn map_indices<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Send + Sync;
}

/// Runs everything inline on the calling thread.
///
/// This is both the `threads == 1` short-circuit of [`crate::ThreadPool`]
/// and the reference implementation the pool is tested against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SequentialExecutor;

impl Executor for SequentialExecutor {
    fn threads(&self) -> usize {
        1
    }

    fn reduce_rows_with<W, I, F>(&self, rows: &mut [f32], width: usize, init: I, f: F) -> f64
    where
        W: Send,
        I: Fn() -> W + Send + Sync,
        F: Fn(usize, &mut [f32], &mut W) -> f64 + Send + Sync,
    {
        if width == 0 {
            return 0.0;
        }
        let mut workspace = init();
        rows.chunks_mut(width)
            .enumerate()
            .map(|(i, row)| f(i, row, &mut workspace))
            .sum()
    }

    fn map_indices<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Send + Sync,
    {
        (0..n).map(f).collect()
    }
}

/// Splits `0..n` into `chunks` contiguous ranges whose lengths differ by at
/// most one (the first `n % chunks` ranges are the longer ones).
///
/// Returns fewer than `chunks` ranges when `n < chunks`, and an empty vector
/// when `n == 0`.
#[must_use]
pub(crate) fn chunk_ranges(n: usize, chunks: usize) -> Vec<Range<usize>> {
    if n == 0 || chunks == 0 {
        return Vec::new();
    }
    let chunks = chunks.min(n);
    let base = n / chunks;
    let extra = n % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let len = base + usize::from(i < extra);
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_everything_once() {
        for n in [0usize, 1, 2, 7, 64, 1000] {
            for chunks in [1usize, 2, 3, 8, 33] {
                let ranges = chunk_ranges(n, chunks);
                let mut covered = vec![false; n];
                for r in &ranges {
                    for i in r.clone() {
                        assert!(!covered[i], "index {i} covered twice");
                        covered[i] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "n={n} chunks={chunks}");
                if n > 0 {
                    assert_eq!(ranges.len(), chunks.min(n));
                    let lens: Vec<usize> = ranges.iter().map(Range::len).collect();
                    let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                    assert!(max - min <= 1, "unbalanced: {lens:?}");
                }
            }
        }
    }

    #[test]
    fn sequential_reduce_rows_sums_and_mutates() {
        let width = 3;
        let mut rows = vec![1.0f32; 4 * width];
        let total = SequentialExecutor.reduce_rows(&mut rows, width, |i, row| {
            row[0] = i as f32;
            f64::from(row.iter().sum::<f32>())
        });
        assert_eq!(rows[width], 1.0);
        assert!((total - (0.0 + 1.0 + 2.0 + 3.0 + 4.0 * 2.0)).abs() < 1e-9);
    }

    #[test]
    fn sequential_map_indices_preserves_order() {
        assert_eq!(
            SequentialExecutor.map_indices(4, |i| i * 10),
            vec![0, 10, 20, 30]
        );
    }

    #[test]
    fn zero_width_reduce_is_zero() {
        assert_eq!(SequentialExecutor.reduce_rows(&mut [], 0, |_, _| 1.0), 0.0);
    }

    #[test]
    fn sequential_reduce_rows_with_builds_one_workspace_for_the_region() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let width = 2;
        let mut rows = vec![1.0f32; 8 * width];
        let total = SequentialExecutor.reduce_rows_with(
            &mut rows,
            width,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                vec![0.0f32; 4]
            },
            |i, row, ws: &mut Vec<f32>| {
                ws[0] = i as f32;
                row[0] += ws[0];
                1.0
            },
        );
        assert_eq!(inits.load(Ordering::Relaxed), 1);
        assert!((total - 8.0).abs() < 1e-12);
        assert_eq!(rows[3 * width], 1.0 + 3.0);
    }

    #[test]
    fn zero_width_reduce_with_never_builds_a_workspace() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inits = AtomicUsize::new(0);
        let total = SequentialExecutor.reduce_rows_with(
            &mut [],
            0,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
            },
            |_, _, ()| 1.0,
        );
        assert_eq!(total, 0.0);
        assert_eq!(inits.load(Ordering::Relaxed), 0);
    }
}
