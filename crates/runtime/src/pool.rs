//! A scoped `std::thread` worker pool with counter-based chunk stealing.

use crate::executor::{chunk_ranges, Executor, SequentialExecutor};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// How many chunks each worker thread gets on average.
///
/// Oversubscribing the chunk queue (rather than cutting exactly one chunk
/// per worker) is what makes the pool load-balance: a worker that drew a
/// cheap chunk goes back to the queue and claims another while a slow chunk
/// is still running elsewhere.
const CHUNKS_PER_THREAD: usize = 4;

/// A work-stealing thread pool over `std::thread::scope`.
///
/// Work is described as `n` independent tasks, split into a queue of
/// contiguous chunks (about four per worker). The scoped
/// workers claim chunks through one shared [`AtomicUsize`] cursor — the
/// dependency-free equivalent of popping a chunked deque — until the queue
/// is drained, then the scope joins them. Because workers are spawned inside
/// `thread::scope`, the submitted closures may borrow the caller's stack
/// (no `'static` bound and no `unsafe` required); the cost is one thread
/// spawn per worker per parallel region. That overhead is negligible for
/// large batches but measurable for small ones — a persistent pool with
/// parked workers is the known upgrade path if profiling shows the spawns
/// on the hot path.
///
/// A pool with one thread (or one-element workloads) short-circuits to the
/// calling thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Creates a pool with `threads` workers; `0` means one worker per
    /// available hardware thread (`std::thread::available_parallelism`).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            threads
        };
        ThreadPool { threads }
    }

    /// A pool sized to the available hardware parallelism.
    #[must_use]
    pub fn auto() -> Self {
        ThreadPool::new(0)
    }

    /// Runs `work(chunk_id, worker_state)` for every chunk id in
    /// `0..num_chunks` across the worker threads and returns the results in
    /// chunk-id order. `init` builds one state value per worker (once per
    /// call), which the worker reuses for every chunk it claims.
    ///
    /// This is the pool's one scheduling primitive; both [`Executor`]
    /// methods are built on it.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any worker.
    fn dispatch_with<W, T, I, F>(&self, num_chunks: usize, init: I, work: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> W + Send + Sync,
        F: Fn(usize, &mut W) -> T + Send + Sync,
    {
        if self.threads <= 1 || num_chunks <= 1 {
            let mut state = init();
            return (0..num_chunks)
                .map(|chunk| work(chunk, &mut state))
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let workers = self.threads.min(num_chunks);
        let (cursor, init, work) = (&cursor, &init, &work);
        let per_worker: Vec<Vec<(usize, T)>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut state = init();
                        let mut claimed = Vec::new();
                        loop {
                            let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                            if chunk >= num_chunks {
                                break;
                            }
                            claimed.push((chunk, work(chunk, &mut state)));
                        }
                        claimed
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("htsat-runtime worker panicked"))
                .collect()
        });
        // Re-assemble in chunk order so results are deterministic regardless
        // of claim order.
        let mut out: Vec<Option<T>> = (0..num_chunks).map(|_| None).collect();
        for (chunk, value) in per_worker.into_iter().flatten() {
            out[chunk] = Some(value);
        }
        out.into_iter()
            .map(|slot| slot.expect("every chunk claimed exactly once"))
            .collect()
    }

    /// Stateless convenience over [`ThreadPool::dispatch_with`].
    fn dispatch<T, F>(&self, num_chunks: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Send + Sync,
    {
        self.dispatch_with(num_chunks, || (), |chunk, ()| work(chunk))
    }

    fn chunk_count(&self, n: usize) -> usize {
        n.min(self.threads * CHUNKS_PER_THREAD)
    }
}

/// A claimed row chunk: the index of its first row plus the rows themselves.
type RowChunk<'a> = (usize, &'a mut [f32]);

impl Executor for ThreadPool {
    fn threads(&self) -> usize {
        self.threads
    }

    fn reduce_rows_with<W, I, F>(&self, rows: &mut [f32], width: usize, init: I, f: F) -> f64
    where
        W: Send,
        I: Fn() -> W + Send + Sync,
        F: Fn(usize, &mut [f32], &mut W) -> f64 + Send + Sync,
    {
        if width == 0 {
            return 0.0;
        }
        // Count a trailing partial row as a row, matching `chunks_mut` (and
        // therefore `SequentialExecutor` and the rayon path) exactly.
        let num_rows = rows.len().div_ceil(width);
        // One parallel region per call (the guard spans the short-circuit
        // path too, so region counts are thread-count independent).
        let _region = htsat_obs::span!("runtime.region");
        htsat_obs::counter!("runtime.regions").inc();
        htsat_obs::counter!("runtime.rows").add(num_rows as u64);
        let ranges = chunk_ranges(num_rows, self.chunk_count(num_rows));
        if self.threads <= 1 || ranges.len() <= 1 {
            // Calling-thread short-circuit: exactly the sequential contract.
            return SequentialExecutor.reduce_rows_with(rows, width, init, f);
        }
        // Pre-split the buffer along chunk boundaries. Each slot is locked
        // exactly once — by the worker that claims the chunk id — so the
        // mutexes carry the disjoint `&mut` borrows across threads without
        // contention or unsafe aliasing.
        let mut slots: Vec<Mutex<Option<RowChunk<'_>>>> = Vec::with_capacity(ranges.len());
        let mut rest = rows;
        for range in &ranges {
            let take = (range.len() * width).min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            slots.push(Mutex::new(Some((range.start, head))));
            rest = tail;
        }
        // Each worker builds its workspace once per parallel region
        // (dispatch_with's per-worker state) and reuses it for every chunk
        // it claims; the chunk-ordered result vector keeps the final
        // floating-point accumulation deterministic.
        let partials = self.dispatch_with(slots.len(), &init, |chunk, workspace: &mut W| {
            let (first_row, chunk_rows) = slots[chunk]
                .lock()
                .expect("chunk slot poisoned")
                .take()
                .expect("chunk claimed exactly once");
            chunk_rows
                .chunks_mut(width)
                .enumerate()
                .map(|(offset, row)| f(first_row + offset, row, workspace))
                .sum::<f64>()
        });
        partials.into_iter().sum()
    }

    fn map_indices<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Send + Sync,
    {
        let _region = htsat_obs::span!("runtime.region");
        htsat_obs::counter!("runtime.regions").inc();
        htsat_obs::counter!("runtime.rows").add(n as u64);
        let ranges = chunk_ranges(n, self.chunk_count(n));
        let ranges = &ranges;
        let chunks = self.dispatch(ranges.len(), |chunk| {
            ranges[chunk].clone().map(&f).collect::<Vec<T>>()
        });
        chunks.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::SequentialExecutor;

    #[test]
    fn zero_threads_means_available_parallelism() {
        assert!(ThreadPool::new(0).threads() >= 1);
        assert_eq!(ThreadPool::auto(), ThreadPool::new(0));
    }

    #[test]
    fn map_indices_matches_sequential_at_every_thread_count() {
        for threads in [1usize, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            for n in [0usize, 1, 5, 257] {
                assert_eq!(
                    pool.map_indices(n, |i| i * 3 + 1),
                    SequentialExecutor.map_indices(n, |i| i * 3 + 1),
                    "threads={threads} n={n}"
                );
            }
        }
    }

    #[test]
    fn reduce_rows_matches_sequential_at_every_thread_count() {
        let width = 5;
        let rows = 33;
        let kernel = |i: usize, row: &mut [f32]| {
            row[0] += i as f32;
            row.iter().map(|&v| f64::from(v)).sum::<f64>()
        };
        let mut reference = vec![1.0f32; rows * width];
        let expected = SequentialExecutor.reduce_rows(&mut reference, width, kernel);
        for threads in [1usize, 2, 4, 8] {
            let mut data = vec![1.0f32; rows * width];
            let total = ThreadPool::new(threads).reduce_rows(&mut data, width, kernel);
            assert_eq!(data, reference, "threads={threads}");
            assert!((total - expected).abs() < 1e-9, "threads={threads}");
        }
    }

    #[test]
    fn reduce_rows_with_zero_width_is_zero() {
        assert_eq!(ThreadPool::new(4).reduce_rows(&mut [], 0, |_, _| 1.0), 0.0);
    }

    #[test]
    fn more_threads_than_work_is_fine() {
        let pool = ThreadPool::new(16);
        assert_eq!(pool.map_indices(3, |i| i), vec![0, 1, 2]);
        let mut one = vec![2.0f32];
        assert!((pool.reduce_rows(&mut one, 1, |_, r| f64::from(r[0])) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn trailing_partial_row_is_visited_like_sequential() {
        // 10 floats at width 4 = two full rows + one 2-element remainder;
        // `chunks_mut` semantics say the remainder is row 2.
        let kernel = |i: usize, row: &mut [f32]| {
            row[0] += i as f32;
            row.len() as f64
        };
        let mut reference = vec![1.0f32; 10];
        let expected = SequentialExecutor.reduce_rows(&mut reference, 4, kernel);
        assert!((expected - 10.0).abs() < 1e-12);
        for threads in [2usize, 8] {
            let mut data = vec![1.0f32; 10];
            let total = ThreadPool::new(threads).reduce_rows(&mut data, 4, kernel);
            assert_eq!(data, reference, "threads={threads}");
            assert!((total - expected).abs() < 1e-12, "threads={threads}");
        }
    }

    #[test]
    fn reduce_rows_with_matches_sequential_at_every_thread_count() {
        let width = 3;
        let rows = 41;
        let kernel = |i: usize, row: &mut [f32], scratch: &mut Vec<f32>| {
            scratch.resize(width, 0.0);
            scratch[0] = i as f32;
            row[0] += scratch[0];
            row.iter().map(|&v| f64::from(v)).sum::<f64>()
        };
        let mut reference = vec![1.0f32; rows * width];
        let expected = SequentialExecutor.reduce_rows_with(&mut reference, width, Vec::new, kernel);
        for threads in [1usize, 2, 4, 8] {
            let mut data = vec![1.0f32; rows * width];
            let total =
                ThreadPool::new(threads).reduce_rows_with(&mut data, width, Vec::new, kernel);
            assert_eq!(data, reference, "threads={threads}");
            assert!((total - expected).abs() < 1e-9, "threads={threads}");
        }
    }

    #[test]
    fn workspaces_are_built_per_worker_not_per_row() {
        use std::sync::atomic::AtomicUsize;
        let width = 2;
        let rows = 64;
        for threads in [1usize, 2, 4] {
            let inits = AtomicUsize::new(0);
            let mut data = vec![0.0f32; rows * width];
            let visits = ThreadPool::new(threads).reduce_rows_with(
                &mut data,
                width,
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                },
                |_, row, ()| {
                    row[0] += 1.0;
                    1.0
                },
            );
            assert!((visits - rows as f64).abs() < 1e-12);
            let built = inits.load(Ordering::Relaxed);
            assert!(
                (1..=threads).contains(&built),
                "threads={threads} built {built} workspaces for {rows} rows"
            );
        }
    }

    #[test]
    fn uneven_chunks_still_cover_all_rows() {
        // 7 rows, 2 threads -> uneven chunk queue; every row must be visited
        // exactly once.
        let width = 2;
        let mut data = vec![0.0f32; 7 * width];
        let visits = ThreadPool::new(2).reduce_rows(&mut data, width, |_, row| {
            row[0] += 1.0;
            1.0
        });
        assert!((visits - 7.0).abs() < 1e-12);
        for row in data.chunks(width) {
            assert_eq!(row[0], 1.0);
        }
    }
}
