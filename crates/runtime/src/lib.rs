//! # htsat-runtime
//!
//! The execution runtime of the htsat workspace: a dependency-free
//! `std::thread` scoped thread pool behind an [`Executor`] trait, plus the
//! generic **streaming sampling service** ([`SampleStream`]) built on top of
//! it.
//!
//! The paper's headline result is that sampling is *data-parallel*: every
//! batch element is an independent gradient-descent problem. The vendored
//! rayon stub executes sequentially (no crates.io access), so this crate
//! supplies the real parallelism:
//!
//! * [`Executor`] — the abstraction the tensor backend dispatches through:
//!   run a row-wise kernel over a mutable batch buffer, or map a function
//!   over indices, partitioned into chunks.
//! * [`ThreadPool`] — a scoped worker pool. Work is split into a queue of
//!   contiguous chunks and the workers *claim* chunks through a shared atomic
//!   cursor, so a slow chunk never stalls the others (counter-based work
//!   stealing, no external dependencies, no `unsafe`).
//! * [`SequentialExecutor`] — the same contract on the calling thread, used
//!   as the single-threaded short-circuit and as the reference in tests.
//! * [`StopToken`] — a cloneable cancellation flag shared across threads,
//!   with [`StopSet`] grouping many tokens under one scope (a connection, a
//!   server) so they can all be fired at once.
//! * [`RoundSource`] / [`SampleStream`] — the streaming service: any
//!   generator that produces batches ("rounds") of items becomes an
//!   `Iterator` with incremental deduplication, deadline handling,
//!   cancellation and progress statistics.
//! * [`Stopwatch`] / [`measure`] — monotonic timing helpers for measurement
//!   code (the bench harness's warmup/timed phase separation is built on
//!   them). Re-exported from `htsat-obs` so bench timing and the `span!`
//!   telemetry share one substrate.
//!
//! The pool and the stream are instrumented through `htsat-obs`
//! (`runtime.*` region counters/histograms, `engine.*` stream totals).
//! Metrics are observer-only — relaxed atomics recorded per region and per
//! stream, never per row — so instrumented runs stay bit-identical.
//!
//! Determinism is a design constraint, not an accident: the executor
//! preserves index order in [`Executor::map_indices`], and
//! [`derive_stream_seed`] gives callers per-row RNG streams so results are
//! identical for a given seed at *any* thread count.
//!
//! # Example
//!
//! ```
//! use htsat_runtime::{Executor, SequentialExecutor, ThreadPool};
//!
//! let pool = ThreadPool::new(4);
//! let squares = pool.map_indices(100, |i| i * i);
//! assert_eq!(squares, SequentialExecutor.map_indices(100, |i| i * i));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod executor;
mod pool;
mod stop;
mod stream;
mod timing;

pub use executor::{Executor, SequentialExecutor};
pub use pool::ThreadPool;
pub use stop::{StopSet, StopToken};
pub use stream::{unique_throughput, RoundSource, SampleStream, StreamStats, MIN_MEASURABLE_TICK};
pub use timing::{measure, Stopwatch};

/// Mixes a base seed and a stream index into an independent RNG seed.
///
/// This is the SplitMix64 finalizer: statistically independent outputs for
/// adjacent indices, so every batch row can own a private RNG stream derived
/// from one master seed. Sampling code seeds row `i` of a round with
/// `derive_stream_seed(round_seed, i)`, which makes the produced samples a
/// function of `(seed, row)` alone — independent of which thread runs the
/// row, and therefore of the thread count.
#[must_use]
pub fn derive_stream_seed(base: u64, index: usize) -> u64 {
    let mut z = base ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_seeds_differ_per_index() {
        let seeds: Vec<u64> = (0..64).map(|i| derive_stream_seed(42, i)).collect();
        let unique: std::collections::HashSet<&u64> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn stream_seeds_are_deterministic() {
        assert_eq!(derive_stream_seed(7, 3), derive_stream_seed(7, 3));
        assert_ne!(derive_stream_seed(7, 3), derive_stream_seed(8, 3));
    }
}
