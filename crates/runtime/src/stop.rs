//! Cooperative cancellation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cloneable cancellation flag.
///
/// All clones share one `AtomicBool`: setting any clone stops every holder.
/// The token is the cancellation and deadline channel of
/// [`crate::SampleStream`] — the stream checks it between items, and
/// long-running round producers are handed a reference so they can bail out
/// mid-round.
///
/// ```
/// use htsat_runtime::StopToken;
///
/// let token = StopToken::new();
/// let shared = token.clone();
/// assert!(!shared.is_stopped());
/// token.stop();
/// assert!(shared.is_stopped());
/// ```
#[derive(Debug, Clone, Default)]
pub struct StopToken {
    flag: Arc<AtomicBool>,
}

impl StopToken {
    /// Creates a token in the running (not stopped) state.
    #[must_use]
    pub fn new() -> Self {
        StopToken::default()
    }

    /// Signals cancellation to every clone of this token.
    pub fn stop(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been signalled.
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_is_visible_through_clones_and_threads() {
        let token = StopToken::new();
        let clone = token.clone();
        let handle = std::thread::spawn(move || {
            clone.stop();
        });
        handle.join().expect("thread");
        assert!(token.is_stopped());
    }

    #[test]
    fn independent_tokens_do_not_interfere() {
        let a = StopToken::new();
        let b = StopToken::new();
        a.stop();
        assert!(!b.is_stopped());
    }
}
