//! Cooperative cancellation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// A cloneable cancellation flag.
///
/// All clones share one `AtomicBool`: setting any clone stops every holder.
/// The token is the cancellation and deadline channel of
/// [`crate::SampleStream`] — the stream checks it between items, and
/// long-running round producers are handed a reference so they can bail out
/// mid-round.
///
/// `StopToken` implements [`Default`] (a fresh token in the running state,
/// identical to [`StopToken::new`]), so token-carrying configuration structs
/// can `#[derive(Default)]`.
///
/// ```
/// use htsat_runtime::StopToken;
///
/// let token = StopToken::new();
/// let shared = token.clone();
/// assert!(!shared.is_stopped());
/// token.stop();
/// assert!(shared.is_stopped());
/// ```
#[derive(Debug, Clone, Default)]
pub struct StopToken {
    flag: Arc<AtomicBool>,
}

impl StopToken {
    /// Creates a token in the running (not stopped) state.
    #[must_use]
    pub fn new() -> Self {
        StopToken::default()
    }

    /// Signals cancellation to every clone of this token.
    pub fn stop(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been signalled.
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A registry of [`StopToken`]s that can all be fired at once.
///
/// This is the *scoped* cancellation primitive a serving layer needs: every
/// in-flight request registers its stream's token with the scope that owns
/// it (a connection, or the whole server), and tearing the scope down stops
/// every registered token with one call — without the scope having to track
/// request lifetimes individually.
///
/// Tokens whose work has finished are pruned lazily on the next
/// [`StopSet::issue`], so a long-lived set does not grow with the number of
/// requests ever served, only with the number concurrently in flight.
///
/// ```
/// use htsat_runtime::StopSet;
///
/// let set = StopSet::new();
/// let a = set.issue();
/// let b = set.issue();
/// set.stop_all();
/// assert!(a.is_stopped() && b.is_stopped());
/// // Tokens issued after the sweep start fresh.
/// assert!(!set.issue().is_stopped());
/// ```
#[derive(Debug, Default)]
pub struct StopSet {
    tokens: Mutex<Vec<StopToken>>,
}

impl StopSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        StopSet::default()
    }

    /// Issues a fresh token tracked by this set.
    ///
    /// Already-stopped tokens (from finished or cancelled work) are pruned
    /// from the set on the way.
    #[must_use]
    pub fn issue(&self) -> StopToken {
        let token = StopToken::new();
        let mut tokens = self.tokens.lock().expect("stop set poisoned");
        tokens.retain(|t| !t.is_stopped());
        tokens.push(token.clone());
        token
    }

    /// Stops every token issued so far and clears the set.
    ///
    /// Tokens issued afterwards start in the running state again; callers
    /// that want "stopped forever" semantics should additionally keep their
    /// own master [`StopToken`].
    pub fn stop_all(&self) {
        let mut tokens = self.tokens.lock().expect("stop set poisoned");
        for token in tokens.drain(..) {
            token.stop();
        }
    }

    /// Number of live (issued and not yet stopped) tokens — the in-flight
    /// count a status report wants. Already-stopped tokens awaiting lazy
    /// pruning are not counted.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tokens
            .lock()
            .expect("stop set poisoned")
            .iter()
            .filter(|t| !t.is_stopped())
            .count()
    }

    /// Whether the set currently tracks no live tokens.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_is_visible_through_clones_and_threads() {
        let token = StopToken::new();
        let clone = token.clone();
        let handle = std::thread::spawn(move || {
            clone.stop();
        });
        handle.join().expect("thread");
        assert!(token.is_stopped());
    }

    #[test]
    fn independent_tokens_do_not_interfere() {
        let a = StopToken::new();
        let b = StopToken::new();
        a.stop();
        assert!(!b.is_stopped());
    }

    #[test]
    fn default_token_is_running() {
        assert!(!StopToken::default().is_stopped());
    }

    #[test]
    fn stop_set_fires_every_issued_token() {
        let set = StopSet::new();
        let tokens: Vec<StopToken> = (0..4).map(|_| set.issue()).collect();
        assert_eq!(set.len(), 4);
        set.stop_all();
        assert!(tokens.iter().all(StopToken::is_stopped));
        assert!(set.is_empty());
    }

    #[test]
    fn stop_set_prunes_finished_tokens_on_issue() {
        let set = StopSet::new();
        let finished = set.issue();
        finished.stop(); // the request completed (or was cancelled) on its own
        let live = set.issue();
        // The finished token was swept out; only the live one is tracked.
        assert_eq!(set.len(), 1);
        assert!(!live.is_stopped());
    }

    #[test]
    fn tokens_issued_after_stop_all_start_fresh() {
        let set = StopSet::new();
        let _old = set.issue();
        set.stop_all();
        assert!(!set.issue().is_stopped());
    }
}
