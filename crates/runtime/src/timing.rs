//! Timing helpers for measurement code.
//!
//! Since the observability PR these are re-exports of the `htsat-obs`
//! primitives: the span API and the bench harness share **one** timing
//! substrate ([`Stopwatch`]), and the public
//! `htsat_runtime::{Stopwatch, measure}` paths the harness was built on
//! keep working unchanged.

pub use htsat_obs::{measure, Stopwatch};
