//! The streaming sampling service: turn a round-based producer into a
//! deduplicated, cancellable iterator of unique items.

use crate::StopToken;
use std::collections::{HashSet, VecDeque};
use std::hash::Hash;
use std::time::{Duration, Instant};

/// A producer of sampling rounds.
///
/// One `round` call produces a batch of candidate items (for the SAT
/// samplers: valid, not-yet-deduplicated satisfying assignments).
/// [`SampleStream`] drives rounds lazily and handles deduplication,
/// deadlines and cancellation on top.
pub trait RoundSource {
    /// The item type produced by a round.
    type Item: Clone + Eq + Hash;

    /// Produces the next batch of candidate items.
    ///
    /// Implementations should poll `stop` at natural cut points (per
    /// gradient-descent iteration, per row) and return early — possibly with
    /// a partial batch — once it is set.
    fn round(&mut self, stop: &StopToken) -> Vec<Self::Item>;

    /// Number of candidates attempted per round, used for statistics.
    /// `0` when unknown. The stream calls this right after each
    /// [`RoundSource::round`], so variable-size sources may report the
    /// most recent round's actual attempt count.
    fn round_size(&self) -> usize {
        0
    }

    /// Hands the source's memory of previously emitted items to the stream.
    ///
    /// Sources that deduplicate across API calls (e.g. a sampler whose
    /// repeated `sample` calls must never repeat a solution) return their
    /// seen-set here; the stream extends it and returns it through
    /// [`RoundSource::restore_seen`] when dropped. The default is an empty
    /// set (no cross-stream memory).
    fn take_seen(&mut self) -> HashSet<Self::Item> {
        HashSet::new()
    }

    /// Receives the seen-set back when the stream is dropped.
    fn restore_seen(&mut self, _seen: HashSet<Self::Item>) {}
}

impl<S: RoundSource> RoundSource for &mut S {
    type Item = S::Item;

    fn round(&mut self, stop: &StopToken) -> Vec<Self::Item> {
        (**self).round(stop)
    }

    fn round_size(&self) -> usize {
        (**self).round_size()
    }

    fn take_seen(&mut self) -> HashSet<Self::Item> {
        (**self).take_seen()
    }

    fn restore_seen(&mut self, seen: HashSet<Self::Item>) {
        (**self).restore_seen(seen);
    }
}

/// Boxed sources are sources too — this is what lets heterogeneous engines
/// (`Box<dyn RoundSource<Item = …>>` sessions) drive one [`SampleStream`].
impl<S: RoundSource + ?Sized> RoundSource for Box<S> {
    type Item = S::Item;

    fn round(&mut self, stop: &StopToken) -> Vec<Self::Item> {
        (**self).round(stop)
    }

    fn round_size(&self) -> usize {
        (**self).round_size()
    }

    fn take_seen(&mut self) -> HashSet<Self::Item> {
        (**self).take_seen()
    }

    fn restore_seen(&mut self, seen: HashSet<Self::Item>) {
        (**self).restore_seen(seen);
    }
}

/// The smallest elapsed time [`unique_throughput`] divides by: one
/// microsecond, the resolution the repro tables report at.
pub const MIN_MEASURABLE_TICK: Duration = Duration::from_micros(1);

/// Unique-item throughput in items per second, with the denominator clamped
/// to [`MIN_MEASURABLE_TICK`].
///
/// This is the **one** throughput definition every reporting layer shares
/// (`SampleReport` in `htsat-core`, `SampleRun` in `htsat-baselines`, the
/// bench tables): a run that completes faster than the clock can resolve
/// yields the finite upper bound `count / 1µs` instead of silently returning
/// the raw item *count* (which a table would then print as a rate).
#[must_use]
pub fn unique_throughput(count: usize, elapsed: Duration) -> f64 {
    count as f64 / elapsed.max(MIN_MEASURABLE_TICK).as_secs_f64()
}

/// Progress counters of a [`SampleStream`].
///
/// The struct is `Copy` and exposes its counters both as plain fields and
/// through [`StreamStats::fields`] — a stable name/value listing that
/// reporting layers (status endpoints, wire protocols, log lines) can
/// serialize without this crate depending on any serialization framework.
/// Accumulate per-request stats into a long-lived total with
/// [`StreamStats::merge`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Rounds executed so far.
    pub rounds: usize,
    /// Candidates attempted (`rounds × round_size`).
    pub attempts: usize,
    /// Valid candidates produced by the source (before deduplication).
    pub valid: usize,
    /// Unique items yielded to the consumer.
    pub yielded: usize,
    /// Valid candidates dropped as duplicates.
    pub duplicates: usize,
}

impl StreamStats {
    /// Adds every counter of `other` into `self`.
    ///
    /// A serving layer calls this once per finished request to keep a
    /// cumulative per-formula (or per-server) total.
    pub fn merge(&mut self, other: &StreamStats) {
        self.rounds += other.rounds;
        self.attempts += other.attempts;
        self.valid += other.valid;
        self.yielded += other.yielded;
        self.duplicates += other.duplicates;
    }

    /// The counters as `(name, value)` pairs, in declaration order.
    ///
    /// The names are stable and lowercase (`rounds`, `attempts`, `valid`,
    /// `yielded`, `duplicates`) — suitable as serialization keys.
    #[must_use]
    pub fn fields(&self) -> [(&'static str, usize); 5] {
        [
            ("rounds", self.rounds),
            ("attempts", self.attempts),
            ("valid", self.valid),
            ("yielded", self.yielded),
            ("duplicates", self.duplicates),
        ]
    }
}

impl std::fmt::Display for StreamStats {
    /// Formats the counters as `key=value` pairs separated by spaces — the
    /// log-line form.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (name, value) in self.fields() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{name}={value}")?;
            first = false;
        }
        Ok(())
    }
}

/// A lazy, deduplicated, cancellable stream of unique items.
///
/// `SampleStream` is an `Iterator`: each `next` first drains items already
/// discovered, then — while the stop token is clear, the deadline (if any)
/// has not passed, and the source still makes progress — runs further rounds
/// on demand. Items are deduplicated incrementally against a seen-set, and
/// because rounds return items in a deterministic order, the *stream order*
/// is deterministic too for a deterministic source.
///
/// Termination:
///
/// * **Cancellation** — once the [`StopToken`] is set the stream returns
///   `None` immediately, even if undelivered items are pending (use
///   [`SampleStream::drain_ready`] to recover them).
/// * **Deadline** — after the deadline no further rounds run, but pending
///   items are still delivered.
/// * **Exhaustion** — [`SampleStream::with_stale_limit`] consecutive rounds
///   without a new unique item mark the stream exhausted (sources over a
///   finite solution space would otherwise spin forever re-discovering known
///   items).
pub struct SampleStream<S: RoundSource> {
    source: S,
    stop: StopToken,
    deadline: Option<Instant>,
    stale_limit: u32,
    stale_rounds: u32,
    exhausted: bool,
    seen: HashSet<S::Item>,
    /// The source guarantees round items are already unique (see
    /// [`SampleStream::with_source_dedup`]); skip the stream's own
    /// seen-set.
    source_dedups: bool,
    pending: VecDeque<S::Item>,
    stats: StreamStats,
    started: Instant,
    /// Lifetime total of progress-free rounds (unlike `stale_rounds`, never
    /// reset), folded into the `engine.stale_rounds` metric on drop.
    stale_total: usize,
    /// The stream returned `None` because its deadline passed.
    hit_deadline: bool,
    /// The stream returned `None` because its stop token fired.
    cancelled: bool,
}

impl<S: RoundSource> SampleStream<S> {
    /// Default number of progress-free rounds after which the stream reports
    /// exhaustion.
    pub const DEFAULT_STALE_LIMIT: u32 = 8;

    /// Creates a stream over `source` with no deadline, a fresh stop token
    /// and the default stale limit.
    pub fn new(mut source: S) -> Self {
        let seen = source.take_seen();
        SampleStream {
            source,
            stop: StopToken::new(),
            deadline: None,
            stale_limit: Self::DEFAULT_STALE_LIMIT,
            stale_rounds: 0,
            exhausted: false,
            seen,
            source_dedups: false,
            pending: VecDeque::new(),
            stats: StreamStats::default(),
            started: Instant::now(),
            stale_total: 0,
            hit_deadline: false,
            cancelled: false,
        }
    }

    /// Declares that the source already deduplicates: every item a round
    /// returns is unique across the whole stream. The stream then skips its
    /// own seen-set (halving the dedup memory and avoiding a clone per
    /// item) and treats an empty round as a stale round.
    ///
    /// Only sources that *must* track uniqueness internally anyway (e.g. a
    /// QuickSampler-style session, whose mutation logic depends on which
    /// candidates were fresh) should claim this; a source that breaks the
    /// guarantee makes the stream yield duplicates.
    #[must_use]
    pub fn with_source_dedup(mut self) -> Self {
        self.source_dedups = true;
        self
    }

    /// Uses `stop` for cancellation instead of a private token.
    #[must_use]
    pub fn with_stop_token(mut self, stop: StopToken) -> Self {
        self.stop = stop;
        self
    }

    /// Stops starting new rounds once `deadline` has passed.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Stops starting new rounds once `timeout` has elapsed from now.
    #[must_use]
    pub fn with_timeout(self, timeout: Duration) -> Self {
        let deadline = Instant::now() + timeout;
        self.with_deadline(deadline)
    }

    /// Marks the stream exhausted after `limit` consecutive rounds without a
    /// new unique item (`0` disables the early exit).
    #[must_use]
    pub fn with_stale_limit(mut self, limit: u32) -> Self {
        self.stale_limit = limit;
        self
    }

    /// A clone of the stream's stop token; set it (from any thread) to
    /// cancel the stream.
    #[must_use]
    pub fn stop_token(&self) -> StopToken {
        self.stop.clone()
    }

    /// Progress counters so far.
    #[must_use]
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// Time since the stream was created.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Whether the source has stopped making progress (stale-limit hit).
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Yields every already-discovered item without running new rounds.
    ///
    /// Useful after `take(n)` (the final round usually discovers more unique
    /// items than were consumed) and after cancellation.
    pub fn drain_ready(&mut self) -> Vec<S::Item> {
        let drained: Vec<S::Item> = self.pending.drain(..).collect();
        self.stats.yielded += drained.len();
        drained
    }

    /// Yields the next chunk of up to `max` unique items: runs rounds until
    /// at least one item is available (exactly like [`Iterator::next`]),
    /// then drains further *already-discovered* items up to the cap without
    /// starting another round.
    ///
    /// Chunks therefore fall on natural round boundaries, and the
    /// concatenation of successive `next_batch` calls is **identical** to
    /// plain iteration — this is what lets a serving layer stream a request
    /// as incremental chunks while preserving the bit-for-bit determinism
    /// contract of the underlying sequence. An empty return means the
    /// stream ended (cancelled, deadline passed, or exhausted).
    pub fn next_batch(&mut self, max: usize) -> Vec<S::Item> {
        let mut chunk = Vec::new();
        if max == 0 {
            return chunk;
        }
        if let Some(first) = self.next() {
            chunk.push(first);
            while chunk.len() < max {
                match self.pending.pop_front() {
                    Some(item) => {
                        self.stats.yielded += 1;
                        chunk.push(item);
                    }
                    None => break,
                }
            }
        }
        chunk
    }

    fn deadline_passed(&self) -> bool {
        self.deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
    }
}

impl<S: RoundSource> Iterator for SampleStream<S> {
    type Item = S::Item;

    fn next(&mut self) -> Option<S::Item> {
        loop {
            if self.stop.is_stopped() {
                self.cancelled = true;
                return None;
            }
            if let Some(item) = self.pending.pop_front() {
                self.stats.yielded += 1;
                return Some(item);
            }
            if self.exhausted {
                return None;
            }
            if self.deadline_passed() {
                self.hit_deadline = true;
                return None;
            }
            let batch = {
                let _round_span = htsat_obs::span!("engine.round");
                self.source.round(&self.stop)
            };
            self.stats.rounds += 1;
            self.stats.attempts += self.source.round_size();
            self.stats.valid += batch.len();
            let mut fresh = 0usize;
            for item in batch {
                if self.source_dedups || self.seen.insert(item.clone()) {
                    self.pending.push_back(item);
                    fresh += 1;
                } else {
                    self.stats.duplicates += 1;
                }
            }
            if fresh == 0 {
                self.stale_rounds += 1;
                self.stale_total += 1;
                if self.stale_limit > 0 && self.stale_rounds >= self.stale_limit {
                    self.exhausted = true;
                }
            } else {
                self.stale_rounds = 0;
            }
        }
    }
}

impl<S: RoundSource> Drop for SampleStream<S> {
    fn drop(&mut self) {
        self.source.restore_seen(std::mem::take(&mut self.seen));
        // Fold the stream's lifetime totals into the global metrics in one
        // batch: a handful of relaxed atomic adds per stream, zero cost per
        // item. Every engine session flows through a `SampleStream`, so
        // these are the `engine.*` counters of the metric catalog.
        htsat_obs::counter!("engine.streams").inc();
        htsat_obs::counter!("engine.rounds").add(self.stats.rounds as u64);
        htsat_obs::counter!("engine.attempts").add(self.stats.attempts as u64);
        htsat_obs::counter!("engine.valid").add(self.stats.valid as u64);
        htsat_obs::counter!("engine.samples").add(self.stats.yielded as u64);
        htsat_obs::counter!("engine.duplicates").add(self.stats.duplicates as u64);
        htsat_obs::counter!("engine.stale_rounds").add(self.stale_total as u64);
        if self.exhausted {
            htsat_obs::counter!("engine.exhaustions").inc();
        }
        if self.hit_deadline {
            htsat_obs::counter!("engine.deadline_expiries").inc();
        }
        if self.cancelled {
            htsat_obs::counter!("engine.cancellations").inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Emits `0..width`, then `batch..batch+width`, ... — every round half
    /// overlapping the previous one, so deduplication is exercised.
    struct Counter {
        next: usize,
        width: usize,
        overlap: usize,
        memory: HashSet<usize>,
    }

    impl Counter {
        fn new(width: usize, overlap: usize) -> Self {
            Counter {
                next: 0,
                width,
                overlap,
                memory: HashSet::new(),
            }
        }
    }

    impl RoundSource for Counter {
        type Item = usize;

        fn round(&mut self, _stop: &StopToken) -> Vec<usize> {
            let start = self.next.saturating_sub(self.overlap);
            let batch: Vec<usize> = (start..self.next + self.width).collect();
            self.next += self.width;
            batch
        }

        fn round_size(&self) -> usize {
            self.width + self.overlap
        }

        fn take_seen(&mut self) -> HashSet<usize> {
            std::mem::take(&mut self.memory)
        }

        fn restore_seen(&mut self, seen: HashSet<usize>) {
            self.memory = seen;
        }
    }

    /// A source whose solution space has exactly `total` items.
    struct Finite {
        total: usize,
    }

    impl RoundSource for Finite {
        type Item = usize;

        fn round(&mut self, _stop: &StopToken) -> Vec<usize> {
            (0..self.total).collect()
        }
    }

    #[test]
    fn yields_unique_items_in_order() {
        let stream = SampleStream::new(Counter::new(4, 2));
        let items: Vec<usize> = stream.take(10).collect();
        assert_eq!(items, (0..10).collect::<Vec<usize>>());
    }

    #[test]
    fn duplicates_are_counted_not_yielded() {
        let mut stream = SampleStream::new(Counter::new(4, 2));
        let items: Vec<usize> = stream.by_ref().take(8).collect();
        assert_eq!(items, (0..8).collect::<Vec<usize>>());
        assert!(stream.stats().duplicates > 0);
        assert_eq!(stream.stats().yielded, 8);
    }

    #[test]
    fn stale_limit_ends_a_finite_stream() {
        let mut stream = SampleStream::new(Finite { total: 5 }).with_stale_limit(3);
        let items: Vec<usize> = stream.by_ref().collect();
        assert_eq!(items.len(), 5);
        assert!(stream.is_exhausted());
        // 1 productive round + 3 stale rounds.
        assert_eq!(stream.stats().rounds, 4);
    }

    #[test]
    fn stop_token_cancels_immediately_even_with_pending_items() {
        let mut stream = SampleStream::new(Counter::new(8, 0));
        assert_eq!(stream.next(), Some(0)); // 7 items still pending
        stream.stop_token().stop();
        assert_eq!(stream.next(), None);
        let recovered = stream.drain_ready();
        assert_eq!(recovered, (1..8).collect::<Vec<usize>>());
    }

    #[test]
    fn deadline_stops_new_rounds_but_delivers_pending() {
        let mut stream = SampleStream::new(Counter::new(4, 0))
            .with_deadline(Instant::now() - Duration::from_secs(1));
        // Deadline already passed: no round ever runs.
        assert_eq!(stream.next(), None);
        assert_eq!(stream.stats().rounds, 0);

        // With items already discovered, a passed deadline still delivers them.
        let mut stream = SampleStream::new(Counter::new(4, 0));
        assert_eq!(stream.next(), Some(0));
        let mut stream = stream.with_deadline(Instant::now() - Duration::from_secs(1));
        assert_eq!(stream.next(), Some(1));
        assert_eq!(stream.next(), Some(2));
        assert_eq!(stream.next(), Some(3));
        assert_eq!(stream.next(), None);
    }

    #[test]
    fn seen_set_round_trips_through_the_source() {
        let mut counter = Counter::new(4, 4);
        {
            let stream = SampleStream::new(&mut counter);
            let first: Vec<usize> = stream.take(4).collect();
            assert_eq!(first, vec![0, 1, 2, 3]);
        }
        // The counter restarts half-overlapping, but the restored seen-set
        // suppresses everything already emitted by the first stream.
        let stream = SampleStream::new(&mut counter);
        let second: Vec<usize> = stream.take(4).collect();
        assert_eq!(second, vec![4, 5, 6, 7]);
    }

    #[test]
    fn stats_track_attempts_and_valid() {
        let mut stream = SampleStream::new(Counter::new(2, 0));
        let _: Vec<usize> = stream.by_ref().take(4).collect();
        assert_eq!(stream.stats().rounds, 2);
        assert_eq!(stream.stats().attempts, 4);
        assert_eq!(stream.stats().valid, 4);
    }

    #[test]
    fn drain_ready_after_exhaustion_recovers_undelivered_items() {
        // The finite source exhausts after the stale limit with items still
        // undelivered; drain_ready must hand them over and count them.
        let mut stream = SampleStream::new(Finite { total: 6 }).with_stale_limit(2);
        assert_eq!(stream.next(), Some(0));
        assert_eq!(stream.next(), Some(1));
        // Consume the rest lazily until exhaustion reports None...
        while stream.next().is_some() {}
        assert!(stream.is_exhausted());
        // ...then nothing is pending, and drain_ready is an empty no-op.
        assert!(stream.drain_ready().is_empty());

        // Now exhaust *with* pending items: stop consuming right after the
        // first item, then force extra stale rounds by iterating a clone of
        // the same discovered set.
        let mut stream = SampleStream::new(Finite { total: 4 }).with_stale_limit(1);
        assert_eq!(stream.next(), Some(0)); // 3 pending from the first round
        let recovered = stream.drain_ready();
        assert_eq!(recovered, vec![1, 2, 3]);
        assert_eq!(stream.stats().yielded, 4);
        // Further nexts run rounds that discover nothing new -> exhaustion.
        assert_eq!(stream.next(), None);
        assert!(stream.is_exhausted());
        assert!(stream.drain_ready().is_empty());
    }

    #[test]
    fn next_batch_concatenation_matches_plain_iteration() {
        // Reference order: plain iteration.
        let reference: Vec<usize> = SampleStream::new(Counter::new(4, 2)).take(17).collect();

        // Chunked: batches fall on round boundaries but concatenate to the
        // exact same sequence, for any cap.
        for cap in [1, 3, 4, 5, 100] {
            let mut stream = SampleStream::new(Counter::new(4, 2));
            let mut chunked = Vec::new();
            while chunked.len() < reference.len() {
                let batch = stream.next_batch(cap.min(reference.len() - chunked.len()));
                assert!(!batch.is_empty(), "stream ended early at cap {cap}");
                assert!(batch.len() <= cap);
                chunked.extend(batch);
            }
            assert_eq!(chunked, reference, "cap {cap}");
            assert_eq!(stream.stats().yielded, reference.len());
        }
    }

    #[test]
    fn next_batch_signals_end_with_an_empty_chunk() {
        let mut stream = SampleStream::new(Finite { total: 3 }).with_stale_limit(1);
        assert_eq!(stream.next_batch(10), vec![0, 1, 2]);
        assert!(stream.next_batch(10).is_empty());
        assert!(stream.is_exhausted());
        // A zero cap never runs a round.
        let mut stream = SampleStream::new(Finite { total: 3 });
        assert!(stream.next_batch(0).is_empty());
        assert_eq!(stream.stats().rounds, 0);
    }

    /// Alternates between a round of already-seen items and a round with one
    /// fresh item, to exercise the stale-counter reset.
    struct Alternating {
        round: usize,
    }

    impl RoundSource for Alternating {
        type Item = usize;

        fn round(&mut self, _stop: &StopToken) -> Vec<usize> {
            self.round += 1;
            if self.round.is_multiple_of(2) {
                vec![0] // always a duplicate after round 1
            } else {
                vec![0, self.round] // one fresh item
            }
        }
    }

    #[test]
    fn stale_counter_resets_on_fresh_unique_items() {
        // Every even round is fully stale, every odd round has a fresh item.
        // With a stale limit of 2 the counter must keep resetting, so the
        // stream stays productive far past 2 consecutive-stale-round pairs.
        let mut stream = SampleStream::new(Alternating { round: 0 }).with_stale_limit(2);
        let items: Vec<usize> = stream.by_ref().take(6).collect();
        assert_eq!(items, vec![0, 1, 3, 5, 7, 9]);
        assert!(!stream.is_exhausted());
        assert!(stream.stats().duplicates > 0);
    }

    #[test]
    fn deadline_already_past_at_construction_never_runs_a_round() {
        // An Instant deadline in the past and a zero timeout are both "late
        // from birth": the stream must not start a single round.
        let past = SampleStream::new(Counter::new(4, 0))
            .with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(past.stats().rounds, 0);
        let mut past = past;
        assert_eq!(past.next(), None);
        assert_eq!(past.stats().rounds, 0);

        let mut zero = SampleStream::new(Counter::new(4, 0)).with_timeout(Duration::ZERO);
        assert_eq!(zero.next(), None);
        assert_eq!(zero.stats().rounds, 0);
        assert!(!zero.is_exhausted(), "a deadline is not exhaustion");
    }

    #[test]
    fn stats_merge_and_fields_round_trip() {
        let mut total = StreamStats::default();
        let a = StreamStats {
            rounds: 1,
            attempts: 10,
            valid: 5,
            yielded: 4,
            duplicates: 1,
        };
        total.merge(&a);
        total.merge(&a);
        assert_eq!(total.rounds, 2);
        assert_eq!(total.attempts, 20);
        let fields = total.fields();
        assert_eq!(fields[0], ("rounds", 2));
        assert_eq!(fields[4], ("duplicates", 2));
        assert_eq!(
            total.to_string(),
            "rounds=2 attempts=20 valid=10 yielded=8 duplicates=2"
        );
    }

    /// Emits `width` genuinely fresh items per round until `total` is
    /// reached, then empty rounds — a source that dedups internally.
    struct SelfDeduping {
        next: usize,
        width: usize,
        total: usize,
    }

    impl RoundSource for SelfDeduping {
        type Item = usize;

        fn round(&mut self, _stop: &StopToken) -> Vec<usize> {
            let end = (self.next + self.width).min(self.total);
            let batch: Vec<usize> = (self.next..end).collect();
            self.next = end;
            batch
        }
    }

    #[test]
    fn source_dedup_mode_skips_the_stream_seen_set_and_detects_staleness() {
        let mut stream = SampleStream::new(SelfDeduping {
            next: 0,
            width: 3,
            total: 7,
        })
        .with_source_dedup()
        .with_stale_limit(2);
        let items: Vec<usize> = stream.by_ref().collect();
        assert_eq!(items, (0..7).collect::<Vec<usize>>());
        assert!(stream.is_exhausted(), "empty rounds must count as stale");
        assert_eq!(stream.stats().duplicates, 0);
        // The stream kept no seen-set of its own: the set it restores to
        // the source (via Drop) is still the empty one it took.
        assert!(stream.seen.is_empty());
    }

    #[test]
    fn boxed_dyn_sources_drive_a_stream() {
        let boxed: Box<dyn RoundSource<Item = usize> + Send> = Box::new(Counter::new(4, 2));
        let mut stream = SampleStream::new(boxed);
        let items: Vec<usize> = stream.by_ref().take(6).collect();
        assert_eq!(items, (0..6).collect::<Vec<usize>>());
        assert!(stream.stats().rounds > 0);
    }

    #[test]
    fn unique_throughput_clamps_the_denominator() {
        // Zero elapsed clamps to the minimum tick: a finite rate, never the
        // raw count.
        let expected = 5.0 / MIN_MEASURABLE_TICK.as_secs_f64();
        assert!((unique_throughput(5, Duration::ZERO) - expected).abs() < 1e-3);
        assert!((unique_throughput(10, Duration::from_secs(2)) - 5.0).abs() < 1e-9);
        assert_eq!(unique_throughput(0, Duration::ZERO), 0.0);
    }

    #[test]
    fn external_stop_token_is_respected() {
        let token = StopToken::new();
        let mut stream = SampleStream::new(Counter::new(2, 0)).with_stop_token(token.clone());
        assert_eq!(stream.next(), Some(0));
        token.stop();
        assert_eq!(stream.next(), None);
    }
}
