//! Property-based tests for the CNF substrate.

use htsat_cnf::{dimacs, Assignment, Clause, Cnf, Lit, Var};
use proptest::prelude::*;

/// Strategy producing an arbitrary CNF with `max_vars` variables and up to
/// `max_clauses` clauses of up to `max_width` literals.
fn arb_cnf(max_vars: u32, max_clauses: usize, max_width: usize) -> impl Strategy<Value = Cnf> {
    let lit =
        (1..=max_vars, any::<bool>()).prop_map(|(v, pos)| if pos { v as i64 } else { -(v as i64) });
    let clause = prop::collection::vec(lit, 1..=max_width);
    prop::collection::vec(clause, 0..=max_clauses).prop_map(move |clauses| {
        let mut cnf = Cnf::new(max_vars as usize);
        for c in clauses {
            cnf.add_dimacs_clause(c);
        }
        cnf
    })
}

fn arb_bits(n: usize) -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), n)
}

proptest! {
    #[test]
    fn dimacs_round_trip_preserves_semantics(cnf in arb_cnf(8, 16, 4), bits in arb_bits(8)) {
        let text = dimacs::to_string(&cnf);
        let reparsed = dimacs::parse_str(&text).expect("reparse");
        prop_assert_eq!(cnf.num_clauses(), reparsed.num_clauses());
        prop_assert_eq!(
            cnf.is_satisfied_by_bits(&bits),
            reparsed.is_satisfied_by_bits(&bits)
        );
    }

    #[test]
    fn normalization_preserves_satisfaction(cnf in arb_cnf(6, 12, 4), bits in arb_bits(6)) {
        let mut normalized = cnf.clone();
        normalized.normalize();
        // Dropping tautologies and duplicate literals never changes the value.
        prop_assert_eq!(
            cnf.is_satisfied_by_bits(&bits),
            normalized.is_satisfied_by_bits(&bits)
        );
    }

    #[test]
    fn falsified_count_zero_iff_satisfied(cnf in arb_cnf(6, 12, 4), bits in arb_bits(6)) {
        prop_assert_eq!(cnf.count_falsified(&bits) == 0, cnf.is_satisfied_by_bits(&bits));
    }

    #[test]
    fn clause_eval_consistent_with_bits(
        lits in prop::collection::vec((1u32..6, any::<bool>()), 1..5),
        bits in arb_bits(6),
    ) {
        let clause: Clause = lits
            .iter()
            .map(|&(v, pos)| Lit::new(Var::new(v), pos))
            .collect();
        let assignment = Assignment::from_bits(&bits);
        prop_assert_eq!(clause.eval(&assignment), Some(clause.eval_bits(&bits)));
    }

    #[test]
    fn literal_negation_is_involutive(v in 1u32..1000, pos in any::<bool>()) {
        let l = Lit::new(Var::new(v), pos);
        prop_assert_eq!(!!l, l);
        prop_assert_eq!((!l).var(), l.var());
        prop_assert_ne!((!l).is_positive(), l.is_positive());
    }

    #[test]
    fn unit_propagation_never_falsifies_satisfiable_assignments(
        cnf in arb_cnf(6, 10, 3),
        bits in arb_bits(6),
    ) {
        use htsat_cnf::propagate::{propagate_units, PropagationResult};
        // If `bits` satisfies the formula, propagation from the empty
        // assignment can never produce implied literals contradicting... a
        // *different* model, but it must never report a conflict when the
        // formula is satisfiable by `bits`.
        if cnf.is_satisfied_by_bits(&bits) {
            match propagate_units(&cnf, &Assignment::new(cnf.num_vars())) {
                PropagationResult::Conflict { .. } => {
                    prop_assert!(false, "conflict reported for satisfiable formula");
                }
                PropagationResult::Consistent { .. } => {}
            }
        }
    }

    #[test]
    fn ops_count_monotone_in_clauses(cnf in arb_cnf(6, 10, 4)) {
        use htsat_cnf::ops::count_cnf_ops;
        let full = count_cnf_ops(&cnf).total();
        let mut smaller = Cnf::new(cnf.num_vars());
        for c in cnf.clauses().iter().take(cnf.num_clauses() / 2) {
            smaller.push_clause(c.clone());
        }
        prop_assert!(count_cnf_ops(&smaller).total() <= full);
    }
}
