//! Canonical content fingerprints for CNF formulas.
//!
//! A [`Fingerprint`] is a 128-bit content hash of a formula that is stable
//! under the two reorderings that leave a CNF semantically unchanged:
//!
//! * **literal order inside a clause** — every clause is hashed over its
//!   *sorted* literal codes, and
//! * **clause order inside the formula** — the per-clause hashes are folded
//!   with commutative combiners (a wrapping sum and an xor over two
//!   independently mixed lanes), so permuting the clause list does not
//!   change the result.
//!
//! Everything else is content: the declared variable count, the clause
//! count and the exact literal multiset of every clause (duplicate literals
//! and duplicate clauses are *not* collapsed — `(x1 ∨ x1)` hashes
//! differently from `(x1)`). Comments are ignored.
//!
//! The fingerprint is the registry key of the serving layer: a daemon that
//! has already transformed and compiled a formula recognises a re-submitted
//! copy of it — even one whose clauses arrive in a different order — and
//! skips parse-side recompilation entirely.

use crate::Cnf;
use std::fmt;
use std::str::FromStr;

/// Mixes a 64-bit value with the SplitMix64 finalizer.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A 128-bit canonical content hash of a [`Cnf`].
///
/// Two formulas with the same variable universe and the same multiset of
/// clauses (each clause compared as a multiset of literals) produce the same
/// fingerprint regardless of clause or literal ordering: clauses are
/// hashed over their sorted literal codes and folded with commutative
/// combiners, with the declared variable universe and clause count mixed
/// in. Duplicate literals/clauses and the variable count are content;
/// comments are not.
///
/// ```
/// use htsat_cnf::{Cnf, Fingerprint};
///
/// let mut a = Cnf::new(3);
/// a.add_dimacs_clause([1, -2]);
/// a.add_dimacs_clause([2, 3]);
///
/// // Same clauses, both lists reordered.
/// let mut b = Cnf::new(3);
/// b.add_dimacs_clause([3, 2]);
/// b.add_dimacs_clause([-2, 1]);
///
/// assert_eq!(Fingerprint::of(&a), Fingerprint::of(&b));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint {
    hi: u64,
    lo: u64,
}

impl Fingerprint {
    /// Computes the canonical fingerprint of `cnf`.
    #[must_use]
    pub fn of(cnf: &Cnf) -> Self {
        // Two independent lanes per clause (different seeds), combined
        // commutatively across clauses: `lo` accumulates a wrapping sum,
        // `hi` an xor of a re-mixed value. An order-dependent hash of the
        // sorted literal list feeds both.
        let mut sum: u64 = 0;
        let mut xor: u64 = 0;
        let mut codes: Vec<u64> = Vec::new();
        for clause in cnf.clauses() {
            codes.clear();
            codes.extend(clause.lits().iter().map(|l| l.code() as u64));
            codes.sort_unstable();
            let mut h: u64 = 0x9e37_79b9_7f4a_7c15 ^ codes.len() as u64;
            for &code in &codes {
                h = mix64(h ^ code.wrapping_mul(0xd6e8_feb8_6659_fd93));
            }
            sum = sum.wrapping_add(mix64(h ^ 0x5851_f42d_4c95_7f2d));
            xor ^= mix64(h ^ 0x1405_7b7e_f767_814f);
        }
        // Fold in the shape (variable universe and clause count) so an
        // empty formula over 3 variables differs from one over 5.
        let shape = mix64((cnf.num_vars() as u64) << 32 ^ cnf.num_clauses() as u64);
        Fingerprint {
            hi: mix64(xor ^ shape),
            lo: mix64(sum.wrapping_add(shape)),
        }
    }

    /// The fingerprint as a fixed-width 32-digit lowercase hex string.
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parses a fingerprint from the 32-digit hex form of
    /// [`Fingerprint::to_hex`].
    ///
    /// # Errors
    ///
    /// Returns `Err` if the string is not exactly 32 hex digits.
    pub fn from_hex(s: &str) -> Result<Self, ParseFingerprintError> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(ParseFingerprintError);
        }
        let hi = u64::from_str_radix(&s[..16], 16).map_err(|_| ParseFingerprintError)?;
        let lo = u64::from_str_radix(&s[16..], 16).map_err(|_| ParseFingerprintError)?;
        Ok(Fingerprint { hi, lo })
    }
}

/// Error returned when parsing a malformed fingerprint string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseFingerprintError;

impl fmt::Display for ParseFingerprintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fingerprint must be exactly 32 hex digits")
    }
}

impl std::error::Error for ParseFingerprintError {}

impl FromStr for Fingerprint {
    type Err = ParseFingerprintError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Fingerprint::from_hex(s)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cnf() -> Cnf {
        let mut cnf = Cnf::new(4);
        cnf.add_dimacs_clause([1, -2, 3]);
        cnf.add_dimacs_clause([-1, 4]);
        cnf.add_dimacs_clause([2, 3, -4]);
        cnf
    }

    #[test]
    fn stable_under_clause_reordering() {
        let mut shuffled = Cnf::new(4);
        shuffled.add_dimacs_clause([2, 3, -4]);
        shuffled.add_dimacs_clause([1, -2, 3]);
        shuffled.add_dimacs_clause([-1, 4]);
        assert_eq!(Fingerprint::of(&base_cnf()), Fingerprint::of(&shuffled));
    }

    #[test]
    fn stable_under_literal_reordering() {
        let mut shuffled = Cnf::new(4);
        shuffled.add_dimacs_clause([3, 1, -2]);
        shuffled.add_dimacs_clause([4, -1]);
        shuffled.add_dimacs_clause([-4, 3, 2]);
        assert_eq!(Fingerprint::of(&base_cnf()), Fingerprint::of(&shuffled));
    }

    #[test]
    fn ignores_comments() {
        let mut commented = base_cnf();
        commented.add_comment("generated for a test");
        assert_eq!(Fingerprint::of(&base_cnf()), Fingerprint::of(&commented));
    }

    #[test]
    fn sensitive_to_content_changes() {
        let base = Fingerprint::of(&base_cnf());

        // Flipped literal polarity.
        let mut flipped = Cnf::new(4);
        flipped.add_dimacs_clause([1, 2, 3]);
        flipped.add_dimacs_clause([-1, 4]);
        flipped.add_dimacs_clause([2, 3, -4]);
        assert_ne!(base, Fingerprint::of(&flipped));

        // Dropped clause.
        let mut fewer = Cnf::new(4);
        fewer.add_dimacs_clause([1, -2, 3]);
        fewer.add_dimacs_clause([-1, 4]);
        assert_ne!(base, Fingerprint::of(&fewer));

        // Same clauses, larger declared universe.
        let mut wider = base_cnf();
        wider.grow_vars(9);
        assert_ne!(base, Fingerprint::of(&wider));
    }

    #[test]
    fn duplicate_literals_and_clauses_are_content() {
        let mut single = Cnf::new(2);
        single.add_dimacs_clause([1]);
        let mut doubled_lit = Cnf::new(2);
        doubled_lit.add_dimacs_clause([1, 1]);
        assert_ne!(Fingerprint::of(&single), Fingerprint::of(&doubled_lit));

        let mut once = Cnf::new(2);
        once.add_dimacs_clause([1, 2]);
        let mut twice = Cnf::new(2);
        twice.add_dimacs_clause([1, 2]);
        twice.add_dimacs_clause([1, 2]);
        assert_ne!(Fingerprint::of(&once), Fingerprint::of(&twice));
    }

    #[test]
    fn empty_formulas_differ_by_universe() {
        assert_ne!(Fingerprint::of(&Cnf::new(3)), Fingerprint::of(&Cnf::new(5)));
        assert_eq!(Fingerprint::of(&Cnf::new(3)), Fingerprint::of(&Cnf::new(3)));
    }

    #[test]
    fn hex_round_trip() {
        let fp = Fingerprint::of(&base_cnf());
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(Fingerprint::from_hex(&hex), Ok(fp));
        assert_eq!(hex.parse::<Fingerprint>(), Ok(fp));
        assert_eq!(fp.to_string(), hex);
    }

    #[test]
    fn malformed_hex_is_rejected() {
        assert!(Fingerprint::from_hex("deadbeef").is_err());
        assert!(Fingerprint::from_hex(&"g".repeat(32)).is_err());
        assert!(Fingerprint::from_hex(&"0".repeat(33)).is_err());
    }

    #[test]
    fn dimacs_round_trip_preserves_fingerprint() {
        let cnf = base_cnf();
        let text = crate::dimacs::to_string(&cnf);
        let parsed = crate::dimacs::parse_str(&text).expect("round trip");
        assert_eq!(Fingerprint::of(&cnf), Fingerprint::of(&parsed));
    }
}
