//! DIMACS CNF reading and writing.
//!
//! The parser is tolerant: comments may appear anywhere, clauses may span
//! multiple lines, and the header variable/clause counts are treated as hints
//! (the actual content wins), which matches how the sampling benchmark files
//! in the paper are consumed.

use crate::error::ParseDimacsErrorKind;
use crate::{Cnf, Lit, ParseDimacsError};
use std::io::{self, Write};
use std::path::Path;

/// Parses a DIMACS CNF document from a string.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] if the header is malformed, a literal token is
/// not an integer, or the final clause is not terminated by `0`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), htsat_cnf::ParseDimacsError> {
/// let cnf = htsat_cnf::dimacs::parse_str("p cnf 2 2\n1 -2 0\n2 0\n")?;
/// assert_eq!(cnf.num_vars(), 2);
/// assert_eq!(cnf.num_clauses(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_str(input: &str) -> Result<Cnf, ParseDimacsError> {
    let mut cnf = Cnf::new(0);
    let mut header_seen = false;
    let mut declared_vars = 0usize;
    let mut current: Vec<Lit> = Vec::new();
    let mut last_line = 0usize;

    for (lineno, line) in input.lines().enumerate() {
        let lineno = lineno + 1;
        last_line = lineno;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(comment) = trimmed.strip_prefix('c') {
            cnf.add_comment(comment.trim_start());
            continue;
        }
        if trimmed.starts_with('p') {
            let mut parts = trimmed.split_whitespace();
            let _p = parts.next();
            let fmt = parts.next().unwrap_or("");
            let vars = parts.next().and_then(|t| t.parse::<usize>().ok());
            let clauses = parts.next().and_then(|t| t.parse::<usize>().ok());
            if fmt != "cnf" || vars.is_none() || clauses.is_none() {
                return Err(ParseDimacsError {
                    line: lineno,
                    kind: ParseDimacsErrorKind::BadHeader(trimmed.to_string()),
                });
            }
            declared_vars = vars.expect("checked above");
            header_seen = true;
            continue;
        }
        if !header_seen {
            return Err(ParseDimacsError {
                line: lineno,
                kind: ParseDimacsErrorKind::MissingHeader,
            });
        }
        for token in trimmed.split_whitespace() {
            let value: i64 = token.parse().map_err(|_| ParseDimacsError {
                line: lineno,
                kind: ParseDimacsErrorKind::BadLiteral(token.to_string()),
            })?;
            if value == 0 {
                cnf.add_clause(current.drain(..));
            } else {
                current.push(Lit::from_dimacs(value));
            }
        }
    }

    if !current.is_empty() {
        return Err(ParseDimacsError {
            line: last_line,
            kind: ParseDimacsErrorKind::UnterminatedClause,
        });
    }
    cnf.grow_vars(declared_vars);
    Ok(cnf)
}

/// Reads and parses a DIMACS CNF file from disk.
///
/// # Errors
///
/// Returns an [`io::Error`] if the file cannot be read, or a boxed
/// [`ParseDimacsError`] (wrapped in `io::Error` with kind `InvalidData`) if it
/// cannot be parsed.
pub fn read_file<P: AsRef<Path>>(path: P) -> io::Result<Cnf> {
    let text = std::fs::read_to_string(path)?;
    parse_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Serialises a [`Cnf`] to DIMACS text, including its comments.
pub fn to_string(cnf: &Cnf) -> String {
    let mut out = String::new();
    for c in cnf.comments() {
        out.push_str("c ");
        out.push_str(c);
        out.push('\n');
    }
    out.push_str(&format!("p cnf {} {}\n", cnf.num_vars(), cnf.num_clauses()));
    for clause in cnf.clauses() {
        out.push_str(&clause.to_string());
        out.push('\n');
    }
    out
}

/// Writes a [`Cnf`] in DIMACS format to any [`Write`] sink.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write<W: Write>(cnf: &Cnf, mut writer: W) -> io::Result<()> {
    writer.write_all(to_string(cnf).as_bytes())
}

/// Writes a [`Cnf`] to a file on disk.
///
/// # Errors
///
/// Propagates I/O errors from file creation or writing.
pub fn write_file<P: AsRef<Path>>(cnf: &Cnf, path: P) -> io::Result<()> {
    std::fs::write(path, to_string(cnf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ParseDimacsErrorKind;

    #[test]
    fn parses_basic_document() {
        let cnf = parse_str("c example\np cnf 3 2\n1 -2 0\n2 3 0\n").expect("parse");
        assert_eq!(cnf.num_vars(), 3);
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.comments(), ["example"]);
    }

    #[test]
    fn clauses_may_span_lines() {
        let cnf = parse_str("p cnf 3 1\n1 2\n3 0\n").expect("parse");
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(cnf.clauses()[0].len(), 3);
    }

    #[test]
    fn multiple_clauses_on_one_line() {
        let cnf = parse_str("p cnf 2 2\n1 0 -2 0\n").expect("parse");
        assert_eq!(cnf.num_clauses(), 2);
    }

    #[test]
    fn rejects_missing_header() {
        let err = parse_str("1 2 0\n").unwrap_err();
        assert_eq!(err.kind, ParseDimacsErrorKind::MissingHeader);
    }

    #[test]
    fn rejects_bad_literal() {
        let err = parse_str("p cnf 2 1\n1 x 0\n").unwrap_err();
        assert!(matches!(err.kind, ParseDimacsErrorKind::BadLiteral(_)));
    }

    #[test]
    fn rejects_unterminated_clause() {
        let err = parse_str("p cnf 2 1\n1 2\n").unwrap_err();
        assert_eq!(err.kind, ParseDimacsErrorKind::UnterminatedClause);
    }

    #[test]
    fn rejects_bad_header() {
        let err = parse_str("p dnf 2 1\n1 0\n").unwrap_err();
        assert!(matches!(err.kind, ParseDimacsErrorKind::BadHeader(_)));
    }

    #[test]
    fn round_trips_through_text() {
        let original = parse_str("p cnf 4 3\n1 -2 0\n3 4 0\n-1 0\n").expect("parse");
        let text = to_string(&original);
        let reparsed = parse_str(&text).expect("reparse");
        assert_eq!(original.num_vars(), reparsed.num_vars());
        assert_eq!(original.clauses(), reparsed.clauses());
    }

    #[test]
    fn header_var_count_is_respected_when_larger() {
        let cnf = parse_str("p cnf 10 1\n1 2 0\n").expect("parse");
        assert_eq!(cnf.num_vars(), 10);
    }
}
