//! The CNF formula type.

use crate::{Assignment, Clause, Lit, Var};
use std::fmt;

/// A CNF formula: a conjunction of [`Clause`]s over `num_vars` variables.
///
/// # Example
///
/// ```
/// use htsat_cnf::{Cnf, Lit};
///
/// let mut cnf = Cnf::new(3);
/// cnf.add_clause([Lit::pos(1), Lit::pos(2)]);
/// cnf.add_clause([Lit::neg(1), Lit::pos(3)]);
/// assert_eq!(cnf.num_clauses(), 2);
/// assert!(cnf.is_satisfied_by_bits(&[true, false, true]));
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Clause>,
    comments: Vec<String>,
}

impl Cnf {
    /// Creates an empty formula over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Cnf {
            num_vars,
            clauses: Vec::new(),
            comments: Vec::new(),
        }
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clauses of the formula.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Comment lines attached to the formula (DIMACS `c` lines).
    pub fn comments(&self) -> &[String] {
        &self.comments
    }

    /// Attaches a comment line (without the leading `c`).
    pub fn add_comment(&mut self, comment: impl Into<String>) {
        self.comments.push(comment.into());
    }

    /// Adds a clause, growing the variable universe if needed.
    pub fn add_clause<I>(&mut self, lits: I)
    where
        I: IntoIterator<Item = Lit>,
    {
        self.push_clause(Clause::from_lits(lits));
    }

    /// Adds a clause given in DIMACS integer form.
    ///
    /// # Panics
    ///
    /// Panics if any literal is zero.
    pub fn add_dimacs_clause<I>(&mut self, lits: I)
    where
        I: IntoIterator<Item = i64>,
    {
        self.push_clause(Clause::from_dimacs(lits));
    }

    /// Adds an already-built [`Clause`], growing the universe if needed.
    pub fn push_clause(&mut self, clause: Clause) {
        for lit in clause.lits() {
            let idx = lit.var().index() as usize;
            if idx > self.num_vars {
                self.num_vars = idx;
            }
        }
        self.clauses.push(clause);
    }

    /// Grows the declared variable universe to at least `num_vars`.
    pub fn grow_vars(&mut self, num_vars: usize) {
        if num_vars > self.num_vars {
            self.num_vars = num_vars;
        }
    }

    /// Allocates a fresh variable beyond the current universe and returns it.
    pub fn fresh_var(&mut self) -> Var {
        self.num_vars += 1;
        Var::new(self.num_vars as u32)
    }

    /// Evaluates the formula under a complete bit-vector assignment indexed by
    /// zero-based variable index.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is shorter than [`Cnf::num_vars`].
    pub fn is_satisfied_by_bits(&self, bits: &[bool]) -> bool {
        assert!(
            bits.len() >= self.num_vars,
            "assignment has {} bits but formula has {} variables",
            bits.len(),
            self.num_vars
        );
        self.clauses.iter().all(|c| c.eval_bits(bits))
    }

    /// Evaluates the formula under a (possibly partial) [`Assignment`].
    ///
    /// Returns `Some(false)` as soon as a clause is falsified, `Some(true)` if
    /// every clause is satisfied, and `None` otherwise.
    pub fn eval(&self, assignment: &Assignment) -> Option<bool> {
        let mut all_true = true;
        for c in &self.clauses {
            match c.eval(assignment) {
                Some(false) => return Some(false),
                Some(true) => {}
                None => all_true = false,
            }
        }
        if all_true {
            Some(true)
        } else {
            None
        }
    }

    /// Counts clauses falsified by a complete bit-vector assignment.
    pub fn count_falsified(&self, bits: &[bool]) -> usize {
        self.clauses.iter().filter(|c| !c.eval_bits(bits)).count()
    }

    /// Returns the set of variables actually occurring in clauses.
    pub fn occurring_vars(&self) -> Vec<Var> {
        let mut seen = vec![false; self.num_vars];
        for c in &self.clauses {
            for l in c.lits() {
                seen[l.var().as_usize()] = true;
            }
        }
        seen.iter()
            .enumerate()
            .filter(|&(_i, &s)| s)
            .map(|(i, &_s)| Var::from_zero_based(i))
            .collect()
    }

    /// Removes duplicate literals within clauses and drops tautological
    /// clauses. Returns the number of clauses removed.
    pub fn normalize(&mut self) -> usize {
        let before = self.clauses.len();
        self.clauses.retain_mut(|c| !c.normalize());
        before - self.clauses.len()
    }

    /// Iterates over the clauses.
    pub fn iter(&self) -> std::slice::Iter<'_, Clause> {
        self.clauses.iter()
    }
}

impl FromIterator<Clause> for Cnf {
    fn from_iter<I: IntoIterator<Item = Clause>>(iter: I) -> Self {
        let mut cnf = Cnf::new(0);
        for c in iter {
            cnf.push_clause(c);
        }
        cnf
    }
}

impl Extend<Clause> for Cnf {
    fn extend<I: IntoIterator<Item = Clause>>(&mut self, iter: I) {
        for c in iter {
            self.push_clause(c);
        }
    }
}

impl<'a> IntoIterator for &'a Cnf {
    type Item = &'a Clause;
    type IntoIter = std::slice::Iter<'a, Clause>;

    fn into_iter(self) -> Self::IntoIter {
        self.clauses.iter()
    }
}

impl fmt::Debug for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cnf{{vars: {}, clauses: {}}}",
            self.num_vars,
            self.clauses.len()
        )
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "p cnf {} {}", self.num_vars, self.clauses.len())?;
        for c in &self.clauses {
            writeln!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_cnf() -> Cnf {
        // x3 = x1 XOR x2
        let mut cnf = Cnf::new(3);
        cnf.add_dimacs_clause([-1, -2, -3]);
        cnf.add_dimacs_clause([1, 2, -3]);
        cnf.add_dimacs_clause([1, -2, 3]);
        cnf.add_dimacs_clause([-1, 2, 3]);
        cnf
    }

    #[test]
    fn evaluation_agrees_with_xor_semantics() {
        let cnf = xor_cnf();
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    assert_eq!(cnf.is_satisfied_by_bits(&[a, b, c]), (a ^ b) == c);
                }
            }
        }
    }

    #[test]
    fn partial_eval_detects_conflict_early() {
        let cnf = xor_cnf();
        let mut a = Assignment::new(3);
        a.assign(Var::new(1), true);
        a.assign(Var::new(2), true);
        a.assign(Var::new(3), true);
        assert_eq!(cnf.eval(&a), Some(false));
    }

    #[test]
    fn add_clause_grows_universe() {
        let mut cnf = Cnf::new(1);
        cnf.add_dimacs_clause([5, -6]);
        assert_eq!(cnf.num_vars(), 6);
    }

    #[test]
    fn fresh_var_extends_universe() {
        let mut cnf = Cnf::new(2);
        let v = cnf.fresh_var();
        assert_eq!(v.index(), 3);
        assert_eq!(cnf.num_vars(), 3);
    }

    #[test]
    fn count_falsified_counts_unsatisfied_clauses() {
        let cnf = xor_cnf();
        assert_eq!(cnf.count_falsified(&[true, true, true]), 1);
        assert_eq!(cnf.count_falsified(&[true, true, false]), 0);
    }

    #[test]
    fn normalize_drops_tautologies() {
        let mut cnf = Cnf::new(2);
        cnf.add_dimacs_clause([1, -1]);
        cnf.add_dimacs_clause([1, 2]);
        assert_eq!(cnf.normalize(), 1);
        assert_eq!(cnf.num_clauses(), 1);
    }

    #[test]
    fn occurring_vars_skips_unused() {
        let mut cnf = Cnf::new(5);
        cnf.add_dimacs_clause([1, 4]);
        let occ = cnf.occurring_vars();
        assert_eq!(occ, vec![Var::new(1), Var::new(4)]);
    }

    #[test]
    fn display_emits_dimacs() {
        let mut cnf = Cnf::new(2);
        cnf.add_dimacs_clause([1, -2]);
        let s = cnf.to_string();
        assert!(s.starts_with("p cnf 2 1\n"));
        assert!(s.contains("1 -2 0"));
    }
}
