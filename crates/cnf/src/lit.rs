//! Variables and literals.

use std::fmt;

/// A propositional variable, identified by a 1-based index as in DIMACS.
///
/// `Var(0)` is never a valid variable; constructors enforce this.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its 1-based DIMACS index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is zero.
    #[inline]
    pub fn new(index: u32) -> Self {
        assert!(index != 0, "variable index must be non-zero");
        Var(index)
    }

    /// Returns the 1-based DIMACS index of this variable.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }

    /// Returns the 0-based dense index, convenient for array lookups.
    #[inline]
    pub fn as_usize(self) -> usize {
        (self.0 - 1) as usize
    }

    /// Creates a variable from a 0-based dense index.
    #[inline]
    pub fn from_zero_based(index: usize) -> Self {
        Var(index as u32 + 1)
    }

    /// Returns the positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// Returns the negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl From<Var> for u32 {
    fn from(v: Var) -> u32 {
        v.index()
    }
}

/// A literal: a variable or its negation.
///
/// Internally encoded as `2 * (index - 1) + sign` so literals can be used as
/// dense array indices (see [`Lit::code`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal for `var`, positive when `positive` is true.
    #[inline]
    pub fn new(var: Var, positive: bool) -> Self {
        Lit((var.as_usize() as u32) << 1 | u32::from(positive))
    }

    /// Positive literal of the variable with the given 1-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is zero.
    #[inline]
    pub fn pos(index: u32) -> Self {
        Lit::new(Var::new(index), true)
    }

    /// Negative literal of the variable with the given 1-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is zero.
    #[inline]
    pub fn neg(index: u32) -> Self {
        Lit::new(Var::new(index), false)
    }

    /// Parses a literal from its DIMACS integer form (`-3` is `¬x3`).
    ///
    /// # Panics
    ///
    /// Panics if `value` is zero.
    #[inline]
    pub fn from_dimacs(value: i64) -> Self {
        assert!(value != 0, "DIMACS literal must be non-zero");
        Lit::new(Var::new(value.unsigned_abs() as u32), value > 0)
    }

    /// Returns the literal in DIMACS integer form.
    #[inline]
    pub fn to_dimacs(self) -> i64 {
        let v = self.var().index() as i64;
        if self.is_positive() {
            v
        } else {
            -v
        }
    }

    /// The variable this literal refers to.
    #[inline]
    pub fn var(self) -> Var {
        Var::from_zero_based((self.0 >> 1) as usize)
    }

    /// Whether this literal is the positive (non-negated) polarity.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 1
    }

    /// Whether this literal is negated.
    #[inline]
    pub fn is_negative(self) -> bool {
        !self.is_positive()
    }

    /// Dense code usable as an array index: `2 * var_zero_based + polarity`.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from the dense [`Lit::code`] encoding.
    #[inline]
    pub fn from_code(code: usize) -> Self {
        Lit(code as u32)
    }

    /// Evaluates this literal under a truth value for its variable.
    #[inline]
    pub fn eval(self, var_value: bool) -> bool {
        var_value == self.is_positive()
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "¬")?;
        }
        write!(f, "{}", self.var())
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dimacs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_round_trips_indices() {
        let v = Var::new(7);
        assert_eq!(v.index(), 7);
        assert_eq!(v.as_usize(), 6);
        assert_eq!(Var::from_zero_based(6), v);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn var_zero_rejected() {
        let _ = Var::new(0);
    }

    #[test]
    fn literal_polarity_and_negation() {
        let l = Lit::pos(3);
        assert!(l.is_positive());
        assert_eq!((!l).var(), l.var());
        assert!((!l).is_negative());
        assert_eq!(!!l, l);
    }

    #[test]
    fn literal_dimacs_round_trip() {
        for d in [1i64, -1, 5, -42, 100] {
            assert_eq!(Lit::from_dimacs(d).to_dimacs(), d);
        }
    }

    #[test]
    fn literal_code_round_trip() {
        for d in [1i64, -1, 9, -9] {
            let l = Lit::from_dimacs(d);
            assert_eq!(Lit::from_code(l.code()), l);
        }
    }

    #[test]
    fn literal_eval_matches_polarity() {
        assert!(Lit::pos(2).eval(true));
        assert!(!Lit::pos(2).eval(false));
        assert!(Lit::neg(2).eval(false));
        assert!(!Lit::neg(2).eval(true));
    }

    #[test]
    fn codes_are_dense_and_adjacent() {
        let v = Var::new(4);
        assert_eq!(v.negative().code() ^ 1, v.positive().code());
    }
}
