//! Unit propagation and lightweight formula preprocessing.
//!
//! These routines are used by the CDCL solver substrate for preprocessing and
//! by the transformation algorithm to pre-simplify constant-constrained
//! clauses (e.g. the `x10 = 1` unit clause in the paper's Fig. 1 example).

use crate::{Assignment, Clause, Cnf, Lit};

/// The outcome of propagating unit clauses to a fixed point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropagationResult {
    /// No conflict was found; the assignment contains every implied literal.
    Consistent {
        /// The implied (partial) assignment.
        assignment: Assignment,
        /// Literals assigned by propagation, in propagation order.
        trail: Vec<Lit>,
    },
    /// Propagation falsified a clause; the formula is unsatisfiable under the
    /// initial assignment.
    Conflict {
        /// Index of the falsified clause in the input formula.
        clause_index: usize,
    },
}

/// Propagates all unit clauses of `cnf` starting from `initial` until a fixed
/// point or a conflict.
///
/// This is a simple counting-based implementation (no watched literals): it is
/// intended for preprocessing, not for the solver's inner loop.
pub fn propagate_units(cnf: &Cnf, initial: &Assignment) -> PropagationResult {
    let mut assignment = initial.clone();
    assignment.grow(cnf.num_vars());
    let mut trail = Vec::new();
    loop {
        let mut changed = false;
        for (idx, clause) in cnf.clauses().iter().enumerate() {
            match clause.eval(&assignment) {
                Some(true) => continue,
                Some(false) => return PropagationResult::Conflict { clause_index: idx },
                None => {}
            }
            let unassigned: Vec<Lit> = clause
                .lits()
                .iter()
                .copied()
                .filter(|l| assignment.value(l.var()).is_none())
                .collect();
            if unassigned.len() == 1 {
                let lit = unassigned[0];
                assignment.assign(lit.var(), lit.is_positive());
                trail.push(lit);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    PropagationResult::Consistent { assignment, trail }
}

/// Simplifies `cnf` under a partial assignment: satisfied clauses are dropped
/// and falsified literals are removed from the remaining clauses.
///
/// Returns the simplified formula (over the same variable universe). If a
/// clause becomes empty the result contains that empty clause, signalling
/// unsatisfiability.
pub fn simplify_under(cnf: &Cnf, assignment: &Assignment) -> Cnf {
    let mut out = Cnf::new(cnf.num_vars());
    for clause in cnf.clauses() {
        match clause.eval(assignment) {
            Some(true) => continue,
            _ => {
                let remaining: Clause = clause
                    .lits()
                    .iter()
                    .copied()
                    .filter(|l| assignment.value(l.var()).is_none())
                    .collect();
                out.push_clause(remaining);
            }
        }
    }
    out
}

/// Finds pure literals: variables occurring in only one polarity.
///
/// Assigning a pure literal its occurring polarity never falsifies a clause,
/// so pure literals can be eliminated during preprocessing.
pub fn pure_literals(cnf: &Cnf) -> Vec<Lit> {
    let n = cnf.num_vars();
    let mut pos = vec![false; n];
    let mut neg = vec![false; n];
    for clause in cnf.clauses() {
        for lit in clause.lits() {
            if lit.is_positive() {
                pos[lit.var().as_usize()] = true;
            } else {
                neg[lit.var().as_usize()] = true;
            }
        }
    }
    (0..n)
        .filter_map(|i| {
            let var = crate::Var::from_zero_based(i);
            match (pos[i], neg[i]) {
                (true, false) => Some(var.positive()),
                (false, true) => Some(var.negative()),
                _ => None,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    fn chain_cnf() -> Cnf {
        // x1, x1 -> x2, x2 -> x3
        let mut cnf = Cnf::new(3);
        cnf.add_dimacs_clause([1]);
        cnf.add_dimacs_clause([-1, 2]);
        cnf.add_dimacs_clause([-2, 3]);
        cnf
    }

    #[test]
    fn propagation_follows_implication_chain() {
        let cnf = chain_cnf();
        match propagate_units(&cnf, &Assignment::new(3)) {
            PropagationResult::Consistent { assignment, trail } => {
                assert_eq!(assignment.value(Var::new(1)), Some(true));
                assert_eq!(assignment.value(Var::new(2)), Some(true));
                assert_eq!(assignment.value(Var::new(3)), Some(true));
                assert_eq!(trail.len(), 3);
            }
            other => panic!("unexpected result {other:?}"),
        }
    }

    #[test]
    fn propagation_detects_conflict() {
        let mut cnf = chain_cnf();
        cnf.add_dimacs_clause([-3]);
        match propagate_units(&cnf, &Assignment::new(3)) {
            PropagationResult::Conflict { .. } => {}
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn propagation_respects_initial_assignment() {
        let mut cnf = Cnf::new(2);
        cnf.add_dimacs_clause([-1, 2]);
        let mut initial = Assignment::new(2);
        initial.assign(Var::new(1), true);
        match propagate_units(&cnf, &initial) {
            PropagationResult::Consistent { assignment, .. } => {
                assert_eq!(assignment.value(Var::new(2)), Some(true));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn simplify_removes_satisfied_clauses_and_false_literals() {
        let mut cnf = Cnf::new(3);
        cnf.add_dimacs_clause([1, 2]);
        cnf.add_dimacs_clause([-1, 3]);
        let mut a = Assignment::new(3);
        a.assign(Var::new(1), true);
        let simplified = simplify_under(&cnf, &a);
        assert_eq!(simplified.num_clauses(), 1);
        assert_eq!(simplified.clauses()[0].lits(), [Lit::pos(3)]);
    }

    #[test]
    fn pure_literal_detection() {
        let mut cnf = Cnf::new(3);
        cnf.add_dimacs_clause([1, 2]);
        cnf.add_dimacs_clause([1, -2]);
        cnf.add_dimacs_clause([-3, 2]);
        let pures = pure_literals(&cnf);
        assert!(pures.contains(&Lit::pos(1)));
        assert!(pures.contains(&Lit::neg(3)));
        assert!(!pures.iter().any(|l| l.var() == Var::new(2)));
    }
}
