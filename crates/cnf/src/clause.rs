//! Clauses: disjunctions of literals.

use crate::{Assignment, Lit, Var};
use std::fmt;

/// A clause — a disjunction (OR) of literals.
///
/// Clauses are kept in insertion order; use [`Clause::normalize`] to sort,
/// deduplicate and detect tautologies.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Clause {
    lits: Vec<Lit>,
}

impl Clause {
    /// Creates an empty (unsatisfiable) clause.
    pub fn new() -> Self {
        Clause { lits: Vec::new() }
    }

    /// Creates a clause from literals.
    pub fn from_lits<I: IntoIterator<Item = Lit>>(lits: I) -> Self {
        Clause {
            lits: lits.into_iter().collect(),
        }
    }

    /// Creates a clause from DIMACS integers (`[-1, 2]` is `¬x1 ∨ x2`).
    ///
    /// # Panics
    ///
    /// Panics if any entry is zero.
    pub fn from_dimacs<I: IntoIterator<Item = i64>>(lits: I) -> Self {
        Clause {
            lits: lits.into_iter().map(Lit::from_dimacs).collect(),
        }
    }

    /// The literals of this clause, in insertion order.
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Whether the clause has no literals (and is therefore unsatisfiable).
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Whether the clause contains exactly one literal.
    pub fn is_unit(&self) -> bool {
        self.lits.len() == 1
    }

    /// Adds a literal to the clause.
    pub fn push(&mut self, lit: Lit) {
        self.lits.push(lit);
    }

    /// Returns true if the clause contains the literal.
    pub fn contains(&self, lit: Lit) -> bool {
        self.lits.contains(&lit)
    }

    /// Returns true if the clause mentions the variable in either polarity.
    pub fn mentions(&self, var: Var) -> bool {
        self.lits.iter().any(|l| l.var() == var)
    }

    /// Iterates over the distinct variables of the clause.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        let mut seen = Vec::new();
        self.lits.iter().filter_map(move |l| {
            let v = l.var();
            if seen.contains(&v) {
                None
            } else {
                seen.push(v);
                Some(v)
            }
        })
    }

    /// Sorts and deduplicates literals. Returns `true` if the clause is a
    /// tautology (contains a literal and its negation) and should be dropped.
    pub fn normalize(&mut self) -> bool {
        self.lits.sort_unstable();
        self.lits.dedup();
        self.lits
            .windows(2)
            .any(|w| w[0].var() == w[1].var() && w[0] != w[1])
    }

    /// Evaluates the clause under a complete assignment given as a bit slice
    /// indexed by zero-based variable index.
    ///
    /// # Panics
    ///
    /// Panics if a literal's variable is out of range for `bits`.
    pub fn eval_bits(&self, bits: &[bool]) -> bool {
        self.lits.iter().any(|l| l.eval(bits[l.var().as_usize()]))
    }

    /// Evaluates the clause under a (possibly partial) [`Assignment`].
    ///
    /// Returns `Some(true)` when some literal is satisfied, `Some(false)` when
    /// all literals are falsified, and `None` when undecided.
    pub fn eval(&self, assignment: &Assignment) -> Option<bool> {
        let mut undecided = false;
        for l in &self.lits {
            match assignment.value(l.var()) {
                Some(v) if l.eval(v) => return Some(true),
                Some(_) => {}
                None => undecided = true,
            }
        }
        if undecided {
            None
        } else {
            Some(false)
        }
    }

    /// Iterates over the literals.
    pub fn iter(&self) -> std::slice::Iter<'_, Lit> {
        self.lits.iter()
    }
}

impl FromIterator<Lit> for Clause {
    fn from_iter<I: IntoIterator<Item = Lit>>(iter: I) -> Self {
        Clause::from_lits(iter)
    }
}

impl Extend<Lit> for Clause {
    fn extend<I: IntoIterator<Item = Lit>>(&mut self, iter: I) {
        self.lits.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Clause {
    type Item = &'a Lit;
    type IntoIter = std::slice::Iter<'a, Lit>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.iter()
    }
}

impl IntoIterator for Clause {
    type Item = Lit;
    type IntoIter = std::vec::IntoIter<Lit>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.into_iter()
    }
}

impl fmt::Debug for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "{l:?}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for l in &self.lits {
            write!(f, "{l} ")?;
        }
        write!(f, "0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_bits_or_semantics() {
        let c = Clause::from_dimacs([1, -2]);
        assert!(c.eval_bits(&[true, true]));
        assert!(c.eval_bits(&[false, false]));
        assert!(!c.eval_bits(&[false, true]));
    }

    #[test]
    fn partial_eval_reports_undecided() {
        let c = Clause::from_dimacs([1, 2]);
        let mut a = Assignment::new(2);
        assert_eq!(c.eval(&a), None);
        a.assign(Var::new(1), false);
        assert_eq!(c.eval(&a), None);
        a.assign(Var::new(2), false);
        assert_eq!(c.eval(&a), Some(false));
        a.assign(Var::new(2), true);
        assert_eq!(c.eval(&a), Some(true));
    }

    #[test]
    fn normalize_detects_tautology_and_dedups() {
        let mut c = Clause::from_dimacs([1, -1, 2]);
        assert!(c.normalize());
        let mut c = Clause::from_dimacs([1, 1, 2]);
        assert!(!c.normalize());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn empty_clause_is_falsified() {
        let c = Clause::new();
        assert!(c.is_empty());
        assert!(!c.eval_bits(&[]));
    }

    #[test]
    fn vars_are_deduplicated() {
        let c = Clause::from_dimacs([1, -1, 2]);
        assert_eq!(c.vars().count(), 2);
    }

    #[test]
    fn display_uses_dimacs_form() {
        let c = Clause::from_dimacs([-3, 4]);
        assert_eq!(c.to_string(), "-3 4 0");
    }
}
