//! Error types for the CNF crate.

use std::error::Error;
use std::fmt;

/// Error produced when parsing a DIMACS CNF file fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number at which the error was detected.
    pub line: usize,
    /// Description of the problem.
    pub kind: ParseDimacsErrorKind,
}

/// The specific kind of DIMACS parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseDimacsErrorKind {
    /// The `p cnf <vars> <clauses>` header is malformed.
    BadHeader(String),
    /// A token could not be parsed as an integer literal.
    BadLiteral(String),
    /// A clause was not terminated by `0` before end of input.
    UnterminatedClause,
    /// Clauses appeared before any `p cnf` header.
    MissingHeader,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseDimacsErrorKind::BadHeader(h) => {
                write!(f, "line {}: malformed problem line `{h}`", self.line)
            }
            ParseDimacsErrorKind::BadLiteral(t) => {
                write!(f, "line {}: invalid literal token `{t}`", self.line)
            }
            ParseDimacsErrorKind::UnterminatedClause => {
                write!(f, "line {}: clause not terminated by 0", self.line)
            }
            ParseDimacsErrorKind::MissingHeader => {
                write!(f, "line {}: clause before `p cnf` header", self.line)
            }
        }
    }
}

impl Error for ParseDimacsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_line_number() {
        let e = ParseDimacsError {
            line: 7,
            kind: ParseDimacsErrorKind::BadLiteral("abc".into()),
        };
        assert!(e.to_string().contains("line 7"));
        assert!(e.to_string().contains("abc"));
    }
}
