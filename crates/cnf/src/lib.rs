//! # htsat-cnf
//!
//! Conjunctive normal form (CNF) substrate for the high-throughput SAT
//! sampling library.
//!
//! This crate provides the data model shared by every other crate in the
//! workspace:
//!
//! * [`Var`] and [`Lit`] — variables and literals with a compact integer
//!   encoding,
//! * [`Clause`] — a disjunction of literals,
//! * [`Cnf`] — a conjunction of clauses together with the declared variable
//!   count,
//! * [`Assignment`] — a (possibly partial) mapping from variables to truth
//!   values,
//! * [`Fingerprint`] — a canonical content hash stable under clause and
//!   literal reordering, the registry key of the serving layer,
//! * DIMACS parsing and writing ([`dimacs`]),
//! * unit propagation and formula simplification ([`propagate`]),
//! * bit-wise operation counting in 2-input gate equivalents ([`ops`]), used
//!   by the paper's Fig. 4 "ops reduction" ablation.
//!
//! # Example
//!
//! ```
//! use htsat_cnf::{Cnf, Lit};
//!
//! // (x1 ∨ ¬x2) ∧ (x2)
//! let mut cnf = Cnf::new(2);
//! cnf.add_clause([Lit::pos(1), Lit::neg(2)]);
//! cnf.add_clause([Lit::pos(2)]);
//!
//! let model = [true, true];
//! assert!(cnf.is_satisfied_by_bits(&model));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod clause;
pub mod dimacs;
mod error;
mod fingerprint;
mod formula;
mod lit;
pub mod ops;
pub mod propagate;

pub use assignment::Assignment;
pub use clause::Clause;
pub use error::ParseDimacsError;
pub use fingerprint::{Fingerprint, ParseFingerprintError};
pub use formula::Cnf;
pub use lit::{Lit, Var};
