//! Bit-wise operation counting in 2-input gate equivalents.
//!
//! The paper's Fig. 4 (middle) reports the reduction in the number of bit-wise
//! operations achieved by the CNF-to-circuit transformation, "measured as the
//! number of operations in the CNF divided by the number of operations in the
//! resulting multi-level, multi-output Boolean function in terms of 2-input
//! gate equivalents". This module implements the CNF side of that metric; the
//! circuit side lives in `htsat-logic`'s netlist op counter.

use crate::Cnf;

/// Breakdown of the 2-input gate-equivalent operation count of a CNF formula.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCount {
    /// 2-input OR gates needed to evaluate every clause (`k-1` per clause of
    /// `k` literals).
    pub or_ops: u64,
    /// 2-input AND gates needed to conjoin the clause outputs (`m-1` for `m`
    /// clauses).
    pub and_ops: u64,
    /// Inverters, one per negative literal occurrence.
    pub not_ops: u64,
}

impl OpCount {
    /// Total number of 2-input gate equivalents.
    ///
    /// Inverters are counted as full gates, matching the convention of
    /// counting every bit-wise operation performed during evaluation.
    pub fn total(&self) -> u64 {
        self.or_ops + self.and_ops + self.not_ops
    }

    /// Total excluding inverters, for analyses that treat negation as free
    /// (e.g. AIG-style complemented edges).
    pub fn total_without_inverters(&self) -> u64 {
        self.or_ops + self.and_ops
    }
}

/// Counts the bit-wise operations required to evaluate `cnf` directly, in
/// 2-input gate equivalents.
///
/// # Example
///
/// ```
/// use htsat_cnf::{ops, Cnf};
///
/// let mut cnf = Cnf::new(3);
/// cnf.add_dimacs_clause([1, -2, 3]); // 2 ORs + 1 NOT
/// cnf.add_dimacs_clause([-1, 2]);    // 1 OR + 1 NOT
/// let count = ops::count_cnf_ops(&cnf);
/// assert_eq!(count.or_ops, 3);
/// assert_eq!(count.and_ops, 1);
/// assert_eq!(count.not_ops, 2);
/// ```
pub fn count_cnf_ops(cnf: &Cnf) -> OpCount {
    let mut count = OpCount::default();
    for clause in cnf.clauses() {
        let k = clause.len() as u64;
        count.or_ops += k.saturating_sub(1);
        count.not_ops += clause.lits().iter().filter(|l| l.is_negative()).count() as u64;
    }
    count.and_ops = (cnf.num_clauses() as u64).saturating_sub(1);
    count
}

/// Computes the ops-reduction ratio `cnf_ops / circuit_ops` used in Fig. 4.
///
/// Returns `f64::INFINITY` when the circuit op count is zero (the whole
/// formula collapsed to constants during transformation).
pub fn reduction_ratio(cnf_ops: u64, circuit_ops: u64) -> f64 {
    if circuit_ops == 0 {
        f64::INFINITY
    } else {
        cnf_ops as f64 / circuit_ops as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_formula_has_no_ops() {
        let cnf = Cnf::new(0);
        assert_eq!(count_cnf_ops(&cnf).total(), 0);
    }

    #[test]
    fn single_unit_clause_costs_nothing() {
        let mut cnf = Cnf::new(1);
        cnf.add_dimacs_clause([1]);
        let c = count_cnf_ops(&cnf);
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn counts_scale_with_clause_width() {
        let mut cnf = Cnf::new(4);
        cnf.add_dimacs_clause([1, 2, 3, 4]);
        let c = count_cnf_ops(&cnf);
        assert_eq!(c.or_ops, 3);
        assert_eq!(c.and_ops, 0);
    }

    #[test]
    fn negative_literals_add_inverters() {
        let mut cnf = Cnf::new(2);
        cnf.add_dimacs_clause([-1, -2]);
        assert_eq!(count_cnf_ops(&cnf).not_ops, 2);
    }

    #[test]
    fn reduction_ratio_handles_zero_denominator() {
        assert!(reduction_ratio(10, 0).is_infinite());
        assert!((reduction_ratio(10, 5) - 2.0).abs() < 1e-12);
    }
}
