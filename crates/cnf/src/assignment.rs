//! Partial and complete truth assignments.

use crate::Var;
use std::fmt;

/// A (possibly partial) truth assignment over a fixed variable universe.
///
/// Values are indexed by [`Var`]; unassigned variables report `None`.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Assignment {
    values: Vec<Option<bool>>,
}

impl Assignment {
    /// Creates an all-unassigned assignment for `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Assignment {
            values: vec![None; num_vars],
        }
    }

    /// Creates a complete assignment from a bit slice indexed by zero-based
    /// variable index.
    pub fn from_bits(bits: &[bool]) -> Self {
        Assignment {
            values: bits.iter().map(|&b| Some(b)).collect(),
        }
    }

    /// Number of variables in the universe (assigned or not).
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Number of variables currently assigned.
    pub fn num_assigned(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }

    /// Whether every variable has a value.
    pub fn is_complete(&self) -> bool {
        self.values.iter().all(|v| v.is_some())
    }

    /// The value of `var`, or `None` if unassigned.
    ///
    /// # Panics
    ///
    /// Panics if `var` is outside the universe.
    pub fn value(&self, var: Var) -> Option<bool> {
        self.values[var.as_usize()]
    }

    /// Assigns `value` to `var`, returning the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `var` is outside the universe.
    pub fn assign(&mut self, var: Var, value: bool) -> Option<bool> {
        self.values[var.as_usize()].replace(value)
    }

    /// Removes the value of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is outside the universe.
    pub fn unassign(&mut self, var: Var) {
        self.values[var.as_usize()] = None;
    }

    /// Grows the universe to at least `num_vars` variables.
    pub fn grow(&mut self, num_vars: usize) {
        if num_vars > self.values.len() {
            self.values.resize(num_vars, None);
        }
    }

    /// Converts to a complete bit vector, filling unassigned variables with
    /// `default`.
    pub fn to_bits_or(&self, default: bool) -> Vec<bool> {
        self.values.iter().map(|v| v.unwrap_or(default)).collect()
    }

    /// Converts to a complete bit vector.
    ///
    /// Returns `None` if any variable is unassigned.
    pub fn to_bits(&self) -> Option<Vec<bool>> {
        self.values.iter().copied().collect()
    }

    /// Iterates over `(Var, bool)` pairs of assigned variables.
    pub fn iter(&self) -> impl Iterator<Item = (Var, bool)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|b| (Var::from_zero_based(i), b)))
    }
}

impl fmt::Debug for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Assignment{{")?;
        for (i, v) in self.values.iter().enumerate() {
            let c = match v {
                Some(true) => '1',
                Some(false) => '0',
                None => '-',
            };
            if i > 0 && i % 8 == 0 {
                write!(f, " ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_and_query() {
        let mut a = Assignment::new(3);
        assert_eq!(a.value(Var::new(2)), None);
        assert_eq!(a.assign(Var::new(2), true), None);
        assert_eq!(a.value(Var::new(2)), Some(true));
        assert_eq!(a.assign(Var::new(2), false), Some(true));
        a.unassign(Var::new(2));
        assert_eq!(a.value(Var::new(2)), None);
    }

    #[test]
    fn completeness_tracking() {
        let mut a = Assignment::new(2);
        assert!(!a.is_complete());
        a.assign(Var::new(1), true);
        a.assign(Var::new(2), false);
        assert!(a.is_complete());
        assert_eq!(a.to_bits(), Some(vec![true, false]));
    }

    #[test]
    fn from_bits_round_trips() {
        let bits = vec![true, false, true];
        let a = Assignment::from_bits(&bits);
        assert_eq!(a.to_bits(), Some(bits));
        assert_eq!(a.num_assigned(), 3);
    }

    #[test]
    fn to_bits_or_fills_gaps() {
        let mut a = Assignment::new(3);
        a.assign(Var::new(1), true);
        assert_eq!(a.to_bits_or(false), vec![true, false, false]);
        assert_eq!(a.to_bits(), None);
    }

    #[test]
    fn grow_preserves_existing_values() {
        let mut a = Assignment::new(1);
        a.assign(Var::new(1), true);
        a.grow(4);
        assert_eq!(a.num_vars(), 4);
        assert_eq!(a.value(Var::new(1)), Some(true));
        assert_eq!(a.value(Var::new(4)), None);
    }

    #[test]
    fn iter_yields_only_assigned() {
        let mut a = Assignment::new(3);
        a.assign(Var::new(3), false);
        let pairs: Vec<_> = a.iter().collect();
        assert_eq!(pairs, vec![(Var::new(3), false)]);
    }
}
