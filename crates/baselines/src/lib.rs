//! # htsat-baselines
//!
//! Baseline SAT samplers the paper compares against, re-implemented on top of
//! the workspace's own CDCL, WalkSAT and tensor substrates:
//!
//! * [`CmsGenLike`] — a CDCL solver with randomised polarity and branching,
//!   re-solved with fresh seeds per sample (the CMSGen recipe),
//! * [`UniGenLike`] — XOR-hash-based near-uniform sampling: random parity
//!   constraints partition the solution space and the surviving cell is
//!   enumerated (the UniGen3 recipe, without the approximate-counting
//!   machinery),
//! * [`QuickSamplerLike`] — one seed model plus atomic flips and flip
//!   combinations, validated against the formula,
//! * [`WalkSatSampler`] — repeated stochastic local search from random
//!   starting points,
//! * [`DiffSamplerLike`] — gradient descent directly on the CNF's soft clause
//!   relaxation (the DiffSampler recipe), sharing the tensor backend with the
//!   transformed-circuit sampler so the ablation isolates the effect of the
//!   transformation itself,
//! * [`TransformedGdSampler`] — an adapter exposing the paper's sampler
//!   ([`htsat_core::GdSampler`]) through the common traits.
//!
//! Every sampler participates in the workspace-wide engine API
//! ([`htsat_core::SampleEngine`]): each has a *prepared* engine form
//! ([`CmsGenEngine`], [`UniGenEngine`], [`QuickSamplerEngine`],
//! [`WalkSatEngine`], [`DiffSamplerEngine`] — and
//! [`htsat_core::PreparedFormula`] for the paper's sampler) that mints cheap
//! per-request sessions streaming solutions through
//! [`htsat_runtime::SampleStream`], with explicit seeds, deadlines,
//! stale-limits, cancellation and per-stream statistics. [`engine_by_name`]
//! is the factory a server or benchmark uses to build any of them from its
//! wire name.
//!
//! The historical [`SatSampler`] trait remains as the blocking convenience
//! layer: implementers only provide their engine; [`SatSampler::sample`] is
//! a provided wrapper that prepares the engine and collects its stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cmsgen;
mod diffsampler;
mod gd;
mod quicksampler;
mod unigen;
mod walksat_sampler;
pub mod xor;

pub use cmsgen::{CmsGenConfig, CmsGenEngine, CmsGenLike};
pub use diffsampler::{DiffSamplerConfig, DiffSamplerEngine, DiffSamplerLike};
pub use gd::TransformedGdSampler;
pub use quicksampler::{QuickSamplerConfig, QuickSamplerEngine, QuickSamplerLike};
pub use unigen::{UniGenConfig, UniGenEngine, UniGenLike};
pub use walksat_sampler::{WalkSatEngine, WalkSatSampler};

use htsat_cnf::Cnf;
use htsat_core::{PreparedFormula, SampleEngine, SessionConfig, TransformConfig, TransformError};
use std::time::{Duration, Instant};

/// Canonical engine names, as used on the wire, in the serving registry and
/// by [`engine_by_name`]. The paper's sampler is `"gd"`; the rest are the
/// baselines of the Table II / Fig. 2 comparison.
pub const ENGINE_NAMES: [&str; 6] = [
    "gd",
    "diffsampler",
    "cmsgen",
    "unigen",
    "quicksampler",
    "walksat",
];

/// Resolves an engine name to its canonical `'static` form (the exact
/// strings of [`ENGINE_NAMES`]), or `None` for unknown names.
#[must_use]
pub fn resolve_engine_name(name: &str) -> Option<&'static str> {
    ENGINE_NAMES.iter().find(|&&n| n == name).copied()
}

/// Builds a prepared [`SampleEngine`] for `cnf` from its canonical name.
///
/// This is the one extension point a serving daemon or benchmark needs: any
/// sampler reachable here can be cached per (formula, engine), minted into
/// per-request sessions and streamed over the wire. `transform` is only
/// consulted by the `"gd"` engine (the CNF-to-circuit transformation
/// options); the baselines prepare from the CNF alone.
///
/// # Errors
///
/// Returns [`TransformError::InvalidConfig`] for unknown names and
/// propagates transformation failures of the `"gd"` engine (structurally
/// unsatisfiable formulas).
pub fn engine_by_name(
    name: &str,
    cnf: &Cnf,
    transform: &TransformConfig,
) -> Result<Box<dyn SampleEngine>, TransformError> {
    match resolve_engine_name(name) {
        Some("gd") => Ok(Box::new(PreparedFormula::prepare(cnf, transform)?)),
        Some("diffsampler") => Ok(Box::new(DiffSamplerEngine::prepare(
            cnf,
            DiffSamplerConfig::default(),
        ))),
        Some("cmsgen") => Ok(Box::new(CmsGenEngine::prepare(
            cnf,
            CmsGenConfig::default(),
        ))),
        Some("unigen") => Ok(Box::new(UniGenEngine::prepare(
            cnf,
            UniGenConfig::default(),
        ))),
        Some("quicksampler") => Ok(Box::new(QuickSamplerEngine::prepare(
            cnf,
            QuickSamplerConfig::default(),
        ))),
        Some("walksat") => Ok(Box::new(WalkSatEngine::prepare(
            cnf,
            WalkSatSampler::default().config,
        ))),
        _ => Err(TransformError::InvalidConfig(format!(
            "unknown engine `{name}` (known: {})",
            ENGINE_NAMES.join(", ")
        ))),
    }
}

/// The outcome of one sampling run.
#[derive(Debug, Clone, Default)]
pub struct SampleRun {
    /// Unique satisfying assignments found.
    pub solutions: Vec<Vec<bool>>,
    /// Candidate assignments generated (including invalid and duplicate ones).
    pub attempts: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl SampleRun {
    /// Unique-solution throughput in solutions per second.
    ///
    /// Delegates to [`htsat_runtime::unique_throughput`] — the same clamped
    /// implementation `htsat_core::SampleReport::throughput` uses, so a run
    /// faster than the clock resolution reports the finite bound
    /// `solutions / 1µs` instead of the raw count.
    pub fn throughput(&self) -> f64 {
        htsat_runtime::unique_throughput(self.solutions.len(), self.elapsed)
    }
}

/// A SAT sampler: produces unique satisfying assignments of a CNF formula.
///
/// Implementers describe *how to build their engine* for a formula; the
/// blocking [`SatSampler::sample`] call every benchmark and test drives is a
/// provided wrapper that prepares the engine, mints one session and collects
/// its [`htsat_runtime::SampleStream`].
pub trait SatSampler {
    /// A short name used in benchmark tables (the canonical engine name).
    fn name(&self) -> &'static str;

    /// Prepares this sampler's [`SampleEngine`] for `cnf`.
    ///
    /// # Errors
    ///
    /// Engines with a preparation stage (the transformed-circuit sampler)
    /// propagate its failure; the solver-backed baselines are infallible.
    fn engine(&self, cnf: &Cnf) -> Result<Box<dyn SampleEngine>, TransformError>;

    /// The per-request configuration the blocking wrapper samples with —
    /// by default the sampler's configured seed travels here.
    fn session_config(&self) -> SessionConfig {
        SessionConfig::default()
    }

    /// Samples until `min_solutions` unique solutions are found, `timeout`
    /// elapses, or the engine's stream exhausts (a provided wrapper over the
    /// engine API; the elapsed time *and the timeout* both cover engine
    /// preparation, matching the historical blocking behaviour).
    fn sample(&mut self, cnf: &Cnf, min_solutions: usize, timeout: Duration) -> SampleRun {
        let started = Instant::now();
        let run = self.engine(cnf).and_then(|engine| {
            // `timeout` bounds the whole call, as the historical blocking
            // loops did (their clock started before any preparation):
            // preparation consumes its share first, sampling gets the rest.
            let remaining = timeout.saturating_sub(started.elapsed());
            engine.sample(&self.session_config(), min_solutions, remaining)
        });
        match run {
            Ok(report) => SampleRun {
                solutions: report.solutions,
                attempts: report.attempts,
                elapsed: started.elapsed(),
            },
            Err(_) => SampleRun {
                solutions: Vec::new(),
                attempts: 0,
                elapsed: started.elapsed(),
            },
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use htsat_cnf::Cnf;

    /// A loose formula with many solutions: (x1 ∨ x2)(x3 ∨ ¬x4)(x5 ∨ x6 ∨ x7).
    pub fn loose_cnf() -> Cnf {
        let mut cnf = Cnf::new(7);
        cnf.add_dimacs_clause([1, 2]);
        cnf.add_dimacs_clause([3, -4]);
        cnf.add_dimacs_clause([5, 6, 7]);
        cnf
    }

    /// A gate-structured formula: x3 = x1 AND x2 constrained true, plus a MUX.
    pub fn gate_cnf() -> Cnf {
        let mut cnf = Cnf::new(6);
        // x3 = OR(x1, x2)
        cnf.add_dimacs_clause([-3, 1, 2]);
        cnf.add_dimacs_clause([3, -1]);
        cnf.add_dimacs_clause([3, -2]);
        // x6 = MUX(x3; x4, x5)
        cnf.add_dimacs_clause([-3, -4, 6]);
        cnf.add_dimacs_clause([-3, 4, -6]);
        cnf.add_dimacs_clause([3, -5, 6]);
        cnf.add_dimacs_clause([3, 5, -6]);
        // output constrained
        cnf.add_dimacs_clause([6]);
        cnf
    }

    pub fn assert_valid_unique(run: &super::SampleRun, cnf: &Cnf) {
        let mut seen = std::collections::HashSet::new();
        for s in &run.solutions {
            assert!(cnf.is_satisfied_by_bits(s), "invalid solution returned");
            assert!(seen.insert(s.clone()), "duplicate solution returned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsat_tensor::Backend;

    #[test]
    fn throughput_is_clamped_when_elapsed_rounds_to_zero() {
        let run = SampleRun {
            solutions: vec![vec![true]; 5],
            attempts: 5,
            elapsed: Duration::ZERO,
        };
        // Shares the clamped implementation with SampleReport: a finite
        // rate bounded by the minimum measurable tick, never the raw count.
        let expected = 5.0 / htsat_runtime::MIN_MEASURABLE_TICK.as_secs_f64();
        assert!((run.throughput() - expected).abs() < 1e-3);
        assert!(run.throughput().is_finite());
    }

    #[test]
    fn factory_builds_every_engine() {
        let cnf = test_support::gate_cnf();
        for name in ENGINE_NAMES {
            let engine =
                engine_by_name(name, &cnf, &TransformConfig::default()).expect("known engine");
            assert_eq!(engine.name(), name);
            assert_eq!(engine.cnf().num_vars(), cnf.num_vars());
            let solutions: Vec<Vec<bool>> = engine
                .stream(&SessionConfig::with_seed(5))
                .expect("stream")
                .take(2)
                .collect();
            assert!(!solutions.is_empty(), "engine {name} found nothing");
            for s in &solutions {
                assert!(cnf.is_satisfied_by_bits(s), "engine {name} invalid");
            }
        }
    }

    #[test]
    fn factory_rejects_unknown_names() {
        let cnf = test_support::loose_cnf();
        assert!(engine_by_name("frobnicate", &cnf, &TransformConfig::default()).is_err());
        assert_eq!(resolve_engine_name("walksat"), Some("walksat"));
        assert_eq!(resolve_engine_name("WALKSAT"), None);
    }

    #[test]
    fn every_engine_is_thread_count_deterministic() {
        // The engine contract: a fixed seed reproduces the identical
        // solution sequence at any thread count. Solver-backed baselines
        // ignore the backend; the batched engines use per-row RNG streams.
        let cnf = test_support::gate_cnf();
        for name in ENGINE_NAMES {
            let engine =
                engine_by_name(name, &cnf, &TransformConfig::default()).expect("known engine");
            let run = |threads: usize| -> Vec<Vec<bool>> {
                engine
                    .stream(&SessionConfig {
                        seed: 9,
                        backend: Backend::Threads(threads),
                        batch: None,
                    })
                    .expect("stream")
                    .take(3)
                    .collect()
            };
            assert_eq!(run(1), run(8), "engine {name} depends on thread count");
        }
    }

    #[test]
    fn engine_streams_are_promptly_cancellable() {
        let cnf = test_support::gate_cnf();
        for name in ENGINE_NAMES {
            let engine =
                engine_by_name(name, &cnf, &TransformConfig::default()).expect("known engine");
            let mut stream = engine.stream(&SessionConfig::with_seed(1)).expect("stream");
            stream.stop_token().stop();
            assert_eq!(stream.next(), None, "engine {name} ignored the stop token");
        }
    }
}
