//! # htsat-baselines
//!
//! Baseline SAT samplers the paper compares against, re-implemented on top of
//! the workspace's own CDCL, WalkSAT and tensor substrates:
//!
//! * [`CmsGenLike`] — a CDCL solver with randomised polarity and branching,
//!   re-solved with fresh seeds per sample (the CMSGen recipe),
//! * [`UniGenLike`] — XOR-hash-based near-uniform sampling: random parity
//!   constraints partition the solution space and the surviving cell is
//!   enumerated (the UniGen3 recipe, without the approximate-counting
//!   machinery),
//! * [`QuickSamplerLike`] — one seed model plus atomic flips and flip
//!   combinations, validated against the formula,
//! * [`WalkSatSampler`] — repeated stochastic local search from random
//!   starting points,
//! * [`DiffSamplerLike`] — gradient descent directly on the CNF's soft clause
//!   relaxation (the DiffSampler recipe), sharing the tensor backend with the
//!   transformed-circuit sampler so the ablation isolates the effect of the
//!   transformation itself,
//! * [`TransformedGdSampler`] — an adapter exposing the paper's sampler
//!   ([`htsat_core::GdSampler`]) through the common [`SatSampler`] trait.
//!
//! All samplers implement [`SatSampler`], so the benchmark harness can drive
//! them interchangeably.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cmsgen;
mod diffsampler;
mod gd;
mod quicksampler;
mod unigen;
mod walksat_sampler;
pub mod xor;

pub use cmsgen::CmsGenLike;
pub use diffsampler::DiffSamplerLike;
pub use gd::TransformedGdSampler;
pub use quicksampler::QuickSamplerLike;
pub use unigen::UniGenLike;
pub use walksat_sampler::WalkSatSampler;

use htsat_cnf::Cnf;
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// The outcome of one sampling run.
#[derive(Debug, Clone, Default)]
pub struct SampleRun {
    /// Unique satisfying assignments found.
    pub solutions: Vec<Vec<bool>>,
    /// Candidate assignments generated (including invalid and duplicate ones).
    pub attempts: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl SampleRun {
    /// Unique-solution throughput in solutions per second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return self.solutions.len() as f64;
        }
        self.solutions.len() as f64 / secs
    }
}

/// A SAT sampler: produces unique satisfying assignments of a CNF formula.
pub trait SatSampler {
    /// A short name used in benchmark tables.
    fn name(&self) -> &'static str;

    /// Samples until `min_solutions` unique solutions are found or `timeout`
    /// elapses.
    fn sample(&mut self, cnf: &Cnf, min_solutions: usize, timeout: Duration) -> SampleRun;
}

/// Shared bookkeeping for samplers: deduplication, validation and timing.
pub(crate) struct RunCollector {
    seen: HashSet<Vec<bool>>,
    run: SampleRun,
    start: Instant,
    min_solutions: usize,
    timeout: Duration,
}

impl RunCollector {
    pub(crate) fn new(min_solutions: usize, timeout: Duration) -> Self {
        RunCollector {
            seen: HashSet::new(),
            run: SampleRun::default(),
            start: Instant::now(),
            min_solutions,
            timeout,
        }
    }

    /// Records a candidate assignment; returns `true` if it was a new valid
    /// solution.
    pub(crate) fn offer(&mut self, cnf: &Cnf, bits: Vec<bool>) -> bool {
        self.run.attempts += 1;
        if !cnf.is_satisfied_by_bits(&bits) {
            return false;
        }
        if self.seen.insert(bits.clone()) {
            self.run.solutions.push(bits);
            true
        } else {
            false
        }
    }

    /// Whether the run should stop (target reached or timed out).
    pub(crate) fn done(&self) -> bool {
        self.run.solutions.len() >= self.min_solutions || self.start.elapsed() >= self.timeout
    }

    /// Finalises the run.
    pub(crate) fn finish(mut self) -> SampleRun {
        self.run.elapsed = self.start.elapsed();
        self.run
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use htsat_cnf::Cnf;

    /// A loose formula with many solutions: (x1 ∨ x2)(x3 ∨ ¬x4)(x5 ∨ x6 ∨ x7).
    pub fn loose_cnf() -> Cnf {
        let mut cnf = Cnf::new(7);
        cnf.add_dimacs_clause([1, 2]);
        cnf.add_dimacs_clause([3, -4]);
        cnf.add_dimacs_clause([5, 6, 7]);
        cnf
    }

    /// A gate-structured formula: x3 = x1 AND x2 constrained true, plus a MUX.
    pub fn gate_cnf() -> Cnf {
        let mut cnf = Cnf::new(6);
        // x3 = OR(x1, x2)
        cnf.add_dimacs_clause([-3, 1, 2]);
        cnf.add_dimacs_clause([3, -1]);
        cnf.add_dimacs_clause([3, -2]);
        // x6 = MUX(x3; x4, x5)
        cnf.add_dimacs_clause([-3, -4, 6]);
        cnf.add_dimacs_clause([-3, 4, -6]);
        cnf.add_dimacs_clause([3, -5, 6]);
        cnf.add_dimacs_clause([3, 5, -6]);
        // output constrained
        cnf.add_dimacs_clause([6]);
        cnf
    }

    pub fn assert_valid_unique(run: &super::SampleRun, cnf: &Cnf) {
        let mut seen = std::collections::HashSet::new();
        for s in &run.solutions {
            assert!(cnf.is_satisfied_by_bits(s), "invalid solution returned");
            assert!(seen.insert(s.clone()), "duplicate solution returned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_handles_zero_elapsed() {
        let run = SampleRun {
            solutions: vec![vec![true]],
            attempts: 1,
            elapsed: Duration::ZERO,
        };
        assert_eq!(run.throughput(), 1.0);
    }

    #[test]
    fn collector_deduplicates_and_validates() {
        let cnf = test_support::loose_cnf();
        let mut collector = RunCollector::new(10, Duration::from_secs(1));
        let valid = vec![true, false, true, false, true, false, false];
        let invalid = vec![false; 7];
        assert!(collector.offer(&cnf, valid.clone()));
        assert!(!collector.offer(&cnf, valid));
        assert!(!collector.offer(&cnf, invalid));
        let run = collector.finish();
        assert_eq!(run.solutions.len(), 1);
        assert_eq!(run.attempts, 3);
    }

    #[test]
    fn collector_stops_at_target() {
        let cnf = test_support::loose_cnf();
        let mut collector = RunCollector::new(1, Duration::from_secs(60));
        assert!(!collector.done());
        collector.offer(&cnf, vec![true, false, true, false, true, false, false]);
        assert!(collector.done());
    }
}
