//! DiffSampler-style sampler: gradient descent directly on the CNF.
//!
//! DiffSampler (DAC 2024 late-breaking results) relaxes every *clause* of the
//! CNF into a soft OR over literal probabilities and minimises the distance
//! of all clause values from 1 with a GPU-accelerated optimiser. It is the
//! closest prior work to the paper's sampler but skips the CNF-to-circuit
//! transformation, so comparing the two isolates the transformation's
//! contribution. [`DiffSamplerLike`] builds the soft-CNF model on the same
//! tensor backend used by the transformed-circuit sampler.
//!
//! [`DiffSamplerEngine`] is the prepare-once form: the soft-CNF circuit is
//! built a single time and shared by every minted session, mirroring how
//! [`htsat_core::PreparedFormula`] shares its compiled circuit.

use crate::SatSampler;
use htsat_cnf::Cnf;
use htsat_core::{BoxedSession, SampleEngine, SessionConfig, TransformError};
use htsat_runtime::{derive_stream_seed, RoundSource, StopToken};
use htsat_tensor::{ops, Backend, BatchMatrix, MemoryModel, SoftCircuit, SoftGate};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Configuration of the DiffSampler-style sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffSamplerConfig {
    /// Batch size (independent candidates learned in parallel).
    pub batch_size: usize,
    /// Gradient-descent iterations per round.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Execution backend.
    pub backend: Backend,
    /// RNG seed.
    pub seed: u64,
    /// Scale of the uniform logit initialisation.
    pub init_scale: f32,
}

impl Default for DiffSamplerConfig {
    fn default() -> Self {
        DiffSamplerConfig {
            batch_size: 256,
            iterations: 20,
            learning_rate: 2.0,
            backend: Backend::default(),
            seed: 0,
            init_scale: 2.0,
        }
    }
}

/// A DiffSampler-style differentiable CNF sampler.
#[derive(Debug, Clone, Default)]
pub struct DiffSamplerLike {
    config: DiffSamplerConfig,
}

impl DiffSamplerLike {
    /// Creates a sampler with default configuration.
    pub fn new() -> Self {
        DiffSamplerLike::default()
    }

    /// Creates a sampler with an explicit configuration.
    pub fn with_config(config: DiffSamplerConfig) -> Self {
        DiffSamplerLike { config }
    }

    /// Builds the soft-CNF circuit: one OR node per clause, each constrained
    /// to 1, with literal polarity handled by NOT nodes.
    fn build_soft_cnf(cnf: &Cnf) -> SoftCircuit {
        let n = cnf.num_vars();
        let mut circuit = SoftCircuit::new(n);
        let inputs: Vec<usize> = (0..n).map(|i| circuit.input(i)).collect();
        let mut negated: Vec<Option<usize>> = vec![None; n];
        for clause in cnf.clauses() {
            let mut fanin = Vec::with_capacity(clause.len());
            for lit in clause.lits() {
                let v = lit.var().as_usize();
                if lit.is_positive() {
                    fanin.push(inputs[v]);
                } else {
                    let node = match negated[v] {
                        Some(node) => node,
                        None => {
                            let node = circuit.gate(SoftGate::Not, vec![inputs[v]]);
                            negated[v] = Some(node);
                            node
                        }
                    };
                    fanin.push(node);
                }
            }
            let clause_node = if fanin.len() == 1 {
                fanin[0]
            } else {
                circuit.gate(SoftGate::Or, fanin)
            };
            circuit.constrain(clause_node, 1.0);
        }
        circuit
    }
}

impl SatSampler for DiffSamplerLike {
    fn name(&self) -> &'static str {
        "diffsampler"
    }

    fn engine(&self, cnf: &Cnf) -> Result<Box<dyn SampleEngine>, TransformError> {
        Ok(Box::new(DiffSamplerEngine::prepare(
            cnf,
            self.config.clone(),
        )))
    }

    fn session_config(&self) -> SessionConfig {
        SessionConfig {
            seed: self.config.seed,
            backend: self.config.backend,
            batch: None,
        }
    }
}

/// The prepared DiffSampler-style engine: the soft-CNF circuit, built once
/// and shared (behind an [`Arc`]) with every minted session.
#[derive(Debug, Clone)]
pub struct DiffSamplerEngine {
    cnf: Arc<Cnf>,
    circuit: Arc<SoftCircuit>,
    config: DiffSamplerConfig,
}

impl DiffSamplerEngine {
    /// Builds the soft clause relaxation of `cnf` (`config.seed` and
    /// `config.backend` are ignored: sessions take both from their
    /// [`SessionConfig`]).
    #[must_use]
    pub fn prepare(cnf: &Cnf, config: DiffSamplerConfig) -> Self {
        DiffSamplerEngine {
            circuit: Arc::new(DiffSamplerLike::build_soft_cnf(cnf)),
            cnf: Arc::new(cnf.clone()),
            config,
        }
    }
}

impl SampleEngine for DiffSamplerEngine {
    fn name(&self) -> &'static str {
        "diffsampler"
    }

    fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    fn session(&self, config: &SessionConfig) -> Result<BoxedSession, TransformError> {
        let batch_size = config.batch.unwrap_or(self.config.batch_size);
        if batch_size == 0 {
            return Err(TransformError::InvalidConfig(
                "batch size must be non-zero".into(),
            ));
        }
        Ok(Box::new(DiffSamplerSession {
            cnf: self.cnf.clone(),
            circuit: self.circuit.clone(),
            config: DiffSamplerConfig {
                batch_size,
                backend: config.backend,
                seed: config.seed,
                ..self.config.clone()
            },
            rng: SmallRng::seed_from_u64(config.seed),
            last_attempts: 0,
        }))
    }

    fn memory_model(&self, batch: usize, workers: usize) -> MemoryModel {
        // The staged soft-CNF path keeps the cloned probability matrix and
        // the gradient matrix resident per iteration, like the reference
        // kernel of the transformed sampler.
        MemoryModel::new(self.cnf.num_vars(), self.circuit.num_nodes(), batch)
            .with_workers(workers)
            .with_staged_matrices(2)
    }

    fn artifact_dims(&self) -> Vec<(&'static str, usize)> {
        vec![("nodes", self.circuit.num_nodes())]
    }
}

/// One request's descent state: per-round logit initialisation from per-row
/// RNG streams (thread-count independent, like the transformed sampler).
struct DiffSamplerSession {
    cnf: Arc<Cnf>,
    circuit: Arc<SoftCircuit>,
    config: DiffSamplerConfig,
    rng: SmallRng,
    /// Candidates the most recent round actually hardened (zero when a stop
    /// token abandoned the descent mid-round), reported via `round_size`.
    last_attempts: usize,
}

impl RoundSource for DiffSamplerSession {
    type Item = Vec<bool>;

    fn round(&mut self, stop: &StopToken) -> Vec<Vec<bool>> {
        self.last_attempts = 0;
        let n = self.cnf.num_vars();
        let scale = self.config.init_scale;
        // Per-row RNG streams, like the transformed sampler: the drawn
        // candidates depend on (seed, row) only, never on how the
        // backend schedules the batch across threads.
        let round_seed: u64 = self.rng.gen();
        let mut logits = BatchMatrix::zeros(self.config.batch_size, n);
        self.config
            .backend
            .for_each_row(logits.as_mut_slice(), n, |b, row| {
                let mut row_rng = SmallRng::seed_from_u64(derive_stream_seed(round_seed, b));
                for v in row.iter_mut() {
                    *v = row_rng.gen_range(-scale..=scale);
                }
                0.0
            });
        for _ in 0..self.config.iterations {
            if stop.is_stopped() {
                return Vec::new();
            }
            let mut probs = logits.clone();
            probs.map_inplace(ops::sigmoid);
            let (_loss, grad_p) = self
                .circuit
                .loss_and_input_grads(&probs, self.config.backend);
            let mut grad_v = grad_p;
            for (g, &p) in grad_v
                .as_mut_slice()
                .iter_mut()
                .zip(probs.as_slice().iter())
            {
                *g *= ops::sigmoid_grad_from_output(p);
            }
            logits.saxpy_neg(self.config.learning_rate, &grad_v);
        }
        self.last_attempts = self.config.batch_size;
        (0..self.config.batch_size)
            .map(|b| {
                logits
                    .row(b)
                    .iter()
                    .map(|&v| v > 0.0)
                    .collect::<Vec<bool>>()
            })
            .filter(|bits| self.cnf.is_satisfied_by_bits(bits))
            .collect()
    }

    fn round_size(&self) -> usize {
        self.last_attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{assert_valid_unique, gate_cnf, loose_cnf};
    use std::time::Duration;

    #[test]
    fn soft_cnf_loss_is_zero_exactly_on_models() {
        let cnf = gate_cnf();
        let circuit = DiffSamplerLike::build_soft_cnf(&cnf);
        let n = cnf.num_vars();
        for mask in 0..(1u32 << n) {
            let bits: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 == 1).collect();
            let probs = BatchMatrix::from_fn(1, n, |_, c| if bits[c] { 1.0 } else { 0.0 });
            let (loss, _) = circuit.loss_and_input_grads(&probs, Backend::Sequential);
            assert_eq!(
                loss < 1e-9,
                cnf.is_satisfied_by_bits(&bits),
                "mask {mask:b}"
            );
        }
    }

    #[test]
    fn samples_loose_formula() {
        let cnf = loose_cnf();
        let mut sampler = DiffSamplerLike::new();
        let run = sampler.sample(&cnf, 10, Duration::from_secs(10));
        assert!(run.solutions.len() >= 5, "found {}", run.solutions.len());
        assert_valid_unique(&run, &cnf);
    }

    #[test]
    fn respects_gate_constraints() {
        let cnf = gate_cnf();
        let run = DiffSamplerLike::new().sample(&cnf, 5, Duration::from_secs(10));
        assert!(!run.solutions.is_empty());
        assert_valid_unique(&run, &cnf);
    }

    #[test]
    fn engine_sessions_are_deterministic_across_thread_counts() {
        let cnf = gate_cnf();
        let engine = DiffSamplerEngine::prepare(&cnf, DiffSamplerConfig::default());
        let take = |threads: usize| -> Vec<Vec<bool>> {
            engine
                .stream(&SessionConfig {
                    seed: 5,
                    backend: Backend::Threads(threads),
                    batch: Some(64),
                })
                .expect("stream")
                .take(4)
                .collect()
        };
        assert_eq!(take(1), take(4));
    }
}
