//! DiffSampler-style sampler: gradient descent directly on the CNF.
//!
//! DiffSampler (DAC 2024 late-breaking results) relaxes every *clause* of the
//! CNF into a soft OR over literal probabilities and minimises the distance
//! of all clause values from 1 with a GPU-accelerated optimiser. It is the
//! closest prior work to the paper's sampler but skips the CNF-to-circuit
//! transformation, so comparing the two isolates the transformation's
//! contribution. [`DiffSamplerLike`] builds the soft-CNF model on the same
//! tensor backend used by the transformed-circuit sampler.

use crate::{RunCollector, SampleRun, SatSampler};
use htsat_cnf::Cnf;
use htsat_runtime::derive_stream_seed;
use htsat_tensor::{ops, Backend, BatchMatrix, SoftCircuit, SoftGate};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Configuration of the DiffSampler-style sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffSamplerConfig {
    /// Batch size (independent candidates learned in parallel).
    pub batch_size: usize,
    /// Gradient-descent iterations per round.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Execution backend.
    pub backend: Backend,
    /// RNG seed.
    pub seed: u64,
    /// Scale of the uniform logit initialisation.
    pub init_scale: f32,
}

impl Default for DiffSamplerConfig {
    fn default() -> Self {
        DiffSamplerConfig {
            batch_size: 256,
            iterations: 20,
            learning_rate: 2.0,
            backend: Backend::default(),
            seed: 0,
            init_scale: 2.0,
        }
    }
}

/// A DiffSampler-style differentiable CNF sampler.
#[derive(Debug, Clone, Default)]
pub struct DiffSamplerLike {
    config: DiffSamplerConfig,
}

impl DiffSamplerLike {
    /// Creates a sampler with default configuration.
    pub fn new() -> Self {
        DiffSamplerLike::default()
    }

    /// Creates a sampler with an explicit configuration.
    pub fn with_config(config: DiffSamplerConfig) -> Self {
        DiffSamplerLike { config }
    }

    /// Builds the soft-CNF circuit: one OR node per clause, each constrained
    /// to 1, with literal polarity handled by NOT nodes.
    fn build_soft_cnf(cnf: &Cnf) -> SoftCircuit {
        let n = cnf.num_vars();
        let mut circuit = SoftCircuit::new(n);
        let inputs: Vec<usize> = (0..n).map(|i| circuit.input(i)).collect();
        let mut negated: Vec<Option<usize>> = vec![None; n];
        for clause in cnf.clauses() {
            let mut fanin = Vec::with_capacity(clause.len());
            for lit in clause.lits() {
                let v = lit.var().as_usize();
                if lit.is_positive() {
                    fanin.push(inputs[v]);
                } else {
                    let node = match negated[v] {
                        Some(node) => node,
                        None => {
                            let node = circuit.gate(SoftGate::Not, vec![inputs[v]]);
                            negated[v] = Some(node);
                            node
                        }
                    };
                    fanin.push(node);
                }
            }
            let clause_node = if fanin.len() == 1 {
                fanin[0]
            } else {
                circuit.gate(SoftGate::Or, fanin)
            };
            circuit.constrain(clause_node, 1.0);
        }
        circuit
    }
}

impl SatSampler for DiffSamplerLike {
    fn name(&self) -> &'static str {
        "diffsampler-like"
    }

    fn sample(&mut self, cnf: &Cnf, min_solutions: usize, timeout: Duration) -> SampleRun {
        let mut collector = RunCollector::new(min_solutions, timeout);
        let circuit = Self::build_soft_cnf(cnf);
        let n = cnf.num_vars();
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        while !collector.done() {
            let scale = self.config.init_scale;
            // Per-row RNG streams, like the transformed sampler: the drawn
            // candidates depend on (seed, row) only, never on how the
            // backend schedules the batch across threads.
            let round_seed: u64 = rng.gen();
            let mut logits = BatchMatrix::zeros(self.config.batch_size, n);
            self.config
                .backend
                .for_each_row(logits.as_mut_slice(), n, |b, row| {
                    let mut row_rng = SmallRng::seed_from_u64(derive_stream_seed(round_seed, b));
                    for v in row.iter_mut() {
                        *v = row_rng.gen_range(-scale..=scale);
                    }
                    0.0
                });
            for _ in 0..self.config.iterations {
                let mut probs = logits.clone();
                probs.map_inplace(ops::sigmoid);
                let (_loss, grad_p) = circuit.loss_and_input_grads(&probs, self.config.backend);
                let mut grad_v = grad_p;
                for (g, &p) in grad_v
                    .as_mut_slice()
                    .iter_mut()
                    .zip(probs.as_slice().iter())
                {
                    *g *= ops::sigmoid_grad_from_output(p);
                }
                logits.saxpy_neg(self.config.learning_rate, &grad_v);
            }
            for b in 0..self.config.batch_size {
                let bits: Vec<bool> = logits.row(b).iter().map(|&v| v > 0.0).collect();
                collector.offer(cnf, bits);
                if collector.done() {
                    break;
                }
            }
        }
        collector.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{assert_valid_unique, gate_cnf, loose_cnf};

    #[test]
    fn soft_cnf_loss_is_zero_exactly_on_models() {
        let cnf = gate_cnf();
        let circuit = DiffSamplerLike::build_soft_cnf(&cnf);
        let n = cnf.num_vars();
        for mask in 0..(1u32 << n) {
            let bits: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 == 1).collect();
            let probs = BatchMatrix::from_fn(1, n, |_, c| if bits[c] { 1.0 } else { 0.0 });
            let (loss, _) = circuit.loss_and_input_grads(&probs, Backend::Sequential);
            assert_eq!(
                loss < 1e-9,
                cnf.is_satisfied_by_bits(&bits),
                "mask {mask:b}"
            );
        }
    }

    #[test]
    fn samples_loose_formula() {
        let cnf = loose_cnf();
        let mut sampler = DiffSamplerLike::new();
        let run = sampler.sample(&cnf, 10, Duration::from_secs(10));
        assert!(run.solutions.len() >= 5, "found {}", run.solutions.len());
        assert_valid_unique(&run, &cnf);
    }

    #[test]
    fn respects_gate_constraints() {
        let cnf = gate_cnf();
        let run = DiffSamplerLike::new().sample(&cnf, 5, Duration::from_secs(10));
        assert!(!run.solutions.is_empty());
        assert_valid_unique(&run, &cnf);
    }
}
