//! QuickSampler-style sampler: a seed model plus atomic flips and their
//! combinations.
//!
//! QuickSampler (ICSE 2018) derives many candidate samples from few solver
//! calls by flipping individual variables of a known solution ("atomic
//! mutations") and combining successful flips, validating candidates against
//! the formula. [`QuickSamplerLike`] follows the same recipe with our CDCL
//! solver providing the seed models.

use crate::{RunCollector, SampleRun, SatSampler};
use htsat_cnf::Cnf;
use htsat_solver::{CdclConfig, CdclSolver, SolveResult};
use rand::rngs::SmallRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};
use std::time::Duration;

/// Configuration of the QuickSampler-style sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct QuickSamplerConfig {
    /// RNG seed.
    pub seed: u64,
    /// Maximum number of successful atomic flips combined per seed model.
    pub max_combined_flips: usize,
}

impl Default for QuickSamplerConfig {
    fn default() -> Self {
        QuickSamplerConfig {
            seed: 0,
            max_combined_flips: 64,
        }
    }
}

/// A QuickSampler-style mutation-based sampler.
#[derive(Debug, Clone, Default)]
pub struct QuickSamplerLike {
    config: QuickSamplerConfig,
}

impl QuickSamplerLike {
    /// Creates a sampler with default configuration.
    pub fn new() -> Self {
        QuickSamplerLike::default()
    }

    /// Creates a sampler with an explicit configuration.
    pub fn with_config(config: QuickSamplerConfig) -> Self {
        QuickSamplerLike { config }
    }
}

impl SatSampler for QuickSamplerLike {
    fn name(&self) -> &'static str {
        "quicksampler-like"
    }

    fn sample(&mut self, cnf: &Cnf, min_solutions: usize, timeout: Duration) -> SampleRun {
        let mut collector = RunCollector::new(min_solutions, timeout);
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let occurring: Vec<usize> = cnf.occurring_vars().iter().map(|v| v.as_usize()).collect();
        let mut round = 0u64;
        'outer: while !collector.done() {
            round += 1;
            if round > 10_000 {
                break;
            }
            // Obtain a fresh seed model with randomised polarities.
            let mut solver = CdclSolver::with_config(
                cnf,
                CdclConfig {
                    random_polarity: true,
                    seed: self.config.seed.wrapping_add(round),
                    max_conflicts: Some(200_000),
                    ..CdclConfig::default()
                },
            );
            let base = match solver.solve() {
                SolveResult::Sat(model) => model,
                SolveResult::Unsat => break,
                SolveResult::Unknown => continue,
            };
            collector.offer(cnf, base.clone());
            if collector.done() {
                break;
            }
            // Atomic mutations: flip one occurring variable at a time.
            let mut successful_flips = Vec::new();
            let mut order = occurring.clone();
            order.shuffle(&mut rng);
            for &idx in &order {
                let mut candidate = base.clone();
                candidate[idx] = !candidate[idx];
                if collector.offer(cnf, candidate) {
                    successful_flips.push(idx);
                }
                if collector.done() {
                    break 'outer;
                }
            }
            // Combine random subsets of the successful flips.
            let combos = successful_flips.len().min(self.config.max_combined_flips);
            for _ in 0..combos {
                let mut candidate = base.clone();
                for &idx in &successful_flips {
                    if rng.gen_bool(0.5) {
                        candidate[idx] = !candidate[idx];
                    }
                }
                collector.offer(cnf, candidate);
                if collector.done() {
                    break 'outer;
                }
            }
        }
        collector.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{assert_valid_unique, gate_cnf, loose_cnf};

    #[test]
    fn generates_many_unique_solutions_cheaply() {
        let cnf = loose_cnf();
        let mut sampler = QuickSamplerLike::new();
        let run = sampler.sample(&cnf, 20, Duration::from_secs(5));
        assert!(run.solutions.len() >= 10, "found {}", run.solutions.len());
        assert_valid_unique(&run, &cnf);
    }

    #[test]
    fn respects_gate_constraints() {
        let cnf = gate_cnf();
        let run = QuickSamplerLike::new().sample(&cnf, 5, Duration::from_secs(5));
        assert!(!run.solutions.is_empty());
        assert_valid_unique(&run, &cnf);
    }

    #[test]
    fn unsat_formula_yields_nothing() {
        let mut cnf = Cnf::new(1);
        cnf.add_dimacs_clause([1]);
        cnf.add_dimacs_clause([-1]);
        let run = QuickSamplerLike::new().sample(&cnf, 3, Duration::from_secs(2));
        assert!(run.solutions.is_empty());
    }
}
