//! UniGen3-style sampler: XOR hashing plus in-cell enumeration.
//!
//! UniGen3 partitions the solution space into roughly equal cells with random
//! parity constraints and enumerates one random cell, which yields
//! almost-uniform samples. [`UniGenLike`] follows the same recipe on our CDCL
//! solver: it adapts the number of XOR constraints so cells stay enumerable,
//! enumerates a cell per round and pools the unique solutions. The
//! approximate model-counting machinery of the real tool is replaced by the
//! adaptive cell-size feedback loop, which preserves the performance
//! characteristics that matter to the paper's comparison (CPU-bound CDCL
//! enumeration per sample batch).

use crate::{xor, RunCollector, SampleRun, SatSampler};
use htsat_cnf::{Cnf, Var};
use htsat_solver::{enumerate, CdclConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Duration;

/// Configuration of the UniGen-style sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct UniGenConfig {
    /// Maximum number of models enumerated inside one cell.
    pub cell_capacity: usize,
    /// Initial number of XOR constraints.
    pub initial_xors: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Conflict budget per enumeration call.
    pub max_conflicts_per_call: Option<u64>,
}

impl Default for UniGenConfig {
    fn default() -> Self {
        UniGenConfig {
            cell_capacity: 64,
            initial_xors: 2,
            seed: 0,
            max_conflicts_per_call: Some(200_000),
        }
    }
}

/// A UniGen3-style hash-based sampler.
#[derive(Debug, Clone, Default)]
pub struct UniGenLike {
    config: UniGenConfig,
}

impl UniGenLike {
    /// Creates a sampler with default configuration.
    pub fn new() -> Self {
        UniGenLike::default()
    }

    /// Creates a sampler with an explicit configuration.
    pub fn with_config(config: UniGenConfig) -> Self {
        UniGenLike { config }
    }
}

impl SatSampler for UniGenLike {
    fn name(&self) -> &'static str {
        "unigen-like"
    }

    fn sample(&mut self, cnf: &Cnf, min_solutions: usize, timeout: Duration) -> SampleRun {
        let mut collector = RunCollector::new(min_solutions, timeout);
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let pool: Vec<Var> = cnf.occurring_vars();
        let projection: Vec<Var> = pool.clone();
        let mut num_xors = self.config.initial_xors;
        let mut round = 0usize;
        while !collector.done() {
            round += 1;
            if round > 10_000 {
                break;
            }
            // Build the hashed formula: original CNF plus random parity
            // constraints over the occurring variables.
            let mut hashed = cnf.clone();
            xor::add_random_parity_constraints(&mut hashed, &pool, num_xors, &mut rng);
            let budget = enumerate::EnumerationBudget {
                max_models: self.config.cell_capacity + 1,
                max_conflicts_per_call: self.config.max_conflicts_per_call,
            };
            let result = enumerate::enumerate_models(
                &hashed,
                &projection,
                budget,
                CdclConfig {
                    seed: self.config.seed.wrapping_add(round as u64),
                    ..CdclConfig::default()
                },
            );
            let cell_size = result.models.len();
            for model in result.models {
                // Project back onto the original universe (drop XOR auxiliaries).
                let projected: Vec<bool> = model[..cnf.num_vars()].to_vec();
                collector.offer(cnf, projected);
                if collector.done() {
                    break;
                }
            }
            // Adapt the hash strength: empty cells mean too many XORs,
            // overflowing cells mean too few.
            if cell_size == 0 && num_xors > 0 {
                num_xors -= 1;
            } else if cell_size > self.config.cell_capacity {
                num_xors += 1;
            } else if cell_size == 0 && num_xors == 0 {
                // The formula itself is unsatisfiable.
                break;
            }
        }
        collector.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{assert_valid_unique, gate_cnf, loose_cnf};

    #[test]
    fn samples_valid_unique_solutions() {
        let cnf = loose_cnf();
        let mut sampler = UniGenLike::new();
        let run = sampler.sample(&cnf, 10, Duration::from_secs(10));
        assert!(run.solutions.len() >= 5, "found {}", run.solutions.len());
        assert_valid_unique(&run, &cnf);
    }

    #[test]
    fn respects_gate_constraints() {
        let cnf = gate_cnf();
        let mut sampler = UniGenLike::new();
        let run = sampler.sample(&cnf, 5, Duration::from_secs(10));
        assert!(!run.solutions.is_empty());
        assert_valid_unique(&run, &cnf);
    }

    #[test]
    fn unsat_formula_yields_nothing() {
        let mut cnf = Cnf::new(2);
        cnf.add_dimacs_clause([1]);
        cnf.add_dimacs_clause([-1]);
        let run = UniGenLike::new().sample(&cnf, 3, Duration::from_secs(3));
        assert!(run.solutions.is_empty());
    }

    #[test]
    fn sampling_distribution_covers_most_of_a_small_space() {
        // x1 ∨ x2 over 3 variables: 6 solutions on occurring vars (x3 free is
        // not occurring, so the projection has 3 solutions).
        let mut cnf = Cnf::new(2);
        cnf.add_dimacs_clause([1, 2]);
        let run = UniGenLike::new().sample(&cnf, 3, Duration::from_secs(10));
        assert!(run.solutions.len() >= 2);
        assert_valid_unique(&run, &cnf);
    }
}
