//! UniGen3-style sampler: XOR hashing plus in-cell enumeration.
//!
//! UniGen3 partitions the solution space into roughly equal cells with random
//! parity constraints and enumerates one random cell, which yields
//! almost-uniform samples. [`UniGenLike`] follows the same recipe on our CDCL
//! solver: it adapts the number of XOR constraints so cells stay enumerable,
//! enumerates a cell per round and pools the unique solutions. The
//! approximate model-counting machinery of the real tool is replaced by the
//! adaptive cell-size feedback loop, which preserves the performance
//! characteristics that matter to the paper's comparison (CPU-bound CDCL
//! enumeration per sample batch). [`UniGenEngine`] exposes the recipe
//! through the engine API: one session round is one hashed-cell enumeration.

use crate::{xor, SatSampler};
use htsat_cnf::{Cnf, Var};
use htsat_core::{BoxedSession, SampleEngine, SessionConfig, TransformError};
use htsat_runtime::{RoundSource, StopToken};
use htsat_solver::{enumerate, CdclConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Hard ceiling on hashed-cell rounds per session, matching the historical
/// blocking loop's bound — a stuck adaptive loop must terminate even without
/// a deadline.
const MAX_ROUNDS: usize = 10_000;

/// Configuration of the UniGen-style sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct UniGenConfig {
    /// Maximum number of models enumerated inside one cell.
    pub cell_capacity: usize,
    /// Initial number of XOR constraints.
    pub initial_xors: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Conflict budget per enumeration call.
    pub max_conflicts_per_call: Option<u64>,
}

impl Default for UniGenConfig {
    fn default() -> Self {
        UniGenConfig {
            cell_capacity: 64,
            initial_xors: 2,
            seed: 0,
            max_conflicts_per_call: Some(200_000),
        }
    }
}

/// A UniGen3-style hash-based sampler.
#[derive(Debug, Clone, Default)]
pub struct UniGenLike {
    config: UniGenConfig,
}

impl UniGenLike {
    /// Creates a sampler with default configuration.
    pub fn new() -> Self {
        UniGenLike::default()
    }

    /// Creates a sampler with an explicit configuration.
    pub fn with_config(config: UniGenConfig) -> Self {
        UniGenLike { config }
    }
}

impl SatSampler for UniGenLike {
    fn name(&self) -> &'static str {
        "unigen"
    }

    fn engine(&self, cnf: &Cnf) -> Result<Box<dyn SampleEngine>, TransformError> {
        Ok(Box::new(UniGenEngine::prepare(cnf, self.config.clone())))
    }

    fn session_config(&self) -> SessionConfig {
        SessionConfig::with_seed(self.config.seed)
    }
}

/// The prepared UniGen-style engine: the formula, its occurring-variable
/// pool (computed once) and the hashing parameters.
#[derive(Debug, Clone)]
pub struct UniGenEngine {
    cnf: Arc<Cnf>,
    pool: Arc<Vec<Var>>,
    config: UniGenConfig,
}

impl UniGenEngine {
    /// Prepares the engine for `cnf` (`config.seed` is ignored: sessions
    /// seed from their [`SessionConfig`]).
    #[must_use]
    pub fn prepare(cnf: &Cnf, config: UniGenConfig) -> Self {
        UniGenEngine {
            pool: Arc::new(cnf.occurring_vars()),
            cnf: Arc::new(cnf.clone()),
            config,
        }
    }
}

impl SampleEngine for UniGenEngine {
    fn name(&self) -> &'static str {
        "unigen"
    }

    fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    fn session(&self, config: &SessionConfig) -> Result<BoxedSession, TransformError> {
        Ok(Box::new(UniGenSession {
            cnf: self.cnf.clone(),
            pool: self.pool.clone(),
            config: self.config.clone(),
            rng: SmallRng::seed_from_u64(config.seed),
            seed: config.seed,
            num_xors: self.config.initial_xors,
            round: 0,
            done: false,
            last_cell: 0,
        }))
    }
}

/// One request's hashing state: the parity-constraint RNG, the adaptive XOR
/// count and the round counter (which also seeds the per-cell enumeration).
struct UniGenSession {
    cnf: Arc<Cnf>,
    pool: Arc<Vec<Var>>,
    config: UniGenConfig,
    rng: SmallRng,
    seed: u64,
    num_xors: usize,
    round: usize,
    done: bool,
    /// Models the most recent cell actually enumerated (the per-round
    /// attempt count varies with the hash strength), reported via
    /// `round_size`.
    last_cell: usize,
}

impl RoundSource for UniGenSession {
    type Item = Vec<bool>;

    fn round(&mut self, stop: &StopToken) -> Vec<Vec<bool>> {
        self.last_cell = 0;
        if self.done || stop.is_stopped() {
            return Vec::new();
        }
        self.round += 1;
        if self.round > MAX_ROUNDS {
            self.done = true;
            return Vec::new();
        }
        // Build the hashed formula: original CNF plus random parity
        // constraints over the occurring variables.
        let mut hashed = (*self.cnf).clone();
        xor::add_random_parity_constraints(&mut hashed, &self.pool, self.num_xors, &mut self.rng);
        let budget = enumerate::EnumerationBudget {
            max_models: self.config.cell_capacity + 1,
            max_conflicts_per_call: self.config.max_conflicts_per_call,
        };
        let result = enumerate::enumerate_models(
            &hashed,
            &self.pool,
            budget,
            CdclConfig {
                seed: self.seed.wrapping_add(self.round as u64),
                ..CdclConfig::default()
            },
        );
        let cell_size = result.models.len();
        self.last_cell = cell_size;
        let batch: Vec<Vec<bool>> = result
            .models
            .into_iter()
            .map(|model| model[..self.cnf.num_vars()].to_vec())
            .filter(|projected| self.cnf.is_satisfied_by_bits(projected))
            .collect();
        // Adapt the hash strength: empty cells mean too many XORs,
        // overflowing cells mean too few.
        if cell_size == 0 && self.num_xors > 0 {
            self.num_xors -= 1;
        } else if cell_size > self.config.cell_capacity {
            self.num_xors += 1;
        } else if cell_size == 0 && self.num_xors == 0 {
            // The formula itself is unsatisfiable.
            self.done = true;
        }
        batch
    }

    fn round_size(&self) -> usize {
        self.last_cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{assert_valid_unique, gate_cnf, loose_cnf};
    use std::time::Duration;

    #[test]
    fn samples_valid_unique_solutions() {
        let cnf = loose_cnf();
        let mut sampler = UniGenLike::new();
        let run = sampler.sample(&cnf, 10, Duration::from_secs(10));
        assert!(run.solutions.len() >= 5, "found {}", run.solutions.len());
        assert_valid_unique(&run, &cnf);
    }

    #[test]
    fn respects_gate_constraints() {
        let cnf = gate_cnf();
        let mut sampler = UniGenLike::new();
        let run = sampler.sample(&cnf, 5, Duration::from_secs(10));
        assert!(!run.solutions.is_empty());
        assert_valid_unique(&run, &cnf);
    }

    #[test]
    fn unsat_formula_yields_nothing() {
        let mut cnf = Cnf::new(2);
        cnf.add_dimacs_clause([1]);
        cnf.add_dimacs_clause([-1]);
        let run = UniGenLike::new().sample(&cnf, 3, Duration::from_secs(3));
        assert!(run.solutions.is_empty());
    }

    #[test]
    fn sampling_distribution_covers_most_of_a_small_space() {
        // x1 ∨ x2 over 3 variables: 6 solutions on occurring vars (x3 free is
        // not occurring, so the projection has 3 solutions).
        let mut cnf = Cnf::new(2);
        cnf.add_dimacs_clause([1, 2]);
        let run = UniGenLike::new().sample(&cnf, 3, Duration::from_secs(10));
        assert!(run.solutions.len() >= 2);
        assert_valid_unique(&run, &cnf);
    }

    #[test]
    fn engine_sessions_are_seed_deterministic() {
        let cnf = loose_cnf();
        let engine = UniGenEngine::prepare(&cnf, UniGenConfig::default());
        let take = |seed: u64| -> Vec<Vec<bool>> {
            engine
                .stream(&SessionConfig::with_seed(seed))
                .expect("stream")
                .take(4)
                .collect()
        };
        assert_eq!(take(13), take(13));
    }
}
