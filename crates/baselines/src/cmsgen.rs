//! CMSGen-style sampler: CDCL with randomised heuristics.
//!
//! CMSGen ("Designing Samplers is Easy: The Boon of Testers", FMCAD 2021) is
//! CryptoMiniSat with random polarities, random branching and frequent
//! restarts, re-run once per requested sample. [`CmsGenLike`] is the same
//! recipe on top of this workspace's CDCL solver, exposed through the
//! engine API by [`CmsGenEngine`].

use crate::SatSampler;
use htsat_cnf::Cnf;
use htsat_core::{BoxedSession, SampleEngine, SessionConfig, TransformError};
use htsat_runtime::{RoundSource, StopToken};
use htsat_solver::{CdclConfig, CdclSolver, SolveResult};
use std::sync::Arc;

/// Re-seeded CDCL solves per [`RoundSource::round`] call — the granularity
/// at which deadlines and stop tokens are checked by the stream.
const SOLVES_PER_ROUND: usize = 8;

/// Configuration of the CMSGen-style sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct CmsGenConfig {
    /// Probability of a random branching decision.
    pub random_branch_freq: f64,
    /// Base seed; each sample uses `seed + sample_index`.
    pub seed: u64,
    /// Conflict budget per sample (`None` = unlimited).
    pub max_conflicts_per_sample: Option<u64>,
}

impl Default for CmsGenConfig {
    fn default() -> Self {
        CmsGenConfig {
            random_branch_freq: 0.2,
            seed: 0,
            max_conflicts_per_sample: Some(100_000),
        }
    }
}

/// A CMSGen-style diverse-solution sampler.
#[derive(Debug, Clone, Default)]
pub struct CmsGenLike {
    config: CmsGenConfig,
}

impl CmsGenLike {
    /// Creates a sampler with default configuration.
    pub fn new() -> Self {
        CmsGenLike::default()
    }

    /// Creates a sampler with an explicit configuration.
    pub fn with_config(config: CmsGenConfig) -> Self {
        CmsGenLike { config }
    }
}

impl SatSampler for CmsGenLike {
    fn name(&self) -> &'static str {
        "cmsgen"
    }

    fn engine(&self, cnf: &Cnf) -> Result<Box<dyn SampleEngine>, TransformError> {
        Ok(Box::new(CmsGenEngine::prepare(cnf, self.config.clone())))
    }

    fn session_config(&self) -> SessionConfig {
        SessionConfig::with_seed(self.config.seed)
    }
}

/// The prepared CMSGen-style engine: the formula plus the randomised-CDCL
/// parameters.
#[derive(Debug, Clone)]
pub struct CmsGenEngine {
    cnf: Arc<Cnf>,
    config: CmsGenConfig,
}

impl CmsGenEngine {
    /// Prepares the engine for `cnf` (`config.seed` is ignored: sessions
    /// seed from their [`SessionConfig`]).
    #[must_use]
    pub fn prepare(cnf: &Cnf, config: CmsGenConfig) -> Self {
        CmsGenEngine {
            cnf: Arc::new(cnf.clone()),
            config,
        }
    }
}

impl SampleEngine for CmsGenEngine {
    fn name(&self) -> &'static str {
        "cmsgen"
    }

    fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    fn session(&self, config: &SessionConfig) -> Result<BoxedSession, TransformError> {
        let solver_config = CdclConfig {
            random_polarity: true,
            random_branch_freq: self.config.random_branch_freq,
            seed: config.seed,
            max_conflicts: self.config.max_conflicts_per_sample,
            ..CdclConfig::default()
        };
        Ok(Box::new(CmsGenSession {
            solver: CdclSolver::with_config(&self.cnf, solver_config),
            seed: config.seed,
            solve: 0,
            done: false,
            last_attempts: 0,
        }))
    }
}

/// One request's solver state. The solver is created once per session and
/// re-seeded per solve (solve `i` uses `session_seed + i`), so learned
/// clauses accumulate across solves exactly as in the blocking recipe and
/// the model sequence is a function of the seed alone.
struct CmsGenSession {
    solver: CdclSolver,
    seed: u64,
    solve: u64,
    done: bool,
    /// Solves the most recent round actually performed (cancellation and
    /// the unsat short-circuit cut rounds short), reported via `round_size`.
    last_attempts: usize,
}

impl RoundSource for CmsGenSession {
    type Item = Vec<bool>;

    fn round(&mut self, stop: &StopToken) -> Vec<Vec<bool>> {
        let mut batch = Vec::new();
        self.last_attempts = 0;
        if self.done {
            return batch;
        }
        for _ in 0..SOLVES_PER_ROUND {
            if stop.is_stopped() {
                break;
            }
            self.solve += 1;
            self.last_attempts += 1;
            self.solver.reseed(self.seed.wrapping_add(self.solve));
            match self.solver.solve() {
                SolveResult::Sat(model) => batch.push(model),
                // Unsat is final: report nothing and let the stream's stale
                // limit end the request without re-solving forever.
                SolveResult::Unsat => {
                    self.done = true;
                    break;
                }
                // Conflict budget exhausted: count the attempt, try the
                // next seed.
                SolveResult::Unknown => {}
            }
        }
        batch
    }

    fn round_size(&self) -> usize {
        self.last_attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{assert_valid_unique, gate_cnf, loose_cnf};
    use std::time::Duration;

    #[test]
    fn finds_diverse_solutions_on_loose_formula() {
        let cnf = loose_cnf();
        let mut sampler = CmsGenLike::new();
        let run = sampler.sample(&cnf, 10, Duration::from_secs(5));
        assert!(run.solutions.len() >= 5, "found {}", run.solutions.len());
        assert_valid_unique(&run, &cnf);
    }

    #[test]
    fn respects_gate_constraints() {
        let cnf = gate_cnf();
        let mut sampler = CmsGenLike::new();
        let run = sampler.sample(&cnf, 5, Duration::from_secs(5));
        assert!(!run.solutions.is_empty());
        assert_valid_unique(&run, &cnf);
    }

    #[test]
    fn unsat_formula_returns_no_solutions() {
        let mut cnf = Cnf::new(1);
        cnf.add_dimacs_clause([1]);
        cnf.add_dimacs_clause([-1]);
        let run = CmsGenLike::new().sample(&cnf, 5, Duration::from_secs(2));
        assert!(run.solutions.is_empty());
    }

    #[test]
    fn stops_once_solution_space_is_exhausted() {
        // Exactly two solutions: x1 xor x2.
        let mut cnf = Cnf::new(2);
        cnf.add_dimacs_clause([1, 2]);
        cnf.add_dimacs_clause([-1, -2]);
        let run = CmsGenLike::new().sample(&cnf, 100, Duration::from_secs(5));
        assert!(run.solutions.len() <= 2);
        assert!(!run.solutions.is_empty());
    }

    #[test]
    fn engine_sessions_are_seed_deterministic() {
        let cnf = loose_cnf();
        let engine = CmsGenEngine::prepare(&cnf, CmsGenConfig::default());
        let take = |seed: u64| -> Vec<Vec<bool>> {
            engine
                .stream(&SessionConfig::with_seed(seed))
                .expect("stream")
                .take(4)
                .collect()
        };
        assert_eq!(take(7), take(7));
    }
}
