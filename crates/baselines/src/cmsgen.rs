//! CMSGen-style sampler: CDCL with randomised heuristics.
//!
//! CMSGen ("Designing Samplers is Easy: The Boon of Testers", FMCAD 2021) is
//! CryptoMiniSat with random polarities, random branching and frequent
//! restarts, re-run once per requested sample. [`CmsGenLike`] is the same
//! recipe on top of this workspace's CDCL solver.

use crate::{RunCollector, SampleRun, SatSampler};
use htsat_cnf::Cnf;
use htsat_solver::{CdclConfig, CdclSolver, SolveResult};
use std::time::Duration;

/// Configuration of the CMSGen-style sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct CmsGenConfig {
    /// Probability of a random branching decision.
    pub random_branch_freq: f64,
    /// Base seed; each sample uses `seed + sample_index`.
    pub seed: u64,
    /// Conflict budget per sample (`None` = unlimited).
    pub max_conflicts_per_sample: Option<u64>,
}

impl Default for CmsGenConfig {
    fn default() -> Self {
        CmsGenConfig {
            random_branch_freq: 0.2,
            seed: 0,
            max_conflicts_per_sample: Some(100_000),
        }
    }
}

/// A CMSGen-style diverse-solution sampler.
#[derive(Debug, Clone, Default)]
pub struct CmsGenLike {
    config: CmsGenConfig,
}

impl CmsGenLike {
    /// Creates a sampler with default configuration.
    pub fn new() -> Self {
        CmsGenLike::default()
    }

    /// Creates a sampler with an explicit configuration.
    pub fn with_config(config: CmsGenConfig) -> Self {
        CmsGenLike { config }
    }
}

impl SatSampler for CmsGenLike {
    fn name(&self) -> &'static str {
        "cmsgen-like"
    }

    fn sample(&mut self, cnf: &Cnf, min_solutions: usize, timeout: Duration) -> SampleRun {
        let mut collector = RunCollector::new(min_solutions, timeout);
        let solver_config = CdclConfig {
            random_polarity: true,
            random_branch_freq: self.config.random_branch_freq,
            seed: self.config.seed,
            max_conflicts: self.config.max_conflicts_per_sample,
            ..CdclConfig::default()
        };
        let mut solver = CdclSolver::with_config(cnf, solver_config);
        let mut round = 0u64;
        let mut consecutive_failures = 0u32;
        while !collector.done() {
            round += 1;
            solver.reseed(self.config.seed.wrapping_add(round));
            match solver.solve() {
                SolveResult::Sat(model) => {
                    let fresh = collector.offer(cnf, model);
                    consecutive_failures = if fresh { 0 } else { consecutive_failures + 1 };
                    // A long streak of duplicates means the solution space is
                    // likely exhausted for this heuristic: stop early.
                    if consecutive_failures > 200 {
                        break;
                    }
                }
                SolveResult::Unsat => break,
                SolveResult::Unknown => {
                    consecutive_failures += 1;
                    if consecutive_failures > 10 {
                        break;
                    }
                }
            }
        }
        collector.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{assert_valid_unique, gate_cnf, loose_cnf};

    #[test]
    fn finds_diverse_solutions_on_loose_formula() {
        let cnf = loose_cnf();
        let mut sampler = CmsGenLike::new();
        let run = sampler.sample(&cnf, 10, Duration::from_secs(5));
        assert!(run.solutions.len() >= 5, "found {}", run.solutions.len());
        assert_valid_unique(&run, &cnf);
    }

    #[test]
    fn respects_gate_constraints() {
        let cnf = gate_cnf();
        let mut sampler = CmsGenLike::new();
        let run = sampler.sample(&cnf, 5, Duration::from_secs(5));
        assert!(!run.solutions.is_empty());
        assert_valid_unique(&run, &cnf);
    }

    #[test]
    fn unsat_formula_returns_no_solutions() {
        let mut cnf = Cnf::new(1);
        cnf.add_dimacs_clause([1]);
        cnf.add_dimacs_clause([-1]);
        let run = CmsGenLike::new().sample(&cnf, 5, Duration::from_secs(2));
        assert!(run.solutions.is_empty());
    }

    #[test]
    fn stops_once_solution_space_is_exhausted() {
        // Exactly two solutions: x1 xor x2.
        let mut cnf = Cnf::new(2);
        cnf.add_dimacs_clause([1, 2]);
        cnf.add_dimacs_clause([-1, -2]);
        let run = CmsGenLike::new().sample(&cnf, 100, Duration::from_secs(5));
        assert!(run.solutions.len() <= 2);
        assert!(!run.solutions.is_empty());
    }
}
