//! WalkSAT-based sampler: repeated stochastic local search from random
//! starting assignments.

use crate::SatSampler;
use htsat_cnf::Cnf;
use htsat_core::{BoxedSession, SampleEngine, SessionConfig, TransformError};
use htsat_runtime::{RoundSource, StopToken};
use htsat_solver::walksat::{walksat, WalkSatConfig, WalkSatResult};
use std::sync::Arc;

/// WalkSAT restarts attempted per [`RoundSource::round`] call. Small enough
/// that deadlines and stop tokens are honoured promptly, large enough that
/// the stream's per-round bookkeeping is amortised.
const RUNS_PER_ROUND: usize = 8;

/// A sampler drawing solutions from independent WalkSAT runs.
#[derive(Debug, Clone)]
pub struct WalkSatSampler {
    /// WalkSAT parameters used for each run (the seed is varied per run).
    pub config: WalkSatConfig,
}

impl Default for WalkSatSampler {
    fn default() -> Self {
        WalkSatSampler {
            config: WalkSatConfig {
                max_flips: 20_000,
                noise: 0.5,
                seed: 0,
            },
        }
    }
}

impl WalkSatSampler {
    /// Creates a sampler with default WalkSAT parameters.
    pub fn new() -> Self {
        WalkSatSampler::default()
    }
}

impl SatSampler for WalkSatSampler {
    fn name(&self) -> &'static str {
        "walksat"
    }

    fn engine(&self, cnf: &Cnf) -> Result<Box<dyn SampleEngine>, TransformError> {
        Ok(Box::new(WalkSatEngine::prepare(cnf, self.config)))
    }

    fn session_config(&self) -> SessionConfig {
        SessionConfig::with_seed(self.config.seed)
    }
}

/// The prepared WalkSAT engine: the formula plus the per-run local-search
/// parameters. Preparation is trivially cheap — the value of the engine form
/// is the shared streaming surface (seeds, deadlines, cancellation, stats).
#[derive(Debug, Clone)]
pub struct WalkSatEngine {
    cnf: Arc<Cnf>,
    config: WalkSatConfig,
}

impl WalkSatEngine {
    /// Prepares the engine for `cnf` with the given per-run parameters
    /// (`config.seed` is ignored: sessions seed from their
    /// [`SessionConfig`]).
    #[must_use]
    pub fn prepare(cnf: &Cnf, config: WalkSatConfig) -> Self {
        WalkSatEngine {
            cnf: Arc::new(cnf.clone()),
            config,
        }
    }
}

impl SampleEngine for WalkSatEngine {
    fn name(&self) -> &'static str {
        "walksat"
    }

    fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    fn session(&self, config: &SessionConfig) -> Result<BoxedSession, TransformError> {
        Ok(Box::new(WalkSatSession {
            cnf: self.cnf.clone(),
            config: WalkSatConfig {
                seed: config.seed,
                ..self.config
            },
            run: 0,
            last_attempts: 0,
        }))
    }
}

/// One request's WalkSAT state: run `i` restarts the local search with seed
/// `session_seed + i` (a function of the seed alone, so the sequence is
/// deterministic and thread-count independent).
struct WalkSatSession {
    cnf: Arc<Cnf>,
    config: WalkSatConfig,
    run: u64,
    /// Restarts the most recent round actually performed (a stop token can
    /// cut a round short), reported via `round_size`.
    last_attempts: usize,
}

impl RoundSource for WalkSatSession {
    type Item = Vec<bool>;

    fn round(&mut self, stop: &StopToken) -> Vec<Vec<bool>> {
        let mut batch = Vec::new();
        self.last_attempts = 0;
        for _ in 0..RUNS_PER_ROUND {
            if stop.is_stopped() {
                break;
            }
            self.run += 1;
            self.last_attempts += 1;
            let config = WalkSatConfig {
                seed: self.config.seed.wrapping_add(self.run),
                ..self.config
            };
            if let WalkSatResult::Sat(model) = walksat(&self.cnf, config) {
                batch.push(model);
            }
        }
        batch
    }

    fn round_size(&self) -> usize {
        self.last_attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{assert_valid_unique, gate_cnf, loose_cnf};
    use crate::SatSampler;
    use std::time::Duration;

    #[test]
    fn samples_loose_formula() {
        let cnf = loose_cnf();
        let run = WalkSatSampler::new().sample(&cnf, 10, Duration::from_secs(5));
        assert!(run.solutions.len() >= 5, "found {}", run.solutions.len());
        assert_valid_unique(&run, &cnf);
    }

    #[test]
    fn respects_gate_constraints() {
        let cnf = gate_cnf();
        let run = WalkSatSampler::new().sample(&cnf, 5, Duration::from_secs(5));
        assert!(!run.solutions.is_empty());
        assert_valid_unique(&run, &cnf);
    }

    #[test]
    fn engine_sessions_are_seed_deterministic() {
        let cnf = loose_cnf();
        let engine = WalkSatEngine::prepare(&cnf, WalkSatSampler::default().config);
        let take = |seed: u64| -> Vec<Vec<bool>> {
            engine
                .stream(&SessionConfig::with_seed(seed))
                .expect("stream")
                .take(4)
                .collect()
        };
        assert_eq!(take(3), take(3));
        assert_ne!(take(3), take(4));
    }
}
