//! WalkSAT-based sampler: repeated stochastic local search from random
//! starting assignments.

use crate::{RunCollector, SampleRun, SatSampler};
use htsat_cnf::Cnf;
use htsat_solver::walksat::{walksat, WalkSatConfig, WalkSatResult};
use std::time::Duration;

/// A sampler drawing solutions from independent WalkSAT runs.
#[derive(Debug, Clone)]
pub struct WalkSatSampler {
    /// WalkSAT parameters used for each run (the seed is varied per run).
    pub config: WalkSatConfig,
}

impl Default for WalkSatSampler {
    fn default() -> Self {
        WalkSatSampler {
            config: WalkSatConfig {
                max_flips: 20_000,
                noise: 0.5,
                seed: 0,
            },
        }
    }
}

impl WalkSatSampler {
    /// Creates a sampler with default WalkSAT parameters.
    pub fn new() -> Self {
        WalkSatSampler::default()
    }
}

impl SatSampler for WalkSatSampler {
    fn name(&self) -> &'static str {
        "walksat"
    }

    fn sample(&mut self, cnf: &Cnf, min_solutions: usize, timeout: Duration) -> SampleRun {
        let mut collector = RunCollector::new(min_solutions, timeout);
        let mut round = 0u64;
        let mut consecutive_failures = 0u32;
        while !collector.done() {
            round += 1;
            let config = WalkSatConfig {
                seed: self.config.seed.wrapping_add(round),
                ..self.config
            };
            match walksat(cnf, config) {
                WalkSatResult::Sat(model) => {
                    let fresh = collector.offer(cnf, model);
                    consecutive_failures = if fresh { 0 } else { consecutive_failures + 1 };
                }
                WalkSatResult::Exhausted { best, .. } => {
                    // The best assignment seen is still invalid; record the
                    // attempt (it will be rejected by validation).
                    collector.offer(cnf, best);
                    consecutive_failures += 1;
                }
            }
            if consecutive_failures > 100 {
                break;
            }
        }
        collector.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{assert_valid_unique, gate_cnf, loose_cnf};

    #[test]
    fn samples_loose_formula() {
        let cnf = loose_cnf();
        let run = WalkSatSampler::new().sample(&cnf, 10, Duration::from_secs(5));
        assert!(run.solutions.len() >= 5, "found {}", run.solutions.len());
        assert_valid_unique(&run, &cnf);
    }

    #[test]
    fn respects_gate_constraints() {
        let cnf = gate_cnf();
        let run = WalkSatSampler::new().sample(&cnf, 5, Duration::from_secs(5));
        assert!(!run.solutions.is_empty());
        assert_valid_unique(&run, &cnf);
    }
}
