//! Adapter exposing the paper's transformed-circuit sampler through the
//! common [`SatSampler`] trait, so the benchmark harness can drive it next to
//! the baselines.

use crate::{SampleRun, SatSampler};
use htsat_cnf::Cnf;
use htsat_core::{GdSampler, SamplerConfig};
use std::time::Duration;

/// The paper's gradient-descent sampler behind the [`SatSampler`] trait.
#[derive(Debug, Clone, Default)]
pub struct TransformedGdSampler {
    /// Configuration forwarded to [`GdSampler`].
    pub config: SamplerConfig,
}

impl TransformedGdSampler {
    /// Creates an adapter with the default sampler configuration.
    pub fn new() -> Self {
        TransformedGdSampler::default()
    }

    /// Creates an adapter with an explicit configuration.
    pub fn with_config(config: SamplerConfig) -> Self {
        TransformedGdSampler { config }
    }
}

impl SatSampler for TransformedGdSampler {
    fn name(&self) -> &'static str {
        "transformed-gd"
    }

    fn sample(&mut self, cnf: &Cnf, min_solutions: usize, timeout: Duration) -> SampleRun {
        let start = std::time::Instant::now();
        match GdSampler::new(cnf, self.config.clone()) {
            Ok(mut sampler) => {
                let report = sampler.sample(min_solutions, timeout);
                SampleRun {
                    solutions: report.solutions,
                    attempts: report.attempts,
                    elapsed: start.elapsed(),
                }
            }
            Err(_) => SampleRun {
                solutions: Vec::new(),
                attempts: 0,
                elapsed: start.elapsed(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{assert_valid_unique, gate_cnf, loose_cnf};

    #[test]
    fn adapter_samples_valid_solutions() {
        let cnf = gate_cnf();
        let mut sampler = TransformedGdSampler::new();
        let run = sampler.sample(&cnf, 5, Duration::from_secs(10));
        assert!(!run.solutions.is_empty());
        assert_valid_unique(&run, &cnf);
    }

    #[test]
    fn adapter_handles_loose_formulas() {
        let cnf = loose_cnf();
        let run = TransformedGdSampler::new().sample(&cnf, 10, Duration::from_secs(10));
        assert!(run.solutions.len() >= 5);
        assert_valid_unique(&run, &cnf);
    }

    #[test]
    fn unsatisfiable_input_yields_empty_run() {
        let mut cnf = Cnf::new(1);
        cnf.add_dimacs_clause([1]);
        cnf.add_dimacs_clause([-1]);
        let run = TransformedGdSampler::new().sample(&cnf, 3, Duration::from_secs(2));
        assert!(run.solutions.is_empty());
    }
}
