//! Adapter exposing the paper's transformed-circuit sampler through the
//! common sampler traits, so the benchmark harness can drive it next to
//! the baselines.

use crate::SatSampler;
use htsat_cnf::Cnf;
use htsat_core::{PreparedFormula, SampleEngine, SamplerConfig, SessionConfig, TransformError};

/// The paper's gradient-descent sampler behind the [`SatSampler`] trait.
///
/// The engine it prepares is [`htsat_core::PreparedFormula`] itself (the
/// native `"gd"` implementation of [`SampleEngine`]), with this adapter's
/// [`SamplerConfig`] installed as the session template — so GD-specific
/// knobs (kernel choice, iterations, learning rate, batch size) ride along
/// while seed and backend come from the per-request [`SessionConfig`].
#[derive(Debug, Clone, Default)]
pub struct TransformedGdSampler {
    /// Configuration forwarded to the minted samplers.
    pub config: SamplerConfig,
}

impl TransformedGdSampler {
    /// Creates an adapter with the default sampler configuration.
    pub fn new() -> Self {
        TransformedGdSampler::default()
    }

    /// Creates an adapter with an explicit configuration.
    pub fn with_config(config: SamplerConfig) -> Self {
        TransformedGdSampler { config }
    }
}

impl SatSampler for TransformedGdSampler {
    fn name(&self) -> &'static str {
        "gd"
    }

    fn engine(&self, cnf: &Cnf) -> Result<Box<dyn SampleEngine>, TransformError> {
        let prepared = PreparedFormula::prepare(cnf, &self.config.transform)?
            .with_template(self.config.clone());
        Ok(Box::new(prepared))
    }

    fn session_config(&self) -> SessionConfig {
        SessionConfig {
            seed: self.config.seed,
            backend: self.config.backend,
            batch: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{assert_valid_unique, gate_cnf, loose_cnf};
    use std::time::Duration;

    #[test]
    fn adapter_samples_valid_solutions() {
        let cnf = gate_cnf();
        let mut sampler = TransformedGdSampler::new();
        let run = sampler.sample(&cnf, 5, Duration::from_secs(10));
        assert!(!run.solutions.is_empty());
        assert_valid_unique(&run, &cnf);
    }

    #[test]
    fn adapter_handles_loose_formulas() {
        let cnf = loose_cnf();
        let run = TransformedGdSampler::new().sample(&cnf, 10, Duration::from_secs(10));
        assert!(run.solutions.len() >= 5);
        assert_valid_unique(&run, &cnf);
    }

    #[test]
    fn unsatisfiable_input_yields_empty_run() {
        let mut cnf = Cnf::new(1);
        cnf.add_dimacs_clause([1]);
        cnf.add_dimacs_clause([-1]);
        let run = TransformedGdSampler::new().sample(&cnf, 3, Duration::from_secs(2));
        assert!(run.solutions.is_empty());
    }

    #[test]
    fn adapter_engine_matches_the_native_sampler_bit_for_bit() {
        // The engine path must reproduce GdSampler::stream exactly: the
        // adapter adds no sampling logic of its own.
        let cnf = gate_cnf();
        let config = SamplerConfig {
            seed: 17,
            batch_size: 64,
            ..SamplerConfig::default()
        };
        let engine = TransformedGdSampler::with_config(config.clone())
            .engine(&cnf)
            .expect("engine");
        let via_engine: Vec<Vec<bool>> = engine
            .stream(&SessionConfig::with_seed(17))
            .expect("stream")
            .take(4)
            .collect();
        let mut native = htsat_core::GdSampler::new(&cnf, config).expect("native");
        let direct: Vec<Vec<bool>> = native.stream().take(4).collect();
        assert_eq!(via_engine, direct);
    }
}
