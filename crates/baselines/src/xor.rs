//! CNF encoding of random XOR (parity) constraints.
//!
//! UniGen-style hash-based samplers partition the solution space with random
//! parity constraints `x_{i1} ⊕ … ⊕ x_{ik} = b`. A parity constraint over `k`
//! variables has `2^{k-1}` clauses when encoded directly, so long constraints
//! are chained through fresh auxiliary variables three literals at a time.

use htsat_cnf::{Cnf, Lit, Var};
use rand::Rng;

/// Maximum number of variables encoded in a single direct parity block before
/// chaining through an auxiliary variable.
const CHUNK: usize = 3;

/// Adds the clauses of the parity constraint `⊕ vars = rhs` to `cnf`,
/// introducing auxiliary variables as needed.
///
/// An empty constraint with `rhs = true` adds an empty clause (the constraint
/// `0 = 1` is unsatisfiable); with `rhs = false` it adds nothing.
pub fn add_parity_constraint(cnf: &mut Cnf, vars: &[Var], rhs: bool) {
    if vars.is_empty() {
        if rhs {
            cnf.push_clause(htsat_cnf::Clause::new());
        }
        return;
    }
    // Chain: t0 = vars[0..CHUNK] parity, then t_{i+1} = t_i ⊕ next chunk, and
    // finally constrain the last accumulator to rhs.
    let mut acc: Vec<Var> = Vec::new();
    let mut remaining: Vec<Var> = vars.to_vec();
    while !remaining.is_empty() {
        let take = if acc.is_empty() {
            CHUNK.min(remaining.len())
        } else {
            (CHUNK - 1).min(remaining.len())
        };
        let mut block: Vec<Var> = acc.clone();
        block.extend(remaining.drain(..take));
        if remaining.is_empty() {
            // Final block: parity of block equals rhs.
            encode_parity_block(cnf, &block, rhs);
            return;
        }
        // Introduce an accumulator t with t = parity(block), i.e.
        // parity(block ∪ {t}) = 0.
        let t = cnf.fresh_var();
        let mut with_t = block.clone();
        with_t.push(t);
        encode_parity_block(cnf, &with_t, false);
        acc = vec![t];
    }
}

/// Directly encodes `⊕ block = rhs` with `2^{k-1}` clauses (small `k` only).
fn encode_parity_block(cnf: &mut Cnf, block: &[Var], rhs: bool) {
    let k = block.len();
    assert!(k <= 6, "direct parity block too wide");
    // Forbid every assignment whose parity differs from rhs: for each such
    // assignment add the clause that excludes it.
    for mask in 0u32..(1 << k) {
        let parity = (mask.count_ones() % 2 == 1) != rhs;
        if parity {
            // mask has the wrong parity: exclude it.
            let lits: Vec<Lit> = block
                .iter()
                .enumerate()
                .map(|(i, &v)| Lit::new(v, (mask >> i) & 1 == 0))
                .collect();
            cnf.add_clause(lits);
        }
    }
}

/// Adds `count` random parity constraints over the given variable pool, each
/// including every pool variable independently with probability 1/2 and a
/// random right-hand side.
pub fn add_random_parity_constraints<R: Rng>(
    cnf: &mut Cnf,
    pool: &[Var],
    count: usize,
    rng: &mut R,
) {
    for _ in 0..count {
        let vars: Vec<Var> = pool.iter().copied().filter(|_| rng.gen_bool(0.5)).collect();
        let rhs = rng.gen_bool(0.5);
        add_parity_constraint(cnf, &vars, rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parity_of(bits: &[bool], vars: &[Var]) -> bool {
        vars.iter().fold(false, |acc, v| acc ^ bits[v.as_usize()])
    }

    #[test]
    fn direct_block_encodes_exact_parity() {
        for rhs in [false, true] {
            let mut cnf = Cnf::new(3);
            let vars: Vec<Var> = (1..=3).map(Var::new).collect();
            add_parity_constraint(&mut cnf, &vars, rhs);
            for mask in 0..8u32 {
                let bits: Vec<bool> = (0..3).map(|i| (mask >> i) & 1 == 1).collect();
                let expected = parity_of(&bits, &vars) == rhs;
                assert_eq!(
                    cnf.is_satisfied_by_bits(&bits),
                    expected,
                    "mask {mask} rhs {rhs}"
                );
            }
        }
    }

    #[test]
    fn chained_constraint_preserves_parity_semantics() {
        // 7 variables forces chaining through auxiliaries.
        let n = 7usize;
        for rhs in [false, true] {
            let mut cnf = Cnf::new(n);
            let vars: Vec<Var> = (1..=n as u32).map(Var::new).collect();
            add_parity_constraint(&mut cnf, &vars, rhs);
            let aux = cnf.num_vars() - n;
            assert!(aux > 0, "chaining should add auxiliaries");
            // For every original assignment the constraint must be satisfiable
            // (by some auxiliary completion) exactly when the parity matches.
            for mask in 0..(1u32 << n) {
                let bits: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 == 1).collect();
                let expected = parity_of(&bits, &vars) == rhs;
                // Search auxiliary assignments exhaustively (aux is small).
                let mut satisfiable = false;
                for aux_mask in 0..(1u32 << aux) {
                    let mut full = bits.clone();
                    for a in 0..aux {
                        full.push((aux_mask >> a) & 1 == 1);
                    }
                    if cnf.is_satisfied_by_bits(&full) {
                        satisfiable = true;
                        break;
                    }
                }
                assert_eq!(satisfiable, expected, "mask {mask:b} rhs {rhs}");
            }
        }
    }

    #[test]
    fn empty_constraint_semantics() {
        let mut cnf = Cnf::new(2);
        add_parity_constraint(&mut cnf, &[], false);
        assert_eq!(cnf.num_clauses(), 0);
        add_parity_constraint(&mut cnf, &[], true);
        assert_eq!(cnf.num_clauses(), 1);
        assert!(cnf.clauses()[0].is_empty());
    }

    #[test]
    fn random_constraints_are_reproducible_and_bounded() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let pool: Vec<Var> = (1..=10).map(Var::new).collect();
        let mut cnf_a = Cnf::new(10);
        let mut cnf_b = Cnf::new(10);
        add_random_parity_constraints(&mut cnf_a, &pool, 3, &mut SmallRng::seed_from_u64(9));
        add_random_parity_constraints(&mut cnf_b, &pool, 3, &mut SmallRng::seed_from_u64(9));
        assert_eq!(cnf_a.clauses(), cnf_b.clauses());
        assert!(cnf_a.num_clauses() > 0);
    }
}
