//! Property-based cross-checks between the CDCL solver, the DPLL oracle and
//! exhaustive enumeration.

use htsat_cnf::Cnf;
use htsat_solver::{dpll, enumerate, walksat, CdclConfig, CdclSolver, SolveResult};
use proptest::prelude::*;

fn arb_cnf(max_vars: u32, max_clauses: usize, max_width: usize) -> impl Strategy<Value = Cnf> {
    let lit =
        (1..=max_vars, any::<bool>()).prop_map(|(v, pos)| if pos { v as i64 } else { -(v as i64) });
    let clause = prop::collection::vec(lit, 1..=max_width);
    prop::collection::vec(clause, 1..=max_clauses).prop_map(move |clauses| {
        let mut cnf = Cnf::new(max_vars as usize);
        for c in clauses {
            cnf.add_dimacs_clause(c);
        }
        cnf
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cdcl_agrees_with_dpll_on_satisfiability(cnf in arb_cnf(8, 20, 3)) {
        let cdcl_result = CdclSolver::new(&cnf).solve();
        let dpll_result = dpll::solve(&cnf);
        match (&cdcl_result, &dpll_result) {
            (SolveResult::Sat(model), Some(_)) => prop_assert!(cnf.is_satisfied_by_bits(model)),
            (SolveResult::Unsat, None) => {}
            other => prop_assert!(false, "solvers disagree: {other:?}"),
        }
    }

    #[test]
    fn cdcl_models_always_satisfy(cnf in arb_cnf(10, 30, 4)) {
        if let SolveResult::Sat(model) = CdclSolver::new(&cnf).solve() {
            prop_assert!(cnf.is_satisfied_by_bits(&model));
        }
    }

    #[test]
    fn enumeration_matches_exhaustive_count(cnf in arb_cnf(5, 8, 3)) {
        let expected = dpll::count_models_exhaustive(&cnf);
        // Enumeration over the full universe counts every variable (including
        // ones not occurring in clauses), so project onto occurring variables.
        let projection = cnf.occurring_vars();
        let result = enumerate::enumerate_models(
            &cnf,
            &projection,
            enumerate::EnumerationBudget::default(),
            CdclConfig::default(),
        );
        prop_assert!(result.exhausted);
        // Each enumerated model is distinct on the projection and satisfying.
        for m in &result.models {
            prop_assert!(cnf.is_satisfied_by_bits(m));
        }
        prop_assert_eq!(result.models.len() as u64, expected);
    }

    #[test]
    fn randomised_cdcl_still_sound(cnf in arb_cnf(8, 20, 3), seed in 0u64..100) {
        let config = CdclConfig {
            random_polarity: true,
            random_branch_freq: 0.3,
            seed,
            ..CdclConfig::default()
        };
        match CdclSolver::with_config(&cnf, config).solve() {
            SolveResult::Sat(model) => prop_assert!(cnf.is_satisfied_by_bits(&model)),
            SolveResult::Unsat => prop_assert!(dpll::solve(&cnf).is_none()),
            SolveResult::Unknown => {}
        }
    }

    #[test]
    fn walksat_models_always_satisfy(cnf in arb_cnf(8, 15, 3), seed in 0u64..50) {
        let config = walksat::WalkSatConfig { max_flips: 2_000, noise: 0.5, seed };
        if let walksat::WalkSatResult::Sat(model) = walksat::walksat(&cnf, config) {
            prop_assert!(cnf.is_satisfied_by_bits(&model));
        }
    }
}
