//! WalkSAT stochastic local search.
//!
//! WalkSAT starts from a random complete assignment and repeatedly repairs an
//! unsatisfied clause by flipping one of its variables, choosing greedily with
//! probability `1 - noise` and uniformly at random with probability `noise`.
//! The paper cites WalkSAT as one of the classic stochastic approaches to SAT
//! solving; we use it both as a solver fallback and as the engine of a simple
//! baseline sampler.

use htsat_cnf::{Cnf, Var};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of a WalkSAT run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkSatConfig {
    /// Maximum number of variable flips before giving up.
    pub max_flips: u64,
    /// Probability of a random (non-greedy) flip inside the chosen clause.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WalkSatConfig {
    fn default() -> Self {
        WalkSatConfig {
            max_flips: 100_000,
            noise: 0.5,
            seed: 0,
        }
    }
}

/// Outcome of a WalkSAT run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalkSatResult {
    /// A satisfying assignment was found.
    Sat(Vec<bool>),
    /// The flip budget was exhausted. Contains the best assignment seen and
    /// its number of falsified clauses.
    Exhausted {
        /// Assignment with the fewest falsified clauses seen during search.
        best: Vec<bool>,
        /// Number of clauses that assignment falsifies.
        falsified: usize,
    },
}

/// Runs WalkSAT on `cnf` from a random initial assignment.
pub fn walksat(cnf: &Cnf, config: WalkSatConfig) -> WalkSatResult {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let n = cnf.num_vars();
    let mut bits: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
    walksat_from(cnf, &mut bits, config, &mut rng)
}

/// Runs WalkSAT starting from (and mutating) the provided assignment.
pub fn walksat_from(
    cnf: &Cnf,
    bits: &mut [bool],
    config: WalkSatConfig,
    rng: &mut SmallRng,
) -> WalkSatResult {
    let mut best = bits.to_vec();
    let mut best_falsified = cnf.count_falsified(bits);
    if best_falsified == 0 {
        return WalkSatResult::Sat(bits.to_vec());
    }
    for _ in 0..config.max_flips {
        let falsified: Vec<usize> = cnf
            .clauses()
            .iter()
            .enumerate()
            .filter_map(|(i, c)| (!c.eval_bits(bits)).then_some(i))
            .collect();
        if falsified.is_empty() {
            return WalkSatResult::Sat(bits.to_vec());
        }
        if falsified.len() < best_falsified {
            best_falsified = falsified.len();
            best.copy_from_slice(bits);
        }
        let clause = &cnf.clauses()[falsified[rng.gen_range(0..falsified.len())]];
        let vars: Vec<Var> = clause.vars().collect();
        if vars.is_empty() {
            break; // empty clause can never be repaired
        }
        let flip_var = if rng.gen_bool(config.noise) {
            vars[rng.gen_range(0..vars.len())]
        } else {
            // Greedy: flip the variable minimising the resulting break count.
            let mut best_var = vars[0];
            let mut best_broken = usize::MAX;
            for &v in &vars {
                bits[v.as_usize()] = !bits[v.as_usize()];
                let broken = cnf.count_falsified(bits);
                bits[v.as_usize()] = !bits[v.as_usize()];
                if broken < best_broken {
                    best_broken = broken;
                    best_var = v;
                }
            }
            best_var
        };
        bits[flip_var.as_usize()] = !bits[flip_var.as_usize()];
    }
    if cnf.count_falsified(bits) == 0 {
        WalkSatResult::Sat(bits.to_vec())
    } else {
        WalkSatResult::Exhausted {
            best,
            falsified: best_falsified,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_easy_formula() {
        let mut cnf = Cnf::new(4);
        cnf.add_dimacs_clause([1, 2]);
        cnf.add_dimacs_clause([-1, 3]);
        cnf.add_dimacs_clause([-3, 4]);
        match walksat(&cnf, WalkSatConfig::default()) {
            WalkSatResult::Sat(model) => assert!(cnf.is_satisfied_by_bits(&model)),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn reports_exhaustion_on_unsat_formula() {
        let mut cnf = Cnf::new(1);
        cnf.add_dimacs_clause([1]);
        cnf.add_dimacs_clause([-1]);
        let config = WalkSatConfig {
            max_flips: 50,
            ..WalkSatConfig::default()
        };
        match walksat(&cnf, config) {
            WalkSatResult::Exhausted { falsified, .. } => assert!(falsified >= 1),
            WalkSatResult::Sat(_) => panic!("formula is unsatisfiable"),
        }
    }

    #[test]
    fn different_seeds_find_different_models_of_loose_formula() {
        let mut cnf = Cnf::new(6);
        cnf.add_dimacs_clause([1, 2, 3, 4, 5, 6]);
        let mut models = std::collections::HashSet::new();
        for seed in 0..8 {
            let config = WalkSatConfig {
                seed,
                ..WalkSatConfig::default()
            };
            if let WalkSatResult::Sat(m) = walksat(&cnf, config) {
                models.insert(m);
            }
        }
        assert!(models.len() > 1);
    }

    #[test]
    fn already_satisfying_start_returns_immediately() {
        let mut cnf = Cnf::new(2);
        cnf.add_dimacs_clause([1]);
        let mut bits = vec![true, false];
        let mut rng = SmallRng::seed_from_u64(1);
        match walksat_from(&cnf, &mut bits, WalkSatConfig::default(), &mut rng) {
            WalkSatResult::Sat(m) => assert_eq!(m, vec![true, false]),
            other => panic!("unexpected {other:?}"),
        }
    }
}
