//! Conflict-driven clause learning (CDCL) SAT solver.
//!
//! A from-scratch CDCL implementation with the standard machinery modern
//! solvers rely on: two-watched-literal propagation, VSIDS-style variable
//! activities, first-UIP conflict analysis, non-chronological backtracking,
//! Luby restarts and phase saving. Randomised branching and polarity hooks
//! are exposed through [`CdclConfig`] because the CMSGen-style baseline
//! sampler is exactly "a CDCL solver with randomised heuristics".

use htsat_cnf::{Cnf, Lit, Var};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Result of a [`CdclSolver::solve`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found (indexed by zero-based variable).
    Sat(Vec<bool>),
    /// The formula is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before a verdict.
    Unknown,
}

/// Tunable parameters of the CDCL solver.
#[derive(Debug, Clone, PartialEq)]
pub struct CdclConfig {
    /// Stop and return [`SolveResult::Unknown`] after this many conflicts.
    pub max_conflicts: Option<u64>,
    /// Pick decision polarities uniformly at random instead of using saved
    /// phases (the key ingredient of CMSGen-style diverse sampling).
    pub random_polarity: bool,
    /// Probability of picking a random unassigned variable instead of the
    /// highest-activity one at each decision.
    pub random_branch_freq: f64,
    /// Seed for the solver's internal RNG.
    pub seed: u64,
    /// Base interval (in conflicts) of the Luby restart sequence.
    pub restart_base: u64,
    /// Multiplicative decay applied to variable activities after each
    /// conflict (0 < decay < 1).
    pub var_decay: f64,
}

impl Default for CdclConfig {
    fn default() -> Self {
        CdclConfig {
            max_conflicts: None,
            random_polarity: false,
            random_branch_freq: 0.0,
            seed: 0,
            restart_base: 100,
            var_decay: 0.95,
        }
    }
}

/// Search statistics accumulated across [`CdclSolver::solve`] calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CdclStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of branching decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of clauses learned.
    pub learned_clauses: u64,
}

const UNASSIGNED: i8 = 0;

/// A CDCL SAT solver over a fixed variable universe.
///
/// The solver is incremental in the limited sense needed by samplers: after a
/// model is found, callers may [`CdclSolver::add_clause`] (e.g. a blocking
/// clause or an XOR-hash constraint encoded in CNF) and call
/// [`CdclSolver::solve`] again.
pub struct CdclSolver {
    num_vars: usize,
    /// All clauses, original followed by learned. Literals of each clause are
    /// arranged so positions 0 and 1 are the watched literals.
    clauses: Vec<Vec<Lit>>,
    /// Watch lists indexed by `Lit::code()`: clauses currently watching the
    /// literal (i.e. to visit when that literal becomes false).
    watches: Vec<Vec<usize>>,
    /// Current value per variable: 0 unassigned, 1 true, -1 false.
    values: Vec<i8>,
    /// Decision level of each assigned variable.
    level: Vec<u32>,
    /// Reason clause (index) of each propagated variable.
    reason: Vec<Option<usize>>,
    /// Assignment trail in chronological order.
    trail: Vec<Lit>,
    /// Trail indices at which each decision level starts.
    trail_lim: Vec<usize>,
    /// Next trail position to propagate.
    qhead: usize,
    /// VSIDS activity per variable.
    activity: Vec<f64>,
    var_inc: f64,
    /// Saved phase per variable.
    phase: Vec<bool>,
    /// Level-0 conflict detected while adding clauses.
    root_conflict: bool,
    config: CdclConfig,
    rng: SmallRng,
    stats: CdclStats,
}

impl CdclSolver {
    /// Creates a solver for `cnf` with default configuration.
    pub fn new(cnf: &Cnf) -> Self {
        Self::with_config(cnf, CdclConfig::default())
    }

    /// Creates a solver for `cnf` with an explicit configuration.
    pub fn with_config(cnf: &Cnf, config: CdclConfig) -> Self {
        let num_vars = cnf.num_vars();
        let mut solver = CdclSolver {
            num_vars,
            clauses: Vec::with_capacity(cnf.num_clauses()),
            watches: vec![Vec::new(); 2 * num_vars],
            values: vec![UNASSIGNED; num_vars],
            level: vec![0; num_vars],
            reason: vec![None; num_vars],
            trail: Vec::with_capacity(num_vars),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: vec![0.0; num_vars],
            var_inc: 1.0,
            phase: vec![false; num_vars],
            root_conflict: false,
            rng: SmallRng::seed_from_u64(config.seed),
            config,
            stats: CdclStats::default(),
        };
        for clause in cnf.clauses() {
            solver.add_clause(clause.lits().iter().copied());
        }
        solver
    }

    /// Search statistics.
    pub fn stats(&self) -> &CdclStats {
        &self.stats
    }

    /// Number of variables in the solver's universe.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Reseeds the solver's internal RNG.
    ///
    /// With [`CdclConfig::random_polarity`] or a non-zero
    /// [`CdclConfig::random_branch_freq`], re-solving after reseeding explores
    /// a different part of the solution space — the mechanism CMSGen-style
    /// samplers use to obtain diverse models cheaply.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = SmallRng::seed_from_u64(seed);
    }

    #[inline]
    fn lit_value(&self, lit: Lit) -> i8 {
        let v = self.values[lit.var().as_usize()];
        if lit.is_positive() {
            v
        } else {
            -v
        }
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause to the solver.
    ///
    /// Any open search state is discarded (the trail is rewound to level 0)
    /// so this is safe to call between [`CdclSolver::solve`] invocations.
    /// Duplicate literals are removed; tautological clauses are ignored.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        self.backtrack_to(0);
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        lits.sort_unstable();
        lits.dedup();
        if lits.windows(2).any(|w| w[0].var() == w[1].var()) {
            return; // tautology
        }
        // Drop literals already false at level 0, stop if any is true.
        let mut reduced = Vec::with_capacity(lits.len());
        for &l in &lits {
            match self.lit_value(l) {
                1 => return, // satisfied at root
                -1 => {}     // falsified at root: drop literal
                _ => reduced.push(l),
            }
        }
        match reduced.len() {
            0 => {
                self.root_conflict = true;
            }
            1 => {
                if !self.enqueue(reduced[0], None) || self.propagate().is_some() {
                    self.root_conflict = true;
                }
            }
            _ => {
                let idx = self.clauses.len();
                self.watches[reduced[0].code()].push(idx);
                self.watches[reduced[1].code()].push(idx);
                self.clauses.push(reduced);
            }
        }
    }

    /// Enqueues `lit` as true with an optional reason. Returns `false` when
    /// `lit` is already false (a conflict at the current level).
    fn enqueue(&mut self, lit: Lit, reason: Option<usize>) -> bool {
        match self.lit_value(lit) {
            1 => true,
            -1 => false,
            _ => {
                let v = lit.var().as_usize();
                self.values[v] = if lit.is_positive() { 1 } else { -1 };
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.phase[v] = lit.is_positive();
                self.trail.push(lit);
                true
            }
        }
    }

    /// Two-watched-literal Boolean constraint propagation.
    ///
    /// Returns the index of a conflicting clause, or `None` when a fixed
    /// point is reached without conflict.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            // Clauses watching ¬p must be inspected.
            let false_lit = !p;
            let mut watch_list = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            while i < watch_list.len() {
                let ci = watch_list[i];
                // Ensure the falsified literal is at position 1.
                if self.clauses[ci][0] == false_lit {
                    self.clauses[ci].swap(0, 1);
                }
                let first = self.clauses[ci][0];
                if self.lit_value(first) == 1 {
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                let mut found = None;
                for k in 2..self.clauses[ci].len() {
                    if self.lit_value(self.clauses[ci][k]) != -1 {
                        found = Some(k);
                        break;
                    }
                }
                if let Some(k) = found {
                    self.clauses[ci].swap(1, k);
                    let new_watch = self.clauses[ci][1];
                    self.watches[new_watch.code()].push(ci);
                    watch_list.swap_remove(i);
                    continue;
                }
                // Clause is unit or conflicting.
                if !self.enqueue(first, Some(ci)) {
                    // Conflict: restore remaining watches and report.
                    self.watches[false_lit.code()].extend_from_slice(&watch_list);
                    self.qhead = self.trail.len();
                    return Some(ci);
                }
                i += 1;
            }
            self.watches[false_lit.code()] = watch_list;
        }
        None
    }

    fn bump_var(&mut self, var: Var) {
        let a = &mut self.activity[var.as_usize()];
        *a += self.var_inc;
        if *a > 1e100 {
            for act in &mut self.activity {
                *act *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.config.var_decay;
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, conflict: usize) -> (Vec<Lit>, u32) {
        let current_level = self.decision_level();
        let mut learnt: Vec<Lit> = vec![Lit::pos(1)]; // placeholder for the asserting literal
        let mut seen = vec![false; self.num_vars];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut clause_idx = conflict;
        let mut trail_idx = self.trail.len();

        loop {
            let clause = self.clauses[clause_idx].clone();
            for q in clause {
                // Skip the literal this clause propagated (the resolution pivot).
                if Some(q) == p {
                    continue;
                }
                let v = q.var().as_usize();
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] >= current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next literal on the trail to resolve on.
            loop {
                trail_idx -= 1;
                let lit = self.trail[trail_idx];
                if seen[lit.var().as_usize()] {
                    p = Some(lit);
                    break;
                }
            }
            let pv = p.expect("resolution literal").var().as_usize();
            seen[pv] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            clause_idx = self.reason[pv].expect("non-decision literal has a reason");
        }
        learnt[0] = !p.expect("asserting literal");

        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            // Second-highest decision level in the learned clause.
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().as_usize()]
                    > self.level[learnt[max_i].var().as_usize()]
                {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().as_usize()]
        };
        (learnt, backtrack_level)
    }

    fn backtrack_to(&mut self, level: u32) {
        while self.decision_level() > level {
            let start = self.trail_lim.pop().expect("level > 0 has a limit");
            while self.trail.len() > start {
                let lit = self.trail.pop().expect("trail non-empty");
                let v = lit.var().as_usize();
                self.values[v] = UNASSIGNED;
                self.reason[v] = None;
            }
        }
        self.qhead = self.qhead.min(self.trail.len());
    }

    /// Records a learned clause and enqueues its asserting literal.
    fn learn(&mut self, learnt: Vec<Lit>) {
        self.stats.learned_clauses += 1;
        let asserting = learnt[0];
        if learnt.len() == 1 {
            let ok = self.enqueue(asserting, None);
            debug_assert!(ok, "asserting unit must be enqueueable after backtrack");
        } else {
            let idx = self.clauses.len();
            self.watches[learnt[0].code()].push(idx);
            self.watches[learnt[1].code()].push(idx);
            self.clauses.push(learnt);
            let ok = self.enqueue(asserting, Some(idx));
            debug_assert!(ok, "asserting literal must be enqueueable after backtrack");
        }
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        if self.config.random_branch_freq > 0.0 && self.rng.gen_bool(self.config.random_branch_freq)
        {
            let unassigned: Vec<usize> = (0..self.num_vars)
                .filter(|&v| self.values[v] == UNASSIGNED)
                .collect();
            if !unassigned.is_empty() {
                let idx = unassigned[self.rng.gen_range(0..unassigned.len())];
                return Some(Var::from_zero_based(idx));
            }
        }
        let mut best: Option<usize> = None;
        for v in 0..self.num_vars {
            if self.values[v] == UNASSIGNED
                && best.is_none_or(|b| self.activity[v] > self.activity[b])
            {
                best = Some(v);
            }
        }
        best.map(Var::from_zero_based)
    }

    /// The 1-based Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, ...
    fn luby(i: u64) -> u64 {
        debug_assert!(i >= 1, "Luby sequence is 1-based");
        let mut k = 1u64;
        loop {
            if i == (1u64 << k) - 1 {
                return 1u64 << (k - 1);
            }
            if i < (1u64 << k) - 1 {
                return Self::luby(i - (1u64 << (k - 1)) + 1);
            }
            k += 1;
        }
    }

    /// Runs the CDCL search until a model is found, unsatisfiability is
    /// proven, or the conflict budget is exhausted.
    pub fn solve(&mut self) -> SolveResult {
        if self.root_conflict {
            return SolveResult::Unsat;
        }
        self.backtrack_to(0);
        self.qhead = 0;
        if self.propagate().is_some() {
            self.root_conflict = true;
            return SolveResult::Unsat;
        }

        let mut conflicts_since_restart = 0u64;
        let mut restart_count = 0u64;
        let mut restart_limit = self.config.restart_base * Self::luby(restart_count + 1);
        let start_conflicts = self.stats.conflicts;

        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.root_conflict = true;
                    return SolveResult::Unsat;
                }
                let (learnt, back_level) = self.analyze(conflict);
                self.backtrack_to(back_level);
                self.learn(learnt);
                self.decay_activities();
                if let Some(max) = self.config.max_conflicts {
                    if self.stats.conflicts - start_conflicts >= max {
                        return SolveResult::Unknown;
                    }
                }
                if conflicts_since_restart >= restart_limit {
                    self.stats.restarts += 1;
                    restart_count += 1;
                    conflicts_since_restart = 0;
                    restart_limit = self.config.restart_base * Self::luby(restart_count + 1);
                    self.backtrack_to(0);
                }
            } else {
                match self.pick_branch_var() {
                    None => {
                        let model: Vec<bool> = self.values.iter().map(|&v| v == 1).collect();
                        return SolveResult::Sat(model);
                    }
                    Some(var) => {
                        self.stats.decisions += 1;
                        let polarity = if self.config.random_polarity {
                            self.rng.gen_bool(0.5)
                        } else {
                            self.phase[var.as_usize()]
                        };
                        self.trail_lim.push(self.trail.len());
                        let lit = Lit::new(var, polarity);
                        let ok = self.enqueue(lit, None);
                        debug_assert!(ok, "decision variable was unassigned");
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsat_cnf::Cnf;

    fn solve_default(cnf: &Cnf) -> SolveResult {
        CdclSolver::new(cnf).solve()
    }

    #[test]
    fn trivially_satisfiable() {
        let mut cnf = Cnf::new(2);
        cnf.add_dimacs_clause([1, 2]);
        match solve_default(&cnf) {
            SolveResult::Sat(model) => assert!(cnf.is_satisfied_by_bits(&model)),
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn empty_formula_is_sat() {
        let cnf = Cnf::new(3);
        assert!(matches!(solve_default(&cnf), SolveResult::Sat(_)));
    }

    #[test]
    fn simple_unsat_core() {
        let mut cnf = Cnf::new(1);
        cnf.add_dimacs_clause([1]);
        cnf.add_dimacs_clause([-1]);
        assert_eq!(solve_default(&cnf), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // 3 pigeons, 2 holes: var p_{i,j} = 2*i + j + 1.
        let mut cnf = Cnf::new(6);
        let v = |i: i64, j: i64| 2 * i + j + 1;
        for i in 0..3 {
            cnf.add_dimacs_clause([v(i, 0), v(i, 1)]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    cnf.add_dimacs_clause([-v(i1, j), -v(i2, j)]);
                }
            }
        }
        assert_eq!(solve_default(&cnf), SolveResult::Unsat);
    }

    #[test]
    fn xor_chain_is_satisfiable_and_model_checks() {
        // x1 ^ x2 = 1, x2 ^ x3 = 1, x3 ^ x4 = 1
        let mut cnf = Cnf::new(4);
        for i in 1..=3i64 {
            cnf.add_dimacs_clause([i, i + 1]);
            cnf.add_dimacs_clause([-i, -(i + 1)]);
        }
        match solve_default(&cnf) {
            SolveResult::Sat(model) => {
                assert!(cnf.is_satisfied_by_bits(&model));
                assert_ne!(model[0], model[1]);
                assert_ne!(model[1], model[2]);
            }
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn incremental_blocking_clauses_enumerate_all_models() {
        // x1 ∨ x2 has exactly 3 models.
        let mut cnf = Cnf::new(2);
        cnf.add_dimacs_clause([1, 2]);
        let mut solver = CdclSolver::new(&cnf);
        let mut models = Vec::new();
        loop {
            match solver.solve() {
                SolveResult::Sat(model) => {
                    assert!(cnf.is_satisfied_by_bits(&model));
                    let blocking: Vec<Lit> = model
                        .iter()
                        .enumerate()
                        .map(|(i, &b)| Lit::new(Var::from_zero_based(i), !b))
                        .collect();
                    models.push(model);
                    solver.add_clause(blocking);
                }
                SolveResult::Unsat => break,
                SolveResult::Unknown => panic!("no budget set"),
            }
        }
        assert_eq!(models.len(), 3);
    }

    #[test]
    fn conflict_budget_returns_unknown_or_verdict() {
        // A hard-ish random-looking formula with a tiny budget should not panic.
        let mut cnf = Cnf::new(20);
        let mut x = 123u64;
        for _ in 0..80 {
            let mut lits = Vec::new();
            for _ in 0..3 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let v = (x >> 33) % 20 + 1;
                let sign = if (x >> 13) & 1 == 1 { 1 } else { -1 };
                lits.push(sign * v as i64);
            }
            cnf.add_dimacs_clause(lits);
        }
        let mut solver = CdclSolver::with_config(
            &cnf,
            CdclConfig {
                max_conflicts: Some(1),
                ..CdclConfig::default()
            },
        );
        // Just exercise the path; any verdict is acceptable.
        let _ = solver.solve();
    }

    #[test]
    fn random_polarity_produces_diverse_models() {
        // Completely unconstrained variables: random polarity should not
        // always return the all-false model.
        let mut cnf = Cnf::new(8);
        cnf.add_dimacs_clause([1, -1]); // keep variable 1 mentioned
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..10u64 {
            let mut solver = CdclSolver::with_config(
                &cnf,
                CdclConfig {
                    random_polarity: true,
                    seed,
                    ..CdclConfig::default()
                },
            );
            if let SolveResult::Sat(model) = solver.solve() {
                distinct.insert(model);
            }
        }
        assert!(distinct.len() > 1, "random polarity should vary models");
    }

    #[test]
    fn stats_are_populated() {
        let mut cnf = Cnf::new(3);
        cnf.add_dimacs_clause([1, 2, 3]);
        cnf.add_dimacs_clause([-1, -2]);
        cnf.add_dimacs_clause([-2, -3]);
        let mut solver = CdclSolver::new(&cnf);
        let _ = solver.solve();
        assert!(solver.stats().propagations + solver.stats().decisions > 0);
    }

    #[test]
    fn luby_sequence_prefix() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(CdclSolver::luby(i as u64 + 1), e, "luby({})", i + 1);
        }
    }
}
