//! # htsat-solver
//!
//! SAT-solving substrate for the baseline samplers of the high-throughput SAT
//! sampling library.
//!
//! The paper compares its sampler against UniGen3, CMSGen and DiffSampler,
//! all of which are built on top of a conflict-driven clause learning (CDCL)
//! SAT solver (CryptoMiniSat in the reference tools). This crate provides
//! that substrate from scratch:
//!
//! * [`CdclSolver`] — a CDCL solver with two-watched-literal propagation,
//!   VSIDS-style activity branching, first-UIP clause learning, Luby
//!   restarts, phase saving, and hooks for randomised branching/polarity
//!   (which is exactly what a CMSGen-style sampler needs),
//! * [`dpll`] — a simple recursive DPLL solver, used as a cross-check oracle
//!   in tests and for tiny formulas,
//! * [`walksat`] — stochastic local search, used by the WalkSAT baseline
//!   sampler,
//! * [`enumerate`] — model enumeration with blocking clauses, used by the
//!   UniGen-style hash-based sampler to count/list solutions inside a cell.
//!
//! # Example
//!
//! ```
//! use htsat_cnf::{Cnf, Lit};
//! use htsat_solver::{CdclSolver, SolveResult};
//!
//! let mut cnf = Cnf::new(2);
//! cnf.add_clause([Lit::pos(1), Lit::pos(2)]);
//! cnf.add_clause([Lit::neg(1)]);
//!
//! let mut solver = CdclSolver::new(&cnf);
//! match solver.solve() {
//!     SolveResult::Sat(model) => assert!(cnf.is_satisfied_by_bits(&model)),
//!     SolveResult::Unsat => unreachable!("formula is satisfiable"),
//!     SolveResult::Unknown => unreachable!("no budget was set"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdcl;
pub mod dpll;
pub mod enumerate;
pub mod walksat;

pub use cdcl::{CdclConfig, CdclSolver, CdclStats, SolveResult};
