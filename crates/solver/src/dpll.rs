//! A simple recursive DPLL solver.
//!
//! Used as an independent oracle in tests (cross-checking the CDCL solver)
//! and for exhaustively counting models of small formulas. It is deliberately
//! straightforward: unit propagation, pure-literal elimination and
//! chronological backtracking.

use htsat_cnf::propagate::{propagate_units, simplify_under, PropagationResult};
use htsat_cnf::{Assignment, Cnf, Var};

/// Solves `cnf` with DPLL. Returns a model (as bits indexed by zero-based
/// variable) or `None` when unsatisfiable.
///
/// Variables not constrained by any clause are set to `false` in the returned
/// model.
pub fn solve(cnf: &Cnf) -> Option<Vec<bool>> {
    let assignment = Assignment::new(cnf.num_vars());
    search(cnf, &assignment).map(|a| a.to_bits_or(false))
}

fn search(cnf: &Cnf, assignment: &Assignment) -> Option<Assignment> {
    let propagated = match propagate_units(cnf, assignment) {
        PropagationResult::Conflict { .. } => return None,
        PropagationResult::Consistent { assignment, .. } => assignment,
    };
    match cnf.eval(&propagated) {
        Some(true) => return Some(propagated),
        Some(false) => return None,
        None => {}
    }
    // Pure-literal elimination on the simplified residual formula.
    let residual = simplify_under(cnf, &propagated);
    let mut with_pures = propagated.clone();
    let pures = htsat_cnf::propagate::pure_literals(&residual);
    for lit in &pures {
        if with_pures.value(lit.var()).is_none() {
            with_pures.assign(lit.var(), lit.is_positive());
        }
    }
    if !pures.is_empty() {
        match cnf.eval(&with_pures) {
            Some(true) => return Some(with_pures),
            Some(false) => {}
            None => {}
        }
    }
    // Branch on the first unassigned variable that occurs in an unsatisfied clause.
    let branch_var = pick_branch(cnf, &propagated)?;
    for value in [true, false] {
        let mut next = propagated.clone();
        next.assign(branch_var, value);
        if let Some(model) = search(cnf, &next) {
            return Some(model);
        }
    }
    None
}

fn pick_branch(cnf: &Cnf, assignment: &Assignment) -> Option<Var> {
    for clause in cnf.clauses() {
        if clause.eval(assignment) == Some(true) {
            continue;
        }
        for lit in clause.lits() {
            if assignment.value(lit.var()).is_none() {
                return Some(lit.var());
            }
        }
    }
    None
}

/// Counts the number of satisfying assignments of `cnf` over the variables
/// that actually occur in it, by exhaustive enumeration.
///
/// Intended for testing on small formulas only.
///
/// # Panics
///
/// Panics if more than 25 variables occur in the formula.
pub fn count_models_exhaustive(cnf: &Cnf) -> u64 {
    let vars = cnf.occurring_vars();
    assert!(
        vars.len() <= 25,
        "exhaustive counting limited to 25 variables"
    );
    let mut count = 0u64;
    let mut bits = vec![false; cnf.num_vars()];
    for mask in 0u64..(1u64 << vars.len()) {
        for (i, v) in vars.iter().enumerate() {
            bits[v.as_usize()] = (mask >> i) & 1 == 1;
        }
        if cnf.is_satisfied_by_bits(&bits) {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_simple_satisfiable_formula() {
        let mut cnf = Cnf::new(3);
        cnf.add_dimacs_clause([1, 2]);
        cnf.add_dimacs_clause([-1, 3]);
        cnf.add_dimacs_clause([-2, -3]);
        let model = solve(&cnf).expect("satisfiable");
        assert!(cnf.is_satisfied_by_bits(&model));
    }

    #[test]
    fn detects_unsatisfiable_formula() {
        let mut cnf = Cnf::new(2);
        cnf.add_dimacs_clause([1, 2]);
        cnf.add_dimacs_clause([1, -2]);
        cnf.add_dimacs_clause([-1, 2]);
        cnf.add_dimacs_clause([-1, -2]);
        assert_eq!(solve(&cnf), None);
    }

    #[test]
    fn counts_models_of_or_clause() {
        let mut cnf = Cnf::new(2);
        cnf.add_dimacs_clause([1, 2]);
        assert_eq!(count_models_exhaustive(&cnf), 3);
    }

    #[test]
    fn counts_models_of_xor() {
        let mut cnf = Cnf::new(2);
        cnf.add_dimacs_clause([1, 2]);
        cnf.add_dimacs_clause([-1, -2]);
        assert_eq!(count_models_exhaustive(&cnf), 2);
    }

    #[test]
    fn empty_formula_has_trivial_model() {
        let cnf = Cnf::new(4);
        assert!(solve(&cnf).is_some());
        assert_eq!(count_models_exhaustive(&cnf), 1);
    }
}
