//! Model enumeration with blocking clauses.
//!
//! UniGen-style hash-based samplers repeatedly partition the solution space
//! with random XOR constraints and then *enumerate* the models inside one
//! cell. This module provides that enumeration on top of the CDCL solver: a
//! model is extracted, a blocking clause over a chosen projection set is
//! added, and the search continues until the cell is empty or a budget is
//! reached.

use crate::{CdclConfig, CdclSolver, SolveResult};
use htsat_cnf::{Cnf, Lit, Var};

/// Limits for a model-enumeration run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumerationBudget {
    /// Maximum number of models to enumerate.
    pub max_models: usize,
    /// Conflict budget per individual solver call (`None` = unlimited).
    pub max_conflicts_per_call: Option<u64>,
}

impl Default for EnumerationBudget {
    fn default() -> Self {
        EnumerationBudget {
            max_models: 1 << 12,
            max_conflicts_per_call: None,
        }
    }
}

/// Result of a model-enumeration run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumerationResult {
    /// Enumerated models (complete assignments over the formula's universe).
    pub models: Vec<Vec<bool>>,
    /// Whether enumeration stopped because the space was exhausted (`true`)
    /// or because a budget was hit (`false`).
    pub exhausted: bool,
}

/// Enumerates models of `cnf`, blocking each found model on the projection
/// variables `projection` (or on every variable when `projection` is empty).
///
/// Two models that agree on the projection set are counted once.
pub fn enumerate_models(
    cnf: &Cnf,
    projection: &[Var],
    budget: EnumerationBudget,
    config: CdclConfig,
) -> EnumerationResult {
    let mut solver = CdclSolver::with_config(cnf, config);
    let projection: Vec<Var> = if projection.is_empty() {
        (1..=cnf.num_vars() as u32).map(Var::new).collect()
    } else {
        projection.to_vec()
    };
    let mut models = Vec::new();
    loop {
        if models.len() >= budget.max_models {
            return EnumerationResult {
                models,
                exhausted: false,
            };
        }
        match solver.solve() {
            SolveResult::Sat(model) => {
                let blocking: Vec<Lit> = projection
                    .iter()
                    .map(|&v| Lit::new(v, !model[v.as_usize()]))
                    .collect();
                models.push(model);
                solver.add_clause(blocking);
            }
            SolveResult::Unsat => {
                return EnumerationResult {
                    models,
                    exhausted: true,
                }
            }
            SolveResult::Unknown => {
                return EnumerationResult {
                    models,
                    exhausted: false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpll;

    #[test]
    fn enumerates_all_models_of_small_formula() {
        let mut cnf = Cnf::new(3);
        cnf.add_dimacs_clause([1, 2, 3]);
        let result = enumerate_models(
            &cnf,
            &[],
            EnumerationBudget::default(),
            CdclConfig::default(),
        );
        assert!(result.exhausted);
        assert_eq!(
            result.models.len() as u64,
            dpll::count_models_exhaustive(&cnf)
        );
        for m in &result.models {
            assert!(cnf.is_satisfied_by_bits(m));
        }
    }

    #[test]
    fn projection_collapses_equivalent_models() {
        // x1 free, x2 unconstrained: projecting on x1 yields 2 models.
        let mut cnf = Cnf::new(2);
        cnf.add_dimacs_clause([1, -1]);
        cnf.add_dimacs_clause([2, -2]);
        let result = enumerate_models(
            &cnf,
            &[Var::new(1)],
            EnumerationBudget::default(),
            CdclConfig::default(),
        );
        assert!(result.exhausted);
        assert_eq!(result.models.len(), 2);
    }

    #[test]
    fn budget_limits_model_count() {
        let mut cnf = Cnf::new(5);
        cnf.add_dimacs_clause([1, 2, 3, 4, 5]);
        let result = enumerate_models(
            &cnf,
            &[],
            EnumerationBudget {
                max_models: 3,
                max_conflicts_per_call: None,
            },
            CdclConfig::default(),
        );
        assert!(!result.exhausted);
        assert_eq!(result.models.len(), 3);
    }

    #[test]
    fn unsat_formula_yields_no_models() {
        let mut cnf = Cnf::new(1);
        cnf.add_dimacs_clause([1]);
        cnf.add_dimacs_clause([-1]);
        let result = enumerate_models(
            &cnf,
            &[],
            EnumerationBudget::default(),
            CdclConfig::default(),
        );
        assert!(result.exhausted);
        assert!(result.models.is_empty());
    }
}
