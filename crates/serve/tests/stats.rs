//! End-to-end tests of the observability surface: the `STATS` wire verb,
//! the machine-readable error `code` field, and the frozen snapshot
//! schema.
//!
//! This file is its own integration-test binary on purpose: the `htsat-obs`
//! metrics registry is process-global, so keeping the `STATS` assertions
//! out of `e2e.rs` isolates them from that binary's request traffic. Tests
//! *within* this binary still share the registry, so each one takes the
//! [`SERIAL`] lock and asserts on **deltas** between two snapshots rather
//! than absolute values.

use htsat_cnf::{dimacs, Fingerprint};
use htsat_instances::families;
use htsat_obs::Snapshot;
use htsat_serve::json::Json;
use htsat_serve::proto::SampleParams;
use htsat_serve::{serve, Client, ClientError, ServeConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn corpus_instance() -> (String, htsat_cnf::Cnf) {
    let instance = families::or_chain("or-stats", 20, 2, 0x57A7);
    (dimacs::to_string(&instance.cnf), instance.cnf)
}

/// The difference of a counter across two snapshots (0 when absent from
/// the earlier one — the metric may not have been registered yet).
fn delta(before: &Snapshot, after: &Snapshot, name: &str) -> u64 {
    after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0)
}

#[test]
fn stats_counters_move_across_load_sample_error_and_reset() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (dimacs_text, _cnf) = corpus_instance();
    let server = serve(ServeConfig::default()).expect("server");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let before = client.stats().expect("baseline stats");

    // LOAD (a compile miss), SAMPLE (a registry hit), then a NOT_LOADED
    // error from a fingerprint nothing was loaded under.
    let load = client
        .load_dimacs(Some("or-stats"), &dimacs_text)
        .expect("load");
    let reply = client
        .sample(&SampleParams {
            n: 5,
            seed: 9,
            ..SampleParams::new(load.fingerprint)
        })
        .expect("sample");
    assert_eq!(reply.solutions.len(), 5);
    let missing = Fingerprint::of(&families::or_chain("other", 8, 2, 1).cnf);
    match client.sample(&SampleParams::new(missing)) {
        Err(ClientError::Server(msg)) => assert!(msg.contains("is not loaded")),
        other => panic!("expected a server error, got {other:?}"),
    }

    let after = client.stats().expect("stats after traffic");

    // Protocol layer: verbs, errors, transport volume, latency span.
    assert_eq!(delta(&before, &after, "serve.requests.load"), 1);
    assert_eq!(delta(&before, &after, "serve.requests.sample"), 2);
    assert_eq!(delta(&before, &after, "serve.errors"), 1);
    assert_eq!(delta(&before, &after, "serve.errors.not-loaded"), 1);
    assert!(delta(&before, &after, "serve.bytes_in") > 0);
    assert!(delta(&before, &after, "serve.bytes_out") > 0);
    // This client's connection was accepted before the baseline snapshot,
    // so assert the absolute level rather than a delta.
    assert!(after.counter("serve.connections.total").unwrap_or(0) >= 1);
    assert!(
        after.gauge("serve.connections.active").unwrap_or(0) >= 1,
        "this client's own connection is open"
    );
    let request_span = after.histogram("serve.request").expect("request span");
    assert!(request_span.count > before.histogram("serve.request").map_or(0, |h| h.count));
    assert!(request_span.quantile_upper_bound(0.99) >= request_span.quantile_upper_bound(0.5));

    // Registry layer: one compile for the load, one hit for the sample.
    assert_eq!(delta(&before, &after, "serve.registry.compiles"), 1);
    assert_eq!(delta(&before, &after, "serve.registry.misses"), 1);
    assert!(delta(&before, &after, "serve.registry.hits") >= 1);
    assert_eq!(after.gauge("serve.resident.gd"), Some(1));

    // Engine and runtime layers, reported through the same snapshot.
    assert!(delta(&before, &after, "engine.sessions") >= 1);
    assert!(delta(&before, &after, "engine.sessions.gd") >= 1);
    assert!(delta(&before, &after, "engine.rounds") >= 1);
    assert!(delta(&before, &after, "engine.samples") >= 5);
    assert!(delta(&before, &after, "runtime.regions") >= 1);
    assert!(delta(&before, &after, "runtime.rows") >= 1);
    assert!(after.histogram("engine.round").expect("round span").count > 0);

    // STATS reset: the reply reports the pre-reset totals, the next
    // snapshot starts from zero — except gauges, which are levels.
    let wiped = client.stats_reset().expect("stats reset");
    assert!(wiped.counter("serve.requests.load").unwrap_or(0) >= 1);
    let fresh = client.stats().expect("stats after reset");
    assert_eq!(fresh.counter("serve.requests.load"), Some(0));
    assert_eq!(fresh.counter("serve.errors.not-loaded"), Some(0));
    assert_eq!(
        fresh.counter("serve.requests.stats"),
        Some(1),
        "only the fresh STATS request itself has been counted since the reset"
    );
    assert_eq!(
        fresh.gauge("serve.resident.gd"),
        Some(1),
        "gauges are levels and must survive a reset"
    );
}

#[test]
fn wire_error_responses_carry_the_machine_readable_code() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let server = serve(ServeConfig::default()).expect("server");

    // Drive the wire directly (not through `Client`) so the raw response
    // object is observable.
    let raw = |line: &str| -> Json {
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
        let mut reply = String::new();
        BufReader::new(&mut stream)
            .read_line(&mut reply)
            .expect("read");
        Json::parse(reply.trim_end()).expect("parse reply")
    };

    let bad_json = raw("{not json");
    assert_eq!(bad_json.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        bad_json.get("code").and_then(Json::as_str),
        Some("bad-json")
    );

    let bad_request = raw("{\"cmd\":\"frobnicate\"}");
    assert_eq!(
        bad_request.get("code").and_then(Json::as_str),
        Some("bad-request")
    );
    assert!(bad_request.get("error").and_then(Json::as_str).is_some());

    let disabled = raw("{\"cmd\":\"load\",\"path\":\"/etc/passwd\"}");
    assert_eq!(
        disabled.get("code").and_then(Json::as_str),
        Some("path-load-disabled")
    );

    // The wire snapshot must count exactly those codes.
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let snapshot = client.stats().expect("stats");
    assert!(snapshot.counter("serve.errors.bad-json").unwrap_or(0) >= 1);
    assert!(snapshot.counter("serve.errors.bad-request").unwrap_or(0) >= 1);
    assert!(
        snapshot
            .counter("serve.errors.path-load-disabled")
            .unwrap_or(0)
            >= 1
    );
}

#[test]
fn wire_snapshot_is_bit_identical_to_the_in_process_snapshot() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (dimacs_text, _cnf) = corpus_instance();
    let server = serve(ServeConfig::default()).expect("server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let load = client.load_dimacs(None, &dimacs_text).expect("load");
    client
        .sample(&SampleParams {
            n: 3,
            seed: 1,
            ..SampleParams::new(load.fingerprint)
        })
        .expect("sample");

    // The daemon runs in this process, so the wire snapshot and a direct
    // `htsat_obs::global().snapshot()` observe one registry. Taking the
    // wire snapshot *first* would let its own request mutate the counters
    // between the two observations; in-process first, then comparing only
    // the metrics the STATS request cannot itself move, proves the wire
    // path is a faithful encode→decode of the in-process snapshot.
    let wire = client.stats().expect("wire stats");
    let direct = htsat_obs::global().snapshot();
    assert_eq!(
        wire.counter("engine.samples"),
        direct.counter("engine.samples")
    );
    assert_eq!(
        wire.counter("serve.registry.compiles"),
        direct.counter("serve.registry.compiles")
    );
    assert_eq!(
        wire.histogram("engine.round").map(|h| (h.count, h.sum)),
        direct.histogram("engine.round").map(|h| (h.count, h.sum))
    );
    // And the typed round trip itself is byte-exact.
    let encoded = wire.to_json().encode();
    let reparsed = Snapshot::from_json(&Json::parse(&encoded).expect("parse")).expect("decode");
    assert_eq!(reparsed.to_json().encode(), encoded);
}

#[test]
fn stats_schema_v1_fixture_stays_parseable_and_canonical() {
    // The committed fixture freezes schema `htsat-stats-v1`: if an encoder
    // or schema change breaks this test, bump the schema string instead of
    // regenerating the fixture in place.
    let text = include_str!("fixtures/STATS_schema-v1.json");
    let msg = Json::parse(text.trim()).expect("fixture is valid JSON");
    let snapshot = Snapshot::from_json(&msg).expect("schema-v1 snapshot must stay decodable");
    assert_eq!(
        snapshot.to_json().encode(),
        text.trim(),
        "fixture must be the canonical encoding of its own decode"
    );
    assert!(snapshot.counter("serve.requests.sample").is_some());
    assert!(snapshot.gauge("serve.connections.active").is_some());
    assert!(snapshot.gauge("process.uptime_ms").is_some());
    assert!(snapshot.gauge("process.threads").is_some());
    let span = snapshot.histogram("serve.request").expect("request span");
    assert!(span.count > 0 && span.sum > 0);
}
