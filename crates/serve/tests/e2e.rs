//! End-to-end tests: a real daemon on a loopback ephemeral port, driven by
//! the blocking client.
//!
//! The centrepiece is the wire-determinism matrix required by the serving
//! layer's acceptance criteria: a daemon `SAMPLE` with a fixed seed must
//! reproduce the *exact* in-process `GdSampler::stream()` solution sequence
//! at 1 and at 8 worker threads.

use htsat_baselines::{engine_by_name, ENGINE_NAMES};
use htsat_cnf::dimacs;
use htsat_core::{GdSampler, SamplerConfig, SessionConfig, TransformConfig};
use htsat_instances::families;
use htsat_serve::json::Json;
use htsat_serve::proto::SampleParams;
use htsat_serve::registry::RegistryConfig;
use htsat_serve::{serve, Client, ClientError, ServeConfig};
use htsat_tensor::Backend;

/// A gen_suite-family CNF (the same generator `gen_suite` exports), small
/// enough for fast rounds but with a real circuit structure.
fn corpus_instance() -> (String, htsat_cnf::Cnf) {
    let instance = families::or_chain("or-e2e", 24, 2, 0xE2E);
    (dimacs::to_string(&instance.cnf), instance.cnf)
}

fn start_server() -> htsat_serve::ServerHandle {
    serve(ServeConfig::default()).expect("bind loopback ephemeral port")
}

#[test]
fn wire_determinism_matches_in_process_stream_at_1_and_8_threads() {
    let (dimacs_text, cnf) = corpus_instance();
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let load = client
        .load_dimacs(Some("or-e2e"), &dimacs_text)
        .expect("load");
    assert!(!load.cached);
    assert_eq!(load.vars, cnf.num_vars());

    const SEED: u64 = 41;
    const N: usize = 10;
    for threads in [1usize, 8] {
        // The in-process reference: a fresh sampler over the same CNF with
        // the same seed, streamed through the public API.
        let config = SamplerConfig {
            seed: SEED,
            backend: Backend::Threads(threads),
            ..SamplerConfig::default()
        };
        let mut reference = GdSampler::new(&cnf, config).expect("build sampler");
        let expected: Vec<Vec<bool>> = reference.stream().take(N).collect();
        assert_eq!(expected.len(), N, "reference found enough solutions");

        let reply = client
            .sample(&SampleParams {
                n: N,
                seed: SEED,
                threads: Some(threads),
                ..SampleParams::new(load.fingerprint)
            })
            .expect("sample");
        assert_eq!(
            reply.solutions, expected,
            "daemon must reproduce the in-process sequence bit-for-bit at {threads} threads"
        );
        for solution in &reply.solutions {
            assert!(cnf.is_satisfied_by_bits(solution));
        }
        assert!(reply.stats.rounds > 0);
        assert!(reply.elapsed_ms >= 0.0);
    }

    // Seeds above 2^53 must survive the JSON transport exactly (they
    // travel as decimal strings): same contract, full 64-bit seed.
    let big_seed = u64::MAX - 7;
    let config = SamplerConfig {
        seed: big_seed,
        backend: Backend::Threads(1),
        ..SamplerConfig::default()
    };
    let mut reference = GdSampler::new(&cnf, config).expect("build sampler");
    let expected: Vec<Vec<bool>> = reference.stream().take(4).collect();
    let reply = client
        .sample(&SampleParams {
            n: 4,
            seed: big_seed,
            threads: Some(1),
            ..SampleParams::new(load.fingerprint)
        })
        .expect("sample with 64-bit seed");
    assert_eq!(reply.solutions, expected, "seed must not round through f64");
}

#[test]
fn cross_engine_determinism_matrix() {
    // The tentpole guarantee of the engine API: for EVERY engine, a fixed
    // seed reproduces the identical solution sequence at 1 and 8 worker
    // threads, in-process and through the daemon — so clients can A/B the
    // GD sampler against any baseline over the wire bit-for-bit.
    let (dimacs_text, cnf) = corpus_instance();
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");

    const SEED: u64 = 0xA1B2;
    const N: usize = 3;
    for engine_name in ENGINE_NAMES {
        let engine =
            engine_by_name(engine_name, &cnf, &TransformConfig::default()).expect("engine");
        let load = client
            .load_dimacs_engine(Some(engine_name), engine_name, &dimacs_text)
            .expect("load engine");
        assert_eq!(load.engine, engine_name);
        assert!(!load.cached, "first load of ({engine_name}) must prepare");

        let mut sequences = Vec::new();
        for threads in [1usize, 8] {
            // In-process reference through the engine adapter.
            let expected: Vec<Vec<bool>> = engine
                .stream(&SessionConfig {
                    seed: SEED,
                    backend: Backend::Threads(threads),
                    batch: None,
                })
                .expect("stream")
                .take(N)
                .collect();
            assert_eq!(
                expected.len(),
                N,
                "engine {engine_name} found too few solutions in-process"
            );
            for s in &expected {
                assert!(cnf.is_satisfied_by_bits(s), "{engine_name} invalid");
            }

            let reply = client
                .sample(&SampleParams {
                    n: N,
                    seed: SEED,
                    threads: Some(threads),
                    ..SampleParams::with_engine(load.fingerprint, engine_name)
                })
                .expect("sample");
            assert_eq!(
                reply.solutions, expected,
                "daemon must reproduce the in-process {engine_name} sequence \
                 bit-for-bit at {threads} threads"
            );
            sequences.push(expected);
        }
        assert_eq!(
            sequences[0], sequences[1],
            "engine {engine_name} must be thread-count independent"
        );
    }
    // One entry per (formula, engine) pair, each prepared exactly once.
    assert_eq!(server.registry().len(), ENGINE_NAMES.len());
    assert_eq!(
        server.registry().counters().compiles,
        ENGINE_NAMES.len() as u64
    );
}

#[test]
fn engine_must_be_loaded_before_sampling_and_unknown_engines_fail() {
    let (dimacs_text, _cnf) = corpus_instance();
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    // Loaded for gd only: sampling walksat on the same fingerprint is a
    // miss — the registry is keyed by the (formula, engine) pair.
    let load = client.load_dimacs(None, &dimacs_text).expect("load gd");
    match client.sample(&SampleParams::with_engine(load.fingerprint, "walksat")) {
        Err(ClientError::Server(msg)) => assert!(msg.contains("not loaded"), "{msg}"),
        other => panic!("expected server error, got {other:?}"),
    }
    // Unknown engine names are rejected on LOAD.
    match client.load_dimacs_engine(None, "frobnicate", &dimacs_text) {
        Err(ClientError::Server(msg)) => assert!(msg.contains("unknown engine"), "{msg}"),
        other => panic!("expected server error, got {other:?}"),
    }
}

#[test]
fn status_reports_engine_names_and_evict_accepts_the_pair() {
    let (dimacs_text, _cnf) = corpus_instance();
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let gd = client.load_dimacs(Some("demo"), &dimacs_text).expect("gd");
    let walksat = client
        .load_dimacs_engine(Some("demo"), "walksat", &dimacs_text)
        .expect("walksat");
    assert_eq!(gd.fingerprint, walksat.fingerprint);
    client
        .sample(&SampleParams {
            n: 2,
            threads: Some(1),
            ..SampleParams::with_engine(gd.fingerprint, "walksat")
        })
        .expect("sample walksat");

    // STATUS lists one entry per engine, each tagged with its engine name
    // and carrying its own cumulative stream stats.
    let status = client.status().expect("status");
    let entries = status
        .get("entries")
        .and_then(Json::as_arr)
        .expect("entries");
    assert_eq!(entries.len(), 2);
    let engine_of = |entry: &Json| {
        entry
            .get("engine")
            .and_then(Json::as_str)
            .unwrap()
            .to_string()
    };
    let mut engines: Vec<String> = entries.iter().map(engine_of).collect();
    engines.sort();
    assert_eq!(engines, ["gd", "walksat"]);
    let walksat_entry = entries
        .iter()
        .find(|e| e.get("engine").and_then(Json::as_str) == Some("walksat"))
        .expect("walksat entry");
    let stats = walksat_entry.get("stats").expect("stats");
    assert!(
        stats.get("rounds").and_then(Json::as_u64).unwrap_or(0) > 0,
        "the walksat SAMPLE must be accounted to the walksat entry"
    );

    // EVICT with the (fingerprint, engine) pair drops only that engine.
    assert!(client
        .evict_engine(gd.fingerprint, "walksat")
        .expect("evict walksat"));
    assert!(server.registry().get(&gd.fingerprint, "gd").is_some());
    assert!(server.registry().get(&gd.fingerprint, "walksat").is_none());
    // EVICT without an engine sweeps the remaining entries of the formula.
    assert!(client.evict(gd.fingerprint).expect("evict all"));
    assert!(server.registry().is_empty());
}

#[test]
fn registry_hit_path_skips_recompilation() {
    let (dimacs_text, _cnf) = corpus_instance();
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let first = client.load_dimacs(None, &dimacs_text).expect("first load");
    assert!(!first.cached);
    assert_eq!(server.registry().counters().compiles, 1);

    // Re-loading the identical formula — and sampling it twice — must not
    // compile again.
    let second = client.load_dimacs(None, &dimacs_text).expect("second load");
    assert!(second.cached);
    assert_eq!(second.fingerprint, first.fingerprint);
    for seed in [1u64, 2] {
        client
            .sample(&SampleParams {
                n: 4,
                seed,
                threads: Some(1),
                ..SampleParams::new(first.fingerprint)
            })
            .expect("sample");
    }
    let counters = server.registry().counters();
    assert_eq!(counters.compiles, 1, "hit path recompiled");
    assert!(counters.hits >= 3);

    // The status report exposes the same counters over the wire.
    let status = client.status().expect("status");
    assert_eq!(status.get("compiles").and_then(Json::as_u64), Some(1));
    let entries = status
        .get("entries")
        .and_then(Json::as_arr)
        .expect("entries");
    assert_eq!(entries.len(), 1);
    assert_eq!(
        entries[0].get("fingerprint").and_then(Json::as_str),
        Some(first.fingerprint.to_hex().as_str())
    );
    // Cumulative per-entry stream stats accumulated across the requests.
    let stats = entries[0].get("stats").expect("stats");
    assert!(stats.get("rounds").and_then(Json::as_u64).unwrap_or(0) > 0);
}

#[test]
fn load_is_fingerprint_canonical_across_clause_order() {
    let (_text, cnf) = corpus_instance();
    // Re-emit the DIMACS with the clause list reversed: semantically the
    // same formula, different bytes.
    let mut reversed = htsat_cnf::Cnf::new(cnf.num_vars());
    for clause in cnf.clauses().iter().rev() {
        reversed.push_clause(clause.clone());
    }
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let a = client
        .load_dimacs(None, &dimacs::to_string(&cnf))
        .expect("load");
    let b = client
        .load_dimacs(None, &dimacs::to_string(&reversed))
        .expect("load reversed");
    assert_eq!(a.fingerprint, b.fingerprint);
    assert!(b.cached, "reordered clauses must hit the resident entry");
}

#[test]
fn sample_deadline_and_stale_limit_are_honoured() {
    let (dimacs_text, _cnf) = corpus_instance();
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let load = client.load_dimacs(None, &dimacs_text).expect("load");

    // A zero deadline means no round ever starts.
    let reply = client
        .sample(&SampleParams {
            n: 5,
            deadline_ms: Some(0),
            threads: Some(1),
            ..SampleParams::new(load.fingerprint)
        })
        .expect("sample");
    assert!(reply.solutions.is_empty());
    assert_eq!(reply.stats.rounds, 0);

    // A tiny formula with a huge `n` exhausts instead of spinning forever.
    let tiny = client
        .load_dimacs(Some("tiny"), "p cnf 2 1\n1 2 0\n")
        .expect("load tiny");
    let reply = client
        .sample(&SampleParams {
            n: 1_000,
            max_stale: Some(2),
            threads: Some(1),
            ..SampleParams::new(tiny.fingerprint)
        })
        .expect("sample tiny");
    assert!(reply.exhausted);
    assert!(reply.solutions.len() <= 3, "only 3 satisfying assignments");
}

#[test]
fn errors_do_not_poison_the_session() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Unknown fingerprint.
    let missing = SampleParams::new(htsat_cnf::Fingerprint::of(&htsat_cnf::Cnf::new(1)));
    match client.sample(&missing) {
        Err(ClientError::Server(msg)) => assert!(msg.contains("not loaded"), "{msg}"),
        other => panic!("expected server error, got {other:?}"),
    }

    // Unparseable DIMACS.
    match client.load_dimacs(None, "this is not dimacs") {
        Err(ClientError::Server(msg)) => assert!(msg.contains("parse"), "{msg}"),
        other => panic!("expected server error, got {other:?}"),
    }

    // Path loads are disabled by default.
    match client.load_path(None, "/etc/hostname") {
        Err(ClientError::Server(msg)) => assert!(msg.contains("disabled"), "{msg}"),
        other => panic!("expected server error, got {other:?}"),
    }

    // Wire-supplied resource knobs are capped server-side.
    let (dimacs_text, _cnf) = corpus_instance();
    let load = client.load_dimacs(None, &dimacs_text).expect("load");
    for params in [
        SampleParams {
            batch: Some(1 << 40),
            ..SampleParams::new(load.fingerprint)
        },
        SampleParams {
            threads: Some(1_000_000),
            ..SampleParams::new(load.fingerprint)
        },
        SampleParams {
            n: 1 << 30,
            ..SampleParams::new(load.fingerprint)
        },
    ] {
        match client.sample(&params) {
            Err(ClientError::Server(msg)) => assert!(msg.contains("cap"), "{msg}"),
            other => panic!("expected cap error, got {other:?}"),
        }
    }

    // After all the failures the session still serves good requests.
    let reply = client
        .sample(&SampleParams {
            n: 2,
            threads: Some(1),
            ..SampleParams::new(load.fingerprint)
        })
        .expect("still works");
    assert_eq!(reply.solutions.len(), 2);
}

#[test]
fn evict_then_reload_recompiles() {
    let (dimacs_text, _cnf) = corpus_instance();
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let load = client.load_dimacs(None, &dimacs_text).expect("load");
    assert!(client.evict(load.fingerprint).expect("evict"));
    assert!(
        !client.evict(load.fingerprint).expect("evict again"),
        "gone"
    );
    match client.sample(&SampleParams::new(load.fingerprint)) {
        Err(ClientError::Server(msg)) => assert!(msg.contains("not loaded"), "{msg}"),
        other => panic!("expected server error, got {other:?}"),
    }
    let again = client.load_dimacs(None, &dimacs_text).expect("reload");
    assert!(!again.cached);
    assert_eq!(server.registry().counters().compiles, 2);
}

#[test]
fn lru_eviction_over_the_wire() {
    // Budget sized from a probe entry so exactly two formulas fit.
    let probe = serve(ServeConfig::default()).expect("probe server");
    let mut probe_client = Client::connect(probe.local_addr()).expect("connect");
    let mk = |seed: u64| {
        let instance = families::or_chain(&format!("or-lru-{seed}"), 16, 2, seed);
        dimacs::to_string(&instance.cnf)
    };
    let mut probed = Vec::new();
    for seed in 0..3u64 {
        let load = probe_client.load_dimacs(None, &mk(seed)).expect("probe");
        let bytes = probe
            .registry()
            .get(&load.fingerprint, "gd")
            .expect("probe entry")
            .bytes;
        probed.push(bytes);
    }
    // Room for `a` plus either of `b`/`c`, but never all three: inserting
    // `c` must evict exactly the LRU entry (`b`).
    let server = serve(ServeConfig {
        registry: RegistryConfig {
            budget_bytes: probed[0] + probed[1].max(probed[2]),
            ..RegistryConfig::default()
        },
        ..ServeConfig::default()
    })
    .expect("server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let a = client.load_dimacs(Some("a"), &mk(0)).expect("a");
    let _b = client.load_dimacs(Some("b"), &mk(1)).expect("b");
    // Touch `a`, then insert `c`: `b` is the LRU victim.
    client
        .sample(&SampleParams {
            n: 1,
            threads: Some(1),
            ..SampleParams::new(a.fingerprint)
        })
        .expect("touch a");
    let _c = client.load_dimacs(Some("c"), &mk(2)).expect("c");
    let names: Vec<String> = server
        .registry()
        .snapshot()
        .iter()
        .map(|e| e.name.clone())
        .collect();
    assert!(names.contains(&"a".to_string()), "recently-used a survives");
    assert!(names.contains(&"c".to_string()), "new entry admitted");
    assert!(server.registry().counters().evictions >= 1);
}

#[test]
fn graceful_shutdown_over_the_wire() {
    let (dimacs_text, _cnf) = corpus_instance();
    let mut server = start_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.load_dimacs(None, &dimacs_text).expect("load");
    client.shutdown().expect("shutdown acknowledged");
    server.wait();
    assert!(server.is_stopped());
    // The already-open session is closed; further requests on it fail.
    // (Deliberately NOT asserting that a fresh connect fails: the freed
    // ephemeral port may be rebound by a concurrently running test.)
    assert!(client.status().is_err());
}

#[test]
fn concurrent_clients_share_the_registry() {
    let (dimacs_text, cnf) = corpus_instance();
    let server = start_server();
    let addr = server.local_addr();
    let mut seed_threads = Vec::new();
    for seed in 0..3u64 {
        let text = dimacs_text.clone();
        seed_threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let load = client.load_dimacs(None, &text).expect("load");
            client
                .sample(&SampleParams {
                    n: 4,
                    seed,
                    threads: Some(1),
                    ..SampleParams::new(load.fingerprint)
                })
                .expect("sample")
                .solutions
        }));
    }
    for handle in seed_threads {
        let solutions = handle.join().expect("client thread");
        assert_eq!(solutions.len(), 4);
        for s in &solutions {
            assert!(cnf.is_satisfied_by_bits(s));
        }
    }
    // Three concurrent loads of the same formula, one compile.
    assert_eq!(server.registry().counters().compiles, 1);
    assert_eq!(server.registry().len(), 1);
}
