//! The CI `protocol-gate`: one real daemon driven the way the v2 protocol
//! is meant to be used in anger, with determinism as the acceptance bar.
//!
//! * Two v2 clients, each running two pipelined chunked SAMPLEs at once —
//!   every reassembled stream must be bit-identical to the in-process
//!   `stream()` sequence, at 1 and at 8 worker threads.
//! * A v1 client working the same daemon concurrently, whose replies must
//!   round-trip completely unchanged (no v2 framing fields).
//! * One SUBSCRIBE feed fanning out a single engine session to three
//!   subscribers, one of them zero-credit: it stalls alone, the other two
//!   drain bit-identical batch sequences.
//! * The multiplexing is visible in STATS, and the daemon shuts down
//!   gracefully at the end.

use htsat_cnf::dimacs;
use htsat_core::{GdSampler, SamplerConfig};
use htsat_instances::families;
use htsat_serve::json::Json;
use htsat_serve::proto::{SampleParams, SubscribeParams};
use htsat_serve::{serve, Client, ClientError, SampleEvent, ServeConfig, SubEvent};
use htsat_tensor::Backend;

#[test]
fn protocol_gate() {
    let instance = families::or_chain("or-gate", 24, 2, 0xF2A);
    let cnf = instance.cnf;
    let dimacs_text = dimacs::to_string(&cnf);
    let mut server = serve(ServeConfig::default()).expect("bind loopback daemon");
    let addr = server.local_addr();

    // Load once; every client below rides the resident entry.
    let mut loader = Client::connect(addr).expect("connect loader");
    let load = loader
        .load_dimacs(Some("or-gate"), &dimacs_text)
        .expect("load");
    let fingerprint = load.fingerprint;

    const N: usize = 10;
    let reference = |seed: u64, threads: usize| -> Vec<Vec<bool>> {
        let config = SamplerConfig {
            seed,
            backend: Backend::Threads(threads),
            ..SamplerConfig::default()
        };
        let mut sampler = GdSampler::new(&cnf, config).expect("reference sampler");
        sampler.stream().take(N).collect()
    };

    let t0 = std::time::Instant::now();
    // --- Leg 1: 2 clients x 2 pipelined chunked SAMPLEs, 1 and 8 threads.
    for threads in [1usize, 8] {
        let mut client_threads = Vec::new();
        for client_idx in 0..2u64 {
            let cnf = cnf.clone();
            client_threads.push(std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect v2 client");
                assert_eq!(client.hello().expect("hello"), 2);
                let seeds = [100 + client_idx * 10, 101 + client_idx * 10];
                let ids: Vec<u64> = seeds
                    .iter()
                    .map(|&seed| {
                        client
                            .sample_start(&SampleParams {
                                n: N,
                                seed,
                                threads: Some(threads),
                                ..SampleParams::new(fingerprint)
                            })
                            .expect("start pipelined sample")
                    })
                    .collect();
                // Drain the two streams strictly interleaved so chunks of
                // each arrive while the reader waits on the other.
                let mut reassembled = vec![Vec::new(); ids.len()];
                let mut open = vec![true; ids.len()];
                while open.iter().any(|o| *o) {
                    for (lane, &id) in ids.iter().enumerate() {
                        if !open[lane] {
                            continue;
                        }
                        match client.sample_next(id).expect("sample frame") {
                            SampleEvent::Batch(batch) => reassembled[lane].extend(batch),
                            SampleEvent::Done(done) => {
                                assert!(done.stats.rounds > 0);
                                assert!(done.chunks >= 1);
                                open[lane] = false;
                            }
                        }
                    }
                }
                for (lane, solutions) in reassembled.iter().enumerate() {
                    for s in solutions {
                        assert!(cnf.is_satisfied_by_bits(s));
                    }
                    assert_eq!(solutions.len(), N, "lane {lane} short");
                }
                (seeds, reassembled)
            }));
        }
        for handle in client_threads {
            let (seeds, reassembled) = handle.join().expect("v2 client thread");
            for (lane, &seed) in seeds.iter().enumerate() {
                assert_eq!(
                    reassembled[lane],
                    reference(seed, threads),
                    "pipelined chunked SAMPLE (seed {seed}) must be bit-identical \
                     to the in-process stream at {threads} thread(s)"
                );
            }
        }
        eprintln!(
            "[gate] leg 1 ({threads} threads) done at {:?}",
            t0.elapsed()
        );
    }

    // --- Leg 2: a v1-framed client round-trips unchanged against the v2
    // daemon (same process, same registry, no HELLO).
    let mut v1 = Client::connect(addr).expect("connect v1 client");
    assert_eq!(v1.version(), 1);
    let reply = v1
        .sample(&SampleParams {
            n: N,
            seed: 100,
            threads: Some(1),
            ..SampleParams::new(fingerprint)
        })
        .expect("v1 sample");
    assert_eq!(
        reply.solutions,
        reference(100, 1),
        "the v1 path must serve the identical sequence"
    );

    eprintln!("[gate] leg 2 (v1 round-trip) done at {:?}", t0.elapsed());

    // --- Leg 3: SUBSCRIBE fanout — one engine session, three subscribers,
    // the zero-credit one stalls without blocking the others. A tiny
    // instance (three satisfying assignments) keeps the feed short: the
    // stream goes stale after a handful of batches no matter how much
    // credit the subscribers keep granting.
    let mut subscriber = Client::connect(addr).expect("connect subscriber client");
    subscriber.hello().expect("hello");
    let tiny_text = "p cnf 2 1\n1 2 0\n";
    let tiny_cnf = dimacs::parse_str(tiny_text).expect("parse tiny");
    let tiny = subscriber
        .load_dimacs(Some("tiny"), tiny_text)
        .expect("load tiny");
    let base = SubscribeParams {
        seed: 9,
        threads: Some(1),
        max_stale: Some(2),
        chunk: 2,
        ..SubscribeParams::new(tiny.fingerprint)
    };
    // All three seats open with ZERO credit: the producer parks, so the
    // status snapshot and the seating order are deterministic — every seat
    // exists before the first batch.
    let seats: Vec<u64> = (0..3)
        .map(|_| {
            subscriber
                .subscribe(&SubscribeParams {
                    credit: 0,
                    ..base.clone()
                })
                .expect("subscribe")
        })
        .collect();
    let (starved, funded) = (seats[0], &seats[1..]);
    let status = subscriber.status().expect("status");
    assert_eq!(status.get("feeds").and_then(Json::as_u64), Some(1));
    assert_eq!(status.get("subscribers").and_then(Json::as_u64), Some(3));

    // Funding the first seat wakes the producer, and the tiny stream can
    // run stale so fast that the feed is already over when the second
    // grant lands — that rejection is the protocol working as specified
    // (the seat's terminal frame is in flight), so it is tolerated.
    subscriber
        .grant_credit(funded[0], 64)
        .expect("grant credit");
    match subscriber.grant_credit(funded[1], 64) {
        Ok(_) => {}
        Err(ClientError::Server(msg)) if msg.contains("unknown subscription") => {}
        Err(other) => panic!("grant credit: {other:?}"),
    }
    let mut sequences: Vec<Vec<(u64, Vec<Vec<bool>>)>> = Vec::new();
    let mut totals = Vec::new();
    for &sub in funded {
        let mut batches = Vec::new();
        loop {
            match subscriber.sub_next(sub).expect("feed event") {
                SubEvent::Batch { seq, solutions } => batches.push((seq, solutions)),
                SubEvent::Done {
                    delivered, stalls, ..
                } => {
                    assert_eq!(delivered as usize, batches.len());
                    totals.push(delivered + stalls);
                    break;
                }
            }
        }
        sequences.push(batches);
    }
    assert!(
        !sequences[0].is_empty(),
        "the first-funded seat drained the feed"
    );
    // Bit-identical fanout wherever two seats saw the same batch.
    for (seq, batch) in &sequences[0] {
        if let Some((_, other)) = sequences[1].iter().find(|(s, _)| s == seq) {
            assert_eq!(batch, other, "fanout of seq {seq} diverged");
        }
    }
    for s in sequences.iter().flat_map(|b| b.iter().flat_map(|(_, s)| s)) {
        assert!(tiny_cnf.is_satisfied_by_bits(s));
    }
    match subscriber.sub_next(starved).expect("starved terminal") {
        SubEvent::Done {
            delivered, stalls, ..
        } => {
            assert_eq!(delivered, 0, "a zero-credit seat receives nothing");
            assert!(stalls >= 1, "and stalls for every batch it missed");
            totals.push(delivered + stalls);
        }
        SubEvent::Batch { .. } => panic!("zero-credit seat got a batch"),
    }
    // Every seat was in place before the producer woke, so each one was
    // seated for the feed's whole life: delivered + stalls agree exactly.
    assert!(
        totals.windows(2).all(|w| w[0] == w[1]),
        "all seats accounted for every batch: {totals:?}"
    );

    eprintln!("[gate] leg 3 (subscribe fanout) done at {:?}", t0.elapsed());

    // --- Leg 4: the multiplexing left its marks in STATS.
    let snapshot = loader.stats().expect("stats");
    assert!(
        snapshot
            .histogram("serve.multiplex_depth")
            .map_or(0, |h| h.count)
            > 0,
        "tagged dispatch must record multiplex depth"
    );
    assert!(snapshot.counter("serve.requests.hello").unwrap_or(0) >= 5);
    assert!(snapshot.counter("serve.sub.batches").unwrap_or(0) >= 2);
    assert!(snapshot.counter("serve.sub.stalls").unwrap_or(0) >= 1);
    assert_eq!(
        snapshot.gauge("serve.inflight").unwrap_or(-1),
        0,
        "no worker is left in flight once every stream completed"
    );
    assert_eq!(snapshot.gauge("serve.sub.subscribers").unwrap_or(-1), 0);

    // --- Leg 5: graceful shutdown.
    loader.shutdown().expect("graceful shutdown");
    server.wait();
    assert!(server.is_stopped());
}
