//! Protocol v2 framing edge cases, driven against a real daemon.
//!
//! Covers the negotiation boundary (`HELLO` versions, v1 replies staying
//! bit-for-bit free of v2 framing), reader-side admission (duplicate
//! in-flight ids, missing ids), multiplexed streams (interleaved chunks
//! reassembling bit-identically), the `shutdown` terminal error frames for
//! in-flight streams, credit starvation that stalls exactly the starved
//! subscriber, and partial-line / read-timeout survival under the new
//! framing.

use htsat_cnf::dimacs;
use htsat_core::{GdSampler, SamplerConfig};
use htsat_instances::families;
use htsat_serve::json::Json;
use htsat_serve::proto::{SampleParams, SubscribeParams};
use htsat_serve::{serve, Client, ClientError, SampleEvent, ServeConfig, SubEvent};
use htsat_tensor::Backend;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A 2-variable formula with exactly three satisfying assignments: its
/// streams exhaust fast under a stale limit, or run forever without one
/// (ideal for holding a stream open until SHUTDOWN).
const TINY: &str = "p cnf 2 1\n1 2 0\n";

fn corpus_instance() -> (String, htsat_cnf::Cnf) {
    let instance = families::or_chain("or-v2", 24, 2, 0xF2A);
    (dimacs::to_string(&instance.cnf), instance.cnf)
}

fn start_server() -> htsat_serve::ServerHandle {
    serve(ServeConfig::default()).expect("bind loopback ephemeral port")
}

/// A raw line-oriented wire connection, for asserting exact frame shapes
/// the typed client would normalize away.
struct Raw {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Raw {
    fn connect(addr: std::net::SocketAddr) -> Raw {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let writer = stream.try_clone().expect("clone");
        Raw {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read");
        assert!(!line.is_empty(), "server closed the connection");
        Json::parse(line.trim_end()).expect("parse reply")
    }

    /// Reads frames until `predicate` matches, failing after `limit` frames.
    fn recv_until(&mut self, limit: usize, predicate: impl Fn(&Json) -> bool) -> Json {
        for _ in 0..limit {
            let frame = self.recv();
            if predicate(&frame) {
                return frame;
            }
        }
        panic!("no matching frame within {limit} frames");
    }
}

fn kind(frame: &Json) -> Option<&str> {
    frame.get("frame").and_then(Json::as_str)
}

fn id_of(frame: &Json) -> Option<u64> {
    frame.get("id").and_then(Json::as_u64)
}

#[test]
fn hello_negotiates_versions_and_rejects_unknown_ones() {
    let server = start_server();

    // Explicitly negotiating v1 is valid and changes nothing.
    let mut v1 = Raw::connect(server.local_addr());
    v1.send("{\"cmd\":\"hello\",\"version\":1}");
    let reply = v1.recv();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(reply.get("version").and_then(Json::as_u64), Some(1));
    assert_eq!(reply.get("max_version").and_then(Json::as_u64), Some(2));
    assert!(reply.get("frame").is_none(), "v1 replies carry no framing");
    v1.send("{\"cmd\":\"status\"}");
    assert!(v1.recv().get("frame").is_none());

    // An unknown version is rejected (and the session stays v1).
    let mut bad = Raw::connect(server.local_addr());
    bad.send("{\"cmd\":\"hello\",\"version\":99}");
    let reply = bad.recv();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        reply.get("code").and_then(Json::as_str),
        Some("bad-request")
    );
    assert!(reply
        .get("error")
        .and_then(Json::as_str)
        .expect("error text")
        .contains("unsupported protocol version 99"));
    bad.send("{\"cmd\":\"status\"}");
    assert_eq!(bad.recv().get("ok").and_then(Json::as_bool), Some(true));

    // Negotiating v2 switches every subsequent exchange to tagged frames.
    let mut v2 = Raw::connect(server.local_addr());
    v2.send("{\"cmd\":\"hello\",\"version\":2}");
    let reply = v2.recv();
    assert_eq!(reply.get("version").and_then(Json::as_u64), Some(2));
    assert!(reply.get("frame").is_none(), "the HELLO reply itself is v1");
    v2.send("{\"cmd\":\"status\",\"id\":7}");
    let frame = v2.recv();
    assert_eq!(kind(&frame), Some("reply"));
    assert_eq!(id_of(&frame), Some(7));
    // A second HELLO on an upgraded session is an error.
    v2.send("{\"cmd\":\"hello\",\"version\":2,\"id\":8}");
    let frame = v2.recv();
    assert_eq!(kind(&frame), Some("error"));
    assert_eq!(id_of(&frame), Some(8));
}

#[test]
fn v1_framing_stays_bit_for_bit_free_of_v2_fields() {
    let (dimacs_text, _cnf) = corpus_instance();
    let server = start_server();
    let mut raw = Raw::connect(server.local_addr());

    // A v1 session (no HELLO): every reply — success, error, SAMPLE — must
    // be indistinguishable from the pre-v2 daemon: no `frame`, no `id`.
    let escaped = dimacs_text.replace('\n', "\\n");
    raw.send(&format!("{{\"cmd\":\"load\",\"dimacs\":\"{escaped}\"}}"));
    let load = raw.recv();
    assert_eq!(load.get("ok").and_then(Json::as_bool), Some(true));
    let fingerprint = load
        .get("fingerprint")
        .and_then(Json::as_str)
        .expect("fingerprint")
        .to_string();
    raw.send(&format!(
        "{{\"cmd\":\"sample\",\"fingerprint\":\"{fingerprint}\",\"n\":3,\"seed\":5,\"threads\":1}}"
    ));
    let sample = raw.recv();
    raw.send("{\"cmd\":\"frobnicate\"}");
    let error = raw.recv();
    for (name, reply) in [("load", &load), ("sample", &sample), ("error", &error)] {
        assert!(reply.get("frame").is_none(), "{name} reply grew `frame`");
        assert!(reply.get("id").is_none(), "{name} reply grew `id`");
        assert!(reply.get("seq").is_none(), "{name} reply grew `seq`");
    }
    assert_eq!(
        sample
            .get("solutions")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(3),
        "a v1 SAMPLE still returns the whole batch in one reply"
    );
    assert_eq!(error.get("ok").and_then(Json::as_bool), Some(false));
}

#[test]
fn reader_rejects_duplicate_and_missing_ids_and_shutdown_closes_streams() {
    let mut server = start_server();
    let mut raw = Raw::connect(server.local_addr());
    raw.send("{\"cmd\":\"hello\",\"version\":2}");
    raw.recv();

    raw.send(&format!(
        "{{\"cmd\":\"load\",\"dimacs\":\"{}\",\"id\":1}}",
        TINY.replace('\n', "\\n")
    ));
    let load = raw.recv_until(4, |f| id_of(f) == Some(1));
    assert_eq!(kind(&load), Some("reply"));
    let fingerprint = load
        .get("fingerprint")
        .and_then(Json::as_str)
        .expect("fingerprint")
        .to_string();

    // A v2 request without an id cannot be attributed: error with id null.
    raw.send("{\"cmd\":\"status\"}");
    let unattributed = raw.recv();
    assert_eq!(kind(&unattributed), Some("error"));
    assert_eq!(unattributed.get("id"), Some(&Json::Null));
    assert_eq!(
        unattributed.get("code").and_then(Json::as_str),
        Some("bad-request")
    );

    // Open a stream that cannot finish within the test: 3 satisfying
    // assignments, a 1000-solution target, and a stale limit so large the
    // dedup rounds effectively never exhaust.
    let sample = format!(
        "{{\"cmd\":\"sample\",\"fingerprint\":\"{fingerprint}\",\"n\":1000,\"seed\":3,\
         \"threads\":1,\"max_stale\":4000000000,\"id\":2}}"
    );
    raw.send(&sample);

    // Reusing the in-flight id is rejected without touching the stream.
    raw.send(&sample);
    let duplicate = raw.recv_until(8, |f| kind(f) == Some("error") && id_of(f) == Some(2));
    assert_eq!(
        duplicate.get("code").and_then(Json::as_str),
        Some("bad-request")
    );
    assert!(duplicate
        .get("error")
        .and_then(Json::as_str)
        .expect("error text")
        .contains("duplicate in-flight `id` 2"));

    // SHUTDOWN with the stream still open: the stream must get a terminal
    // error frame with code `shutdown` before the socket closes.
    raw.send("{\"cmd\":\"shutdown\",\"id\":3}");
    let mut saw_ack = false;
    let mut saw_stream_shutdown = false;
    for _ in 0..16 {
        let frame = raw.recv();
        match id_of(&frame) {
            Some(3) => saw_ack = true,
            Some(2) if kind(&frame) == Some("error") => {
                assert_eq!(
                    frame.get("code").and_then(Json::as_str),
                    Some("shutdown"),
                    "in-flight streams end with the shutdown code"
                );
                saw_stream_shutdown = true;
            }
            _ => {} // chunks of the stream racing the shutdown
        }
        if saw_ack && saw_stream_shutdown {
            break;
        }
    }
    assert!(saw_ack, "SHUTDOWN must still be acknowledged");
    assert!(
        saw_stream_shutdown,
        "the open stream must receive a terminal `shutdown` error frame"
    );
    server.wait();
}

#[test]
fn shutdown_terminates_every_open_stream_through_the_client() {
    let mut server = start_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.hello().expect("hello");
    let load = client.load_dimacs(Some("tiny"), TINY).expect("load");

    // Two concurrently in-flight chunked streams, neither able to finish
    // within the test (stale limit effectively infinite).
    let first = client
        .sample_start(&SampleParams {
            n: 1000,
            seed: 1,
            threads: Some(1),
            max_stale: Some(u32::MAX),
            ..SampleParams::new(load.fingerprint)
        })
        .expect("start first");
    let second = client
        .sample_start(&SampleParams {
            n: 1000,
            seed: 2,
            threads: Some(1),
            max_stale: Some(u32::MAX),
            ..SampleParams::new(load.fingerprint)
        })
        .expect("start second");

    client.shutdown().expect("shutdown acknowledged");

    // Both streams must end with the `shutdown` terminal error (their
    // already-produced chunks still arrive first, in order).
    for id in [first, second] {
        loop {
            match client.sample_next(id) {
                Ok(SampleEvent::Batch(batch)) => assert!(!batch.is_empty()),
                Ok(SampleEvent::Done(done)) => {
                    panic!("stream {id} completed normally: {done:?}")
                }
                Err(ClientError::Server(msg)) => {
                    assert!(msg.contains("shutting down"), "{msg}");
                    break;
                }
                Err(other) => panic!("stream {id}: unexpected {other:?}"),
            }
        }
    }
    server.wait();
    assert!(server.is_stopped());
}

#[test]
fn interleaved_chunked_samples_reassemble_bit_identically() {
    let (dimacs_text, cnf) = corpus_instance();
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.hello().expect("hello");
    let load = client
        .load_dimacs(Some("or-v2"), &dimacs_text)
        .expect("load");

    const N: usize = 12;
    let seeds = [11u64, 12];
    for threads in [1usize, 8] {
        // In-process references, one per seed.
        let references: Vec<Vec<Vec<bool>>> = seeds
            .iter()
            .map(|&seed| {
                let config = SamplerConfig {
                    seed,
                    backend: Backend::Threads(threads),
                    ..SamplerConfig::default()
                };
                let mut reference = GdSampler::new(&cnf, config).expect("reference");
                reference.stream().take(N).collect()
            })
            .collect();

        // Both streams in flight at once; drain them strictly alternating,
        // so chunks of one arrive while the reader waits on the other and
        // must be routed, not dropped.
        let ids: Vec<u64> = seeds
            .iter()
            .map(|&seed| {
                client
                    .sample_start(&SampleParams {
                        n: N,
                        seed,
                        threads: Some(threads),
                        ..SampleParams::new(load.fingerprint)
                    })
                    .expect("start")
            })
            .collect();
        let mut reassembled = vec![Vec::new(); ids.len()];
        let mut open = vec![true; ids.len()];
        while open.iter().any(|o| *o) {
            for (lane, &id) in ids.iter().enumerate() {
                if !open[lane] {
                    continue;
                }
                match client.sample_next(id).expect("frame") {
                    SampleEvent::Batch(batch) => reassembled[lane].extend(batch),
                    SampleEvent::Done(done) => {
                        assert!(done.chunks >= 1);
                        open[lane] = false;
                    }
                }
            }
        }
        assert_eq!(
            reassembled, references,
            "pipelined chunked streams must concatenate bit-identically to \
             the in-process sequences at {threads} thread(s)"
        );
    }
}

#[test]
fn credit_exhaustion_stalls_exactly_the_starved_subscriber() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.hello().expect("hello");
    let load = client.load_dimacs(Some("tiny"), TINY).expect("load");

    let base = SubscribeParams {
        seed: 9,
        threads: Some(1),
        max_stale: Some(2),
        chunk: 2,
        ..SubscribeParams::new(load.fingerprint)
    };
    // Every seat opens with ZERO credit: the producer parks until the
    // first grant, so the status snapshot and the seating order are
    // deterministic — all three seats exist before any batch is produced.
    let starved = client
        .subscribe(&SubscribeParams {
            credit: 0,
            ..base.clone()
        })
        .expect("subscribe starved");
    let fed_a = client
        .subscribe(&SubscribeParams {
            credit: 0,
            ..base.clone()
        })
        .expect("subscribe a");
    let fed_b = client
        .subscribe(&SubscribeParams { credit: 0, ..base })
        .expect("subscribe b");
    let status = client.status().expect("status");
    assert_eq!(status.get("feeds").and_then(Json::as_u64), Some(1));
    assert_eq!(status.get("subscribers").and_then(Json::as_u64), Some(3));

    // The first grant wakes the producer, and the tiny stream can run
    // stale before the second grant lands — in which case that grant
    // bounces off an already-ended subscription, which is the protocol
    // working as specified (the seat's terminal frame is in flight).
    client.grant_credit(fed_a, 64).expect("grant a");
    match client.grant_credit(fed_b, 64) {
        Ok(_) => {}
        Err(ClientError::Server(msg)) if msg.contains("unknown subscription") => {}
        Err(other) => panic!("grant b: {other:?}"),
    }

    // The funded subscribers drain to the end. What the contract
    // guarantees: batches at the same `seq` are bit-identical across
    // seats, each seat's own delivery has no internal gaps, and
    // delivered + stalls accounts for every batch produced while seated.
    let mut batches_by_seq: Vec<(u64, Vec<Vec<bool>>)> = Vec::new();
    let mut totals = Vec::new();
    for sub in [fed_a, fed_b] {
        let mut seqs = Vec::new();
        loop {
            match client.sub_next(sub).expect("feed event") {
                SubEvent::Batch {
                    seq,
                    solutions: batch,
                } => {
                    if let Some((_, seen)) = batches_by_seq.iter().find(|(s, _)| *s == seq) {
                        assert_eq!(seen, &batch, "fanout of seq {seq} is bit-identical");
                    } else {
                        batches_by_seq.push((seq, batch));
                    }
                    seqs.push(seq);
                }
                SubEvent::Done {
                    delivered, stalls, ..
                } => {
                    assert_eq!(delivered as usize, seqs.len());
                    totals.push(delivered + stalls);
                    break;
                }
            }
        }
        // Contiguous from this seat's first batch: it stalled at most at
        // the start (before its credit landed), never in the middle.
        if let Some(&first) = seqs.first() {
            assert_eq!(
                seqs,
                (first..first + seqs.len() as u64).collect::<Vec<u64>>()
            );
        }
    }
    assert!(
        totals[0] >= 1,
        "the first-funded subscriber drained the feed"
    );

    // The starved subscriber saw the whole feed as stalls — and delivered
    // nothing.
    match client.sub_next(starved).expect("starved terminal") {
        SubEvent::Done {
            delivered, stalls, ..
        } => {
            assert_eq!(delivered, 0, "zero credit means zero deliveries");
            assert!(stalls >= 1, "every produced batch counted as a stall");
            totals.push(delivered + stalls);
        }
        SubEvent::Batch { .. } => panic!("a zero-credit subscriber got a batch"),
    }
    // delivered + stalls is the batch count produced while a seat was
    // held. All three seats were in place before the producer woke, so
    // all three agree exactly.
    assert!(
        totals.windows(2).all(|w| w[0] == w[1]),
        "every seat was seated for every batch: {totals:?}"
    );

    // The fanout is visible in STATS (counters are process-global across
    // the test binary, so assert floors, not exact values).
    let snapshot = client.stats().expect("stats");
    assert!(snapshot.counter("serve.sub.batches").unwrap_or(0) >= 2);
    assert!(snapshot.counter("serve.sub.stalls").unwrap_or(0) >= 1);
}

#[test]
fn unsubscribe_reclaims_the_seat_and_frees_the_feed() {
    let server = start_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.hello().expect("hello");
    let load = client.load_dimacs(Some("tiny"), TINY).expect("load");

    // A zero-credit subscriber parks the producer; unsubscribing the only
    // seat abandons the feed, which must clean itself up.
    let sub = client
        .subscribe(&SubscribeParams {
            seed: 4,
            threads: Some(1),
            max_stale: Some(2),
            credit: 0,
            ..SubscribeParams::new(load.fingerprint)
        })
        .expect("subscribe");
    client.unsubscribe(sub).expect("unsubscribe");
    // Unknown afterwards — both to the server and to the client.
    match client.grant_credit(sub, 1) {
        Err(ClientError::Server(msg)) => assert!(msg.contains("unknown subscription"), "{msg}"),
        other => panic!("expected unknown-subscription error, got {other:?}"),
    }
    // The feed drains off the registry once the producer notices.
    for _ in 0..100 {
        let status = client.status().expect("status");
        if status.get("subscribers").and_then(Json::as_u64) == Some(0)
            && status.get("feeds").and_then(Json::as_u64) == Some(0)
        {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("abandoned feed never cleaned up");
}

#[test]
fn client_timeout_is_typed_and_carries_the_pending_ids() {
    let mut server = start_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.hello().expect("hello");
    let load = client.load_dimacs(Some("tiny"), TINY).expect("load");

    // A stream that produces its 3 unique solutions and then goes quiet
    // for the rest of the test (stale limit effectively infinite, target
    // far above the solution count).
    let id = client
        .sample_start(&SampleParams {
            n: 1000,
            seed: 6,
            threads: Some(1),
            max_stale: Some(u32::MAX),
            ..SampleParams::new(load.fingerprint)
        })
        .expect("start");
    client
        .set_timeout(Some(Duration::from_millis(150)))
        .expect("arm timeout");
    let mut got_batch = false;
    loop {
        match client.sample_next(id) {
            Ok(SampleEvent::Batch(_)) => got_batch = true,
            Ok(SampleEvent::Done(done)) => panic!("stream completed: {done:?}"),
            Err(ClientError::Timeout { pending }) => {
                assert_eq!(pending, vec![id], "the stalled stream is pending");
                break;
            }
            Err(other) => panic!("unexpected {other:?}"),
        }
    }
    assert!(got_batch, "the solutions arrived before the stall");

    // The connection survives the timeout: the same session still answers
    // (with the timeout still armed — replies just have to be fast).
    let status = client.status().expect("status after timeout");
    assert!(status.get("uptime_ms").is_some() || status.get("ok").is_some());
    client.shutdown().expect("shutdown");
    match client.sample_next(id) {
        Err(ClientError::Server(msg)) => assert!(msg.contains("shutting down"), "{msg}"),
        other => panic!("expected shutdown error, got {other:?}"),
    }
    server.wait();
}

#[test]
fn partial_lines_survive_the_read_poll_under_both_framings() {
    let server = start_server();

    // v1: a request split across writes with a pause longer than the
    // server's 50ms read poll must still parse as one line.
    let mut v1 = Raw::connect(server.local_addr());
    let line = "{\"cmd\":\"status\"}\n";
    let (head, tail) = line.split_at(7);
    v1.writer.write_all(head.as_bytes()).expect("head");
    std::thread::sleep(Duration::from_millis(120));
    v1.writer.write_all(tail.as_bytes()).expect("tail");
    assert_eq!(v1.recv().get("ok").and_then(Json::as_bool), Some(true));

    // v2: same split, now through the tagged reader loop.
    let mut v2 = Raw::connect(server.local_addr());
    v2.send("{\"cmd\":\"hello\",\"version\":2}");
    v2.recv();
    let line = "{\"cmd\":\"status\",\"id\":5}\n";
    let (head, tail) = line.split_at(9);
    v2.writer.write_all(head.as_bytes()).expect("head");
    std::thread::sleep(Duration::from_millis(120));
    v2.writer.write_all(tail.as_bytes()).expect("tail");
    let frame = v2.recv();
    assert_eq!(kind(&frame), Some("reply"));
    assert_eq!(id_of(&frame), Some(5));
}
