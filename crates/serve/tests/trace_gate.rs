//! Request-scoped tracing, driven against a real daemon: wire-propagated
//! trace ids, per-request span timelines with the full
//! reader → worker → writer attribution, the `TRACE` verb's filters, and
//! the framing contracts (explicit ids echoed on *every* v2 frame of the
//! request; v1 responses never growing a `trace` key).
//!
//! The trace ring is process-global, so every assertion here filters by
//! the test's own trace ids or verbs — tests in this binary run
//! concurrently and each drives its own daemon.

use htsat_cnf::dimacs;
use htsat_instances::families;
use htsat_obs::trace::Timeline;
use htsat_obs::TraceId;
use htsat_serve::json::Json;
use htsat_serve::proto::SampleParams;
use htsat_serve::{serve, Client, SampleEvent, ServeConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn corpus_instance() -> String {
    let instance = families::or_chain("or-trace", 24, 2, 0xF2A);
    dimacs::to_string(&instance.cnf)
}

fn start_server() -> htsat_serve::ServerHandle {
    serve(ServeConfig::default()).expect("bind loopback ephemeral port")
}

/// A raw line-oriented wire connection, for asserting exact frame shapes
/// the typed client would normalize away.
struct Raw {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Raw {
    fn connect(addr: std::net::SocketAddr) -> Raw {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let writer = stream.try_clone().expect("clone");
        Raw {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write");
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read");
        assert!(!line.is_empty(), "server closed the connection");
        Json::parse(line.trim_end()).expect("parse reply")
    }
}

/// The span names of one timeline, in recorded order.
fn span_names(timeline: &Timeline) -> Vec<&str> {
    timeline.spans.iter().map(|s| s.name.as_str()).collect()
}

#[test]
fn pipelined_traced_samples_attribute_reader_worker_writer_and_engine() {
    let server = start_server();
    let dimacs_text = corpus_instance();

    // Two concurrent v2 connections, each stamping its own trace id and
    // pipelining two chunked SAMPLEs — four in-flight traced requests.
    let (trace_a, trace_b) = (
        TraceId::from_u128(0x7ACE_0001),
        TraceId::from_u128(0x7ACE_0002),
    );
    let mut fingerprint = None;
    for trace in [trace_a, trace_b] {
        let mut client = Client::connect(server.local_addr()).expect("connect");
        client.hello().expect("negotiate v2");
        client.set_trace(Some(trace));
        let load = client
            .load_dimacs(Some("trace-gate"), &dimacs_text)
            .expect("load");
        fingerprint = Some(load.fingerprint);
        let ids: Vec<u64> = (0..2)
            .map(|i| {
                client
                    .sample_start(&SampleParams {
                        n: 5,
                        seed: 7 + i,
                        ..SampleParams::new(load.fingerprint)
                    })
                    .expect("start pipelined sample")
            })
            .collect();
        for id in ids {
            while let SampleEvent::Batch(batch) = client.sample_next(id).expect("stream event") {
                assert!(!batch.is_empty());
            }
        }
    }
    let _ = fingerprint.expect("loaded");

    // Query TRACE through a fresh (v1!) connection: the verb works on both
    // framings.
    let mut reader = Client::connect(server.local_addr()).expect("connect");
    let report = reader
        .trace(None, Some("sample"), None)
        .expect("TRACE report");
    let ours: Vec<&Timeline> = report
        .timelines
        .iter()
        .filter(|t| t.trace == trace_a || t.trace == trace_b)
        .collect();
    assert_eq!(ours.len(), 4, "all four pipelined samples recorded");

    for timeline in &ours {
        assert_eq!(timeline.verb, "sample");
        assert!(timeline.total_ns > 0);
        assert_eq!(timeline.dropped_spans, 0);
        let names = span_names(timeline);
        // The full request path is attributed: reader admission, the
        // worker's serve.request with the engine's rounds nested beneath
        // it, then the writer splitting queue-wait / serialize / write for
        // the request's frames.
        for required in [
            "serve.reader",
            "serve.request",
            "engine.round",
            "serve.worker.queue_wait",
            "serve.writer.serialize",
            "serve.writer.write",
        ] {
            assert!(
                names.contains(&required),
                "timeline {} misses `{required}`: {names:?}",
                timeline.trace.to_hex()
            );
        }
        // Parent structure: engine rounds hang off the worker's
        // serve.request span (thread-local binding), writer spans are
        // roots (they happen on the writer thread, outside any scope).
        let request_idx = timeline
            .spans
            .iter()
            .position(|s| s.name == "serve.request")
            .expect("serve.request span");
        for span in &timeline.spans {
            match span.name.as_str() {
                "engine.round" => {
                    assert_eq!(
                        span.parent,
                        Some(request_idx as u32),
                        "engine.round nests under serve.request"
                    );
                }
                "serve.reader"
                | "serve.worker.queue_wait"
                | "serve.writer.serialize"
                | "serve.writer.write" => {
                    assert_eq!(span.parent, None, "{} is a root span", span.name);
                }
                _ => {}
            }
            assert!(
                span.start_ns + span.duration_ns <= timeline.total_ns,
                "span {} ends inside the request total",
                span.name
            );
        }
        // A chunked stream writes at least two frames (chunk + done), each
        // recording its own queue-wait/serialize/write triple.
        let writes = names.iter().filter(|n| **n == "serve.writer.write").count();
        assert!(writes >= 2, "expected >= 2 written frames, got {writes}");
    }

    // TRACE filters: `last` caps, an impossible `min_ms` empties.
    let capped = reader.trace(Some(1), None, None).expect("capped");
    assert!(capped.timelines.len() <= 1);
    let none = reader
        .trace(None, Some("sample"), Some(10 * 60 * 1000))
        .expect("min-ms filtered");
    assert!(
        none.timelines.is_empty(),
        "no sample can have taken ten minutes"
    );
}

#[test]
fn explicit_trace_ids_echo_on_every_v2_frame_and_never_on_v1() {
    let server = start_server();
    let dimacs_text = corpus_instance();

    // v1: a traced request records server-side but the response stays
    // bit-for-bit free of any trace key.
    let mut v1 = Raw::connect(server.local_addr());
    v1.send(
        &Json::obj(vec![
            ("cmd", "load".into()),
            ("dimacs", dimacs_text.clone().into()),
            ("trace", "beef0001".into()),
        ])
        .encode(),
    );
    let reply = v1.recv();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    assert!(
        reply.get("trace").is_none(),
        "v1 replies never carry a trace key"
    );
    let fingerprint = reply
        .get("fingerprint")
        .and_then(Json::as_str)
        .expect("fingerprint")
        .to_string();

    // The v1-recorded timeline still exists — with the explicit id — and
    // carries the lockstep writer's own write span.
    let mut reader = Client::connect(server.local_addr()).expect("connect");
    let report = reader.trace(None, Some("load"), None).expect("TRACE");
    let recorded = report
        .timelines
        .iter()
        .find(|t| t.trace == TraceId::from_u128(0xBEEF_0001))
        .expect("v1 traced request recorded");
    let names = span_names(recorded);
    assert!(names.contains(&"serve.request"));
    assert!(names.contains(&"serve.writer.write"));

    // An ill-formed trace id is a bad request, not a silent drop.
    let mut bad = Raw::connect(server.local_addr());
    bad.send("{\"cmd\":\"status\",\"trace\":\"not-hex!\"}");
    let reply = bad.recv();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        reply.get("code").and_then(Json::as_str),
        Some("bad-request")
    );

    // v2: every frame of a traced request — chunks and the terminal done —
    // echoes the id; an untraced request's frames carry no trace key.
    let mut v2 = Raw::connect(server.local_addr());
    v2.send("{\"cmd\":\"hello\",\"version\":2}");
    assert_eq!(v2.recv().get("ok").and_then(Json::as_bool), Some(true));
    v2.send(&format!(
        "{{\"cmd\":\"sample\",\"fingerprint\":\"{fingerprint}\",\"n\":5,\"seed\":3,\"id\":1,\
         \"trace\":\"c0ffee\"}}"
    ));
    let mut frames = 0;
    loop {
        let frame = v2.recv();
        assert_eq!(frame.get("id").and_then(Json::as_u64), Some(1));
        assert_eq!(
            frame.get("trace").and_then(Json::as_str),
            Some("00000000000000000000000000c0ffee"),
            "every frame of a traced request echoes the full-width id"
        );
        frames += 1;
        match frame.get("frame").and_then(Json::as_str) {
            Some("chunk") => {}
            Some("done") => break,
            other => panic!("unexpected frame kind {other:?}"),
        }
    }
    assert!(frames >= 2, "chunked stream: chunk frame(s) + done");

    v2.send(&format!(
        "{{\"cmd\":\"sample\",\"fingerprint\":\"{fingerprint}\",\"n\":2,\"seed\":4,\"id\":2}}"
    ));
    loop {
        let frame = v2.recv();
        assert!(
            frame.get("trace").is_none(),
            "untraced requests keep the pre-trace frame shape"
        );
        if frame.get("frame").and_then(Json::as_str) == Some("done") {
            break;
        }
    }
}
