//! The formula-keyed sampler registry.
//!
//! The registry is the daemon's reason to exist: the expensive part of
//! serving a sampling request is the CNF-to-circuit transformation and
//! kernel compilation, and those depend only on the formula — not on the
//! request's seed, deadline or thread count. So the daemon keeps one
//! [`PreparedFormula`] per canonical [`Fingerprint`] and mints a cheap
//! per-request sampler from it; a repeated `LOAD`/`SAMPLE` for a formula the
//! registry has seen (in *any* clause order — the fingerprint canonicalises
//! that away) skips parse-side compilation entirely.
//!
//! Residency is bounded by a configurable byte budget. Each entry is costed
//! with the sampler's own [`MemoryModel`](htsat_tensor::MemoryModel) (at the
//! registry's reference batch size and worker count — the model that drives
//! the paper's Fig. 3 memory plot), and inserting past the budget evicts
//! least-recently-used entries first. A single entry larger than the whole
//! budget is still admitted (refusing it would make the formula unservable);
//! it just becomes the first eviction candidate.

use crate::ServeError;
use htsat_cnf::{Cnf, Fingerprint};
use htsat_core::{PreparedFormula, TransformConfig};
use htsat_runtime::StreamStats;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// Configuration of a [`SamplerRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub struct RegistryConfig {
    /// Resident-memory budget in bytes (modelled, not measured). Inserting
    /// past it evicts LRU entries first.
    pub budget_bytes: u64,
    /// Batch size the per-entry memory model is evaluated at.
    pub model_batch: usize,
    /// Worker count the per-entry memory model is evaluated at.
    pub model_workers: usize,
    /// Transformation options every entry is prepared with.
    pub transform: TransformConfig,
}

impl Default for RegistryConfig {
    /// 512 MiB budget, modelled at the sampler's default batch (256) on
    /// one worker, default transformation options.
    fn default() -> Self {
        RegistryConfig {
            budget_bytes: 512 * 1024 * 1024,
            model_batch: 256,
            model_workers: 1,
            transform: TransformConfig::default(),
        }
    }
}

/// One resident formula: compiled artifacts plus serving bookkeeping.
#[derive(Debug)]
pub struct RegistryEntry {
    /// Registry key.
    pub fingerprint: Fingerprint,
    /// Display name (from the `LOAD` request, or the fingerprint).
    pub name: String,
    /// The compiled artifacts samplers are minted from.
    pub prepared: PreparedFormula,
    /// Modelled resident bytes (the eviction weight).
    pub bytes: u64,
    /// Times a request hit this entry after its initial load.
    hits: AtomicU64,
    /// LRU clock value of the last touch.
    last_used: AtomicU64,
    /// Cumulative stream statistics of every `SAMPLE` served from this
    /// entry.
    stats: Mutex<StreamStats>,
}

impl RegistryEntry {
    /// Times a request hit this entry after its initial load.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cumulative stream statistics of every `SAMPLE` served from this
    /// entry.
    pub fn cumulative_stats(&self) -> StreamStats {
        *self.stats.lock().expect("entry stats poisoned")
    }

    /// Merges one finished request's stream statistics into the entry's
    /// cumulative total.
    pub fn record_stats(&self, stats: &StreamStats) {
        self.stats
            .lock()
            .expect("entry stats poisoned")
            .merge(stats);
    }
}

/// Aggregate counters of a [`SamplerRegistry`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryCounters {
    /// Loads/samples answered from a resident entry.
    pub hits: u64,
    /// Loads that had to prepare (transform + compile) a new entry.
    pub misses: u64,
    /// Transform+compile runs performed — the counter the "registry hit
    /// path skips recompilation" guarantee is asserted against.
    pub compiles: u64,
    /// Entries dropped, by eviction or explicit `EVICT`.
    pub evictions: u64,
}

/// A concurrent map from formula fingerprint to compiled sampler artifacts,
/// with LRU eviction under a modelled memory budget.
///
/// Reads (the hot path: `SAMPLE` on a resident formula) take the shared
/// lock; only inserts and evictions take the exclusive lock. Recency is
/// tracked with a lock-free logical clock so a read never needs the
/// exclusive lock to bump its entry.
#[derive(Debug)]
pub struct SamplerRegistry {
    config: RegistryConfig,
    entries: RwLock<HashMap<Fingerprint, Arc<RegistryEntry>>>,
    /// Fingerprints whose compile is in flight right now (single-flight:
    /// concurrent loads of the same formula wait instead of re-compiling).
    inflight: Mutex<HashSet<Fingerprint>>,
    inflight_done: Condvar,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    compiles: AtomicU64,
    evictions: AtomicU64,
}

/// RAII release of an in-flight compile claim, so a failed (or panicking)
/// prepare never leaves other loads of the same formula waiting forever.
struct InflightClaim<'a> {
    registry: &'a SamplerRegistry,
    fingerprint: Fingerprint,
}

impl Drop for InflightClaim<'_> {
    fn drop(&mut self) {
        if let Ok(mut inflight) = self.registry.inflight.lock() {
            inflight.remove(&self.fingerprint);
        }
        self.registry.inflight_done.notify_all();
    }
}

/// Whether two CNFs are the same formula up to clause and literal order —
/// the equivalence [`Fingerprint`] canonicalises over. Used to detect hash
/// collisions on the registry hit path (both formulas are in hand there,
/// so the check is cheap relative to a compile).
fn same_canonical_formula(a: &Cnf, b: &Cnf) -> bool {
    if a.num_vars() != b.num_vars() || a.num_clauses() != b.num_clauses() {
        return false;
    }
    let canonical = |cnf: &Cnf| -> Vec<Vec<usize>> {
        let mut clauses: Vec<Vec<usize>> = cnf
            .clauses()
            .iter()
            .map(|c| {
                let mut lits: Vec<usize> = c.lits().iter().map(|l| l.code()).collect();
                lits.sort_unstable();
                lits
            })
            .collect();
        clauses.sort_unstable();
        clauses
    };
    canonical(a) == canonical(b)
}

impl SamplerRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new(config: RegistryConfig) -> Self {
        SamplerRegistry {
            config,
            entries: RwLock::new(HashMap::new()),
            inflight: Mutex::new(HashSet::new()),
            inflight_done: Condvar::new(),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The registry configuration.
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    fn touch(&self, entry: &RegistryEntry) {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        entry.last_used.store(now, Ordering::Relaxed);
    }

    /// Looks up a resident entry, bumping its recency and hit count.
    #[must_use]
    pub fn get(&self, fingerprint: &Fingerprint) -> Option<Arc<RegistryEntry>> {
        let entries = self.entries.read().expect("registry poisoned");
        let entry = entries.get(fingerprint)?.clone();
        drop(entries);
        entry.hits.fetch_add(1, Ordering::Relaxed);
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.touch(&entry);
        Some(entry)
    }

    /// Registers `cnf`, preparing (transform + compile) only if no entry
    /// with the same canonical fingerprint is resident. Returns the entry
    /// and whether it was already cached.
    ///
    /// Loading is **single-flight** per fingerprint: concurrent loads of
    /// the same formula block on the one in-flight compile and then share
    /// its entry, so a thundering herd of identical `LOAD`s costs exactly
    /// one transform+compile. Compilation itself runs outside every lock —
    /// resident formulas stay servable while a big new one compiles.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Transform`] when the formula is structurally
    /// unsatisfiable.
    pub fn load(
        &self,
        cnf: &Cnf,
        name: Option<&str>,
    ) -> Result<(Arc<RegistryEntry>, bool), ServeError> {
        let fingerprint = Fingerprint::of(cnf);
        let claim = loop {
            if let Some(entry) = self.get(&fingerprint) {
                // Fingerprint equality is the key, but the hash is not
                // collision resistant against an adversarial formula; since
                // both CNFs are in hand here, verify semantic equality
                // (order-insensitively) rather than silently serving the
                // wrong formula's solutions forever.
                if !same_canonical_formula(cnf, entry.prepared.cnf()) {
                    return Err(ServeError::FingerprintCollision(fingerprint));
                }
                return Ok((entry, true));
            }
            let inflight = self.inflight.lock().expect("inflight poisoned");
            // Residency may have been published between the lookup above
            // and taking the lock; re-run the lookup if so.
            if self
                .entries
                .read()
                .expect("registry poisoned")
                .contains_key(&fingerprint)
            {
                continue;
            }
            let mut inflight = inflight;
            if inflight.insert(fingerprint) {
                break InflightClaim {
                    registry: self,
                    fingerprint,
                };
            }
            // Another load is compiling this formula right now: wait for it
            // to finish (success or failure), then retry from the top.
            let _released = self
                .inflight_done
                .wait(inflight)
                .expect("inflight poisoned");
        };

        // We own the only in-flight compile for this fingerprint. Prepare
        // outside every lock: compilation can take seconds on big formulas
        // and must not block requests for resident entries.
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.compiles.fetch_add(1, Ordering::Relaxed);
        let prepared = PreparedFormula::prepare(cnf, &self.config.transform)?;
        let bytes = prepared
            .memory_model(self.config.model_batch, self.config.model_workers)
            .total_bytes();
        let entry = Arc::new(RegistryEntry {
            fingerprint,
            name: name.map_or_else(|| fingerprint.to_hex(), str::to_string),
            prepared,
            bytes,
            hits: AtomicU64::new(0),
            last_used: AtomicU64::new(0),
            stats: Mutex::new(StreamStats::default()),
        });
        self.touch(&entry);

        let mut entries = self.entries.write().expect("registry poisoned");
        entries.insert(fingerprint, entry.clone());
        self.evict_lru_over_budget(&mut entries, fingerprint);
        drop(entries);
        drop(claim); // release the in-flight slot, wake the waiters
        Ok((entry, false))
    }

    /// Evicts least-recently-used entries (never `keep`) until the modelled
    /// total fits the budget.
    fn evict_lru_over_budget(
        &self,
        entries: &mut HashMap<Fingerprint, Arc<RegistryEntry>>,
        keep: Fingerprint,
    ) {
        loop {
            let total: u64 = entries.values().map(|e| e.bytes).sum();
            if total <= self.config.budget_bytes {
                return;
            }
            let victim = entries
                .values()
                .filter(|e| e.fingerprint != keep)
                .min_by_key(|e| e.last_used.load(Ordering::Relaxed))
                .map(|e| e.fingerprint);
            let Some(victim) = victim else {
                // Only the just-inserted entry is left; an oversized single
                // formula stays resident (see module docs).
                return;
            };
            entries.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drops one entry. Returns whether it was resident.
    pub fn evict(&self, fingerprint: &Fingerprint) -> bool {
        let removed = self
            .entries
            .write()
            .expect("registry poisoned")
            .remove(fingerprint)
            .is_some();
        if removed {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// Aggregate hit/miss/compile/eviction counters.
    pub fn counters(&self) -> RegistryCounters {
        RegistryCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Modelled resident bytes across all entries.
    pub fn resident_bytes(&self) -> u64 {
        self.entries
            .read()
            .expect("registry poisoned")
            .values()
            .map(|e| e.bytes)
            .sum()
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.read().expect("registry poisoned").len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A stable-ordered snapshot of the resident entries (most recently
    /// used first) for status reporting.
    pub fn snapshot(&self) -> Vec<Arc<RegistryEntry>> {
        let entries = self.entries.read().expect("registry poisoned");
        let mut list: Vec<Arc<RegistryEntry>> = entries.values().cloned().collect();
        drop(entries);
        list.sort_by_key(|e| std::cmp::Reverse(e.last_used.load(Ordering::Relaxed)));
        list
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cnf(width: u32, seed: i64) -> Cnf {
        // A satisfiable chain distinct per seed: (x1 ∨ x2), (x2 ∨ x3), …
        // with one seed-dependent unit clause.
        let mut cnf = Cnf::new(width as usize);
        for v in 1..width {
            cnf.add_dimacs_clause([i64::from(v), i64::from(v + 1)]);
        }
        cnf.add_dimacs_clause([1 + seed.rem_euclid(i64::from(width))]);
        cnf
    }

    fn registry(budget_bytes: u64) -> SamplerRegistry {
        SamplerRegistry::new(RegistryConfig {
            budget_bytes,
            ..RegistryConfig::default()
        })
    }

    #[test]
    fn second_load_is_a_hit_with_no_recompilation() {
        let registry = registry(u64::MAX);
        let formula = cnf(6, 0);
        let (first, cached) = registry.load(&formula, Some("demo")).expect("load");
        assert!(!cached);
        assert_eq!(registry.counters().compiles, 1);

        // Same formula, clauses re-ordered: the canonical fingerprint must
        // land on the resident entry without another compile.
        let mut reordered = Cnf::new(6);
        let mut clauses: Vec<_> = formula.clauses().to_vec();
        clauses.reverse();
        for clause in clauses {
            reordered.push_clause(clause);
        }
        let (second, cached) = registry.load(&reordered, None).expect("load");
        assert!(cached);
        assert_eq!(second.fingerprint, first.fingerprint);
        assert_eq!(registry.counters().compiles, 1, "hit path must not compile");
        assert_eq!(registry.counters().hits, 1);
        assert_eq!(first.hits(), 1);
        assert_eq!(second.name, "demo", "hit keeps the original entry");
    }

    #[test]
    fn lru_eviction_respects_the_budget_and_recency() {
        // Probe one entry's modelled size, then budget for two entries.
        let probe = registry(u64::MAX);
        let (probe_entry, _) = probe.load(&cnf(5, 0), None).expect("probe");
        let per_entry = probe_entry.bytes;

        let registry = registry(per_entry * 2 + per_entry / 2);
        let (a, _) = registry.load(&cnf(5, 0), Some("a")).expect("a");
        let (_b, _) = registry.load(&cnf(5, 1), Some("b")).expect("b");
        // Touch `a` so `b` becomes the LRU victim.
        assert!(registry.get(&a.fingerprint).is_some());
        let (_c, _) = registry.load(&cnf(5, 2), Some("c")).expect("c");
        assert_eq!(registry.len(), 2);
        assert!(
            registry.get(&a.fingerprint).is_some(),
            "a was recently used"
        );
        assert_eq!(registry.counters().evictions, 1);
        assert!(registry.resident_bytes() <= registry.config().budget_bytes);
    }

    #[test]
    fn oversized_single_entry_is_still_admitted() {
        let registry = registry(1); // absurdly small budget
        let (entry, cached) = registry.load(&cnf(5, 0), None).expect("load");
        assert!(!cached);
        assert!(entry.bytes > 1);
        assert_eq!(registry.len(), 1, "the sole entry survives");
    }

    #[test]
    fn explicit_evict_and_counters() {
        let registry = registry(u64::MAX);
        let (entry, _) = registry.load(&cnf(4, 0), None).expect("load");
        assert!(registry.evict(&entry.fingerprint));
        assert!(!registry.evict(&entry.fingerprint), "already gone");
        assert!(registry.get(&entry.fingerprint).is_none());
        assert_eq!(registry.counters().evictions, 1);
        // Re-loading after eviction compiles again.
        let (_again, cached) = registry.load(&cnf(4, 0), None).expect("load");
        assert!(!cached);
        assert_eq!(registry.counters().compiles, 2);
    }

    #[test]
    fn cumulative_stats_accumulate_across_requests() {
        let registry = registry(u64::MAX);
        let (entry, _) = registry.load(&cnf(4, 0), None).expect("load");
        let round = StreamStats {
            rounds: 1,
            attempts: 10,
            valid: 4,
            yielded: 3,
            duplicates: 1,
        };
        entry.record_stats(&round);
        entry.record_stats(&round);
        assert_eq!(entry.cumulative_stats().attempts, 20);
    }

    #[test]
    fn snapshot_orders_by_recency() {
        let registry = registry(u64::MAX);
        let (a, _) = registry.load(&cnf(4, 0), Some("a")).expect("a");
        let (_b, _) = registry.load(&cnf(4, 1), Some("b")).expect("b");
        assert!(registry.get(&a.fingerprint).is_some());
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.len(), 2);
        assert_eq!(snapshot[0].name, "a", "most recently used first");
    }

    #[test]
    fn concurrent_loads_are_single_flight() {
        let registry = Arc::new(registry(u64::MAX));
        let formula = cnf(8, 0);
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let registry = registry.clone();
                let formula = formula.clone();
                std::thread::spawn(move || {
                    let (entry, _cached) = registry.load(&formula, None).expect("load");
                    entry.fingerprint
                })
            })
            .collect();
        let fingerprints: Vec<Fingerprint> = handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect();
        assert!(fingerprints.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(
            registry.counters().compiles,
            1,
            "concurrent loads of one formula must share one compile"
        );
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn failed_load_releases_the_inflight_claim() {
        let registry = registry(u64::MAX);
        let mut unsat = Cnf::new(1);
        unsat.add_clause([]);
        assert!(registry.load(&unsat, None).is_err());
        // A second attempt must not dead-wait on the failed claim.
        assert!(registry.load(&unsat, None).is_err());
        assert_eq!(registry.counters().compiles, 2);
    }

    #[test]
    fn canonical_formula_comparison_ignores_order_only() {
        let a = cnf(5, 0);
        let mut reordered = Cnf::new(5);
        let mut clauses: Vec<_> = a.clauses().to_vec();
        clauses.reverse();
        for clause in clauses {
            reordered.push_clause(clause);
        }
        assert!(same_canonical_formula(&a, &reordered));
        assert!(!same_canonical_formula(&a, &cnf(5, 1)), "different content");
        let mut wider = a.clone();
        wider.grow_vars(9);
        assert!(!same_canonical_formula(&a, &wider), "different universe");
    }

    #[test]
    fn unsatisfiable_formula_is_rejected_not_cached() {
        let registry = registry(u64::MAX);
        let mut unsat = Cnf::new(1);
        unsat.add_clause([]); // empty clause
        assert!(registry.load(&unsat, None).is_err());
        assert!(registry.is_empty());
    }
}
