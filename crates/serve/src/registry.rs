//! The (formula, engine)-keyed sampler registry.
//!
//! The registry is the daemon's reason to exist: the expensive part of
//! serving a sampling request is engine preparation — for the GD engine the
//! CNF-to-circuit transformation and kernel compilation, for a
//! DiffSampler-style engine the soft-CNF circuit — and that depends only on
//! the (formula, engine) pair, not on the request's seed, deadline or
//! thread count. So the daemon keeps one prepared
//! [`SampleEngine`] per canonical
//! ([`Fingerprint`], engine name) key and mints a cheap per-request session
//! from it; a repeated `LOAD`/`SAMPLE` for a pair the registry has seen (in
//! *any* clause order — the fingerprint canonicalises that away) skips
//! preparation entirely. Engines are resolved by wire name through
//! [`htsat_baselines::engine_by_name`], so every sampler of the paper's
//! comparison — the GD sampler and all baselines — is servable through one
//! code path.
//!
//! Residency is bounded by a configurable byte budget. Each entry is costed
//! with its engine's own [`MemoryModel`](htsat_tensor::MemoryModel) (at the
//! registry's reference batch size and worker count — the model that drives
//! the paper's Fig. 3 memory plot), and inserting past the budget evicts
//! least-recently-used entries first. A single entry larger than the whole
//! budget is still admitted (refusing it would make the formula unservable);
//! it just becomes the first eviction candidate.

use crate::cache::{self, CompileCache};
use crate::ServeError;
use htsat_baselines::resolve_engine_name;
use htsat_cnf::{Cnf, Fingerprint};
use htsat_core::{SampleEngine, TransformConfig};
use htsat_runtime::StreamStats;
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// A registry key: the canonical formula fingerprint plus the canonical
/// engine name.
type EngineKey = (Fingerprint, &'static str);

/// Configuration of a [`SamplerRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub struct RegistryConfig {
    /// Resident-memory budget in bytes (modelled, not measured). Inserting
    /// past it evicts LRU entries first.
    pub budget_bytes: u64,
    /// Batch size the per-entry memory model is evaluated at.
    pub model_batch: usize,
    /// Worker count the per-entry memory model is evaluated at.
    pub model_workers: usize,
    /// Transformation options every GD entry is prepared with.
    pub transform: TransformConfig,
    /// Directory of the persistent on-disk compile cache
    /// ([`crate::cache`]); `None` disables persistence. Preparations are
    /// written through; misses probe the directory before compiling; a
    /// registry can [warm-start](SamplerRegistry::warm_start) from it.
    pub cache_dir: Option<PathBuf>,
}

impl Default for RegistryConfig {
    /// 512 MiB budget, modelled at the sampler's default batch (256) on
    /// one worker, default transformation options, no persistence.
    fn default() -> Self {
        RegistryConfig {
            budget_bytes: 512 * 1024 * 1024,
            model_batch: 256,
            model_workers: 1,
            transform: TransformConfig::default(),
            cache_dir: None,
        }
    }
}

/// One resident (formula, engine) pair: the prepared engine plus serving
/// bookkeeping.
pub struct RegistryEntry {
    /// Formula half of the registry key.
    pub fingerprint: Fingerprint,
    /// Engine half of the registry key (canonical name).
    pub engine_name: &'static str,
    /// Display name (from the `LOAD` request, or the fingerprint).
    pub name: String,
    /// The prepared engine sessions are minted from.
    pub engine: Box<dyn SampleEngine>,
    /// Modelled resident bytes (the eviction weight).
    pub bytes: u64,
    /// Times a request hit this entry after its initial load.
    hits: AtomicU64,
    /// LRU clock value of the last touch.
    last_used: AtomicU64,
    /// Cumulative stream statistics of every `SAMPLE` served from this
    /// entry.
    stats: Mutex<StreamStats>,
}

impl std::fmt::Debug for RegistryEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegistryEntry")
            .field("fingerprint", &self.fingerprint)
            .field("engine_name", &self.engine_name)
            .field("name", &self.name)
            .field("bytes", &self.bytes)
            .finish_non_exhaustive()
    }
}

impl RegistryEntry {
    /// Times a request hit this entry after its initial load.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cumulative stream statistics of every `SAMPLE` served from this
    /// entry.
    pub fn cumulative_stats(&self) -> StreamStats {
        *self.stats.lock().expect("entry stats poisoned")
    }

    /// Merges one finished request's stream statistics into the entry's
    /// cumulative total.
    pub fn record_stats(&self, stats: &StreamStats) {
        self.stats
            .lock()
            .expect("entry stats poisoned")
            .merge(stats);
    }
}

/// Aggregate counters of a [`SamplerRegistry`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryCounters {
    /// Loads/samples answered from a resident entry.
    pub hits: u64,
    /// Loads that had to prepare a new entry.
    pub misses: u64,
    /// Engine preparations performed (transform + compile for GD, circuit
    /// build for DiffSampler, …) — the counter the "registry hit path skips
    /// preparation" guarantee is asserted against.
    pub compiles: u64,
    /// Entries dropped, by eviction or explicit `EVICT`.
    pub evictions: u64,
    /// Misses answered from the on-disk compile cache instead of a fresh
    /// preparation (including boot-time warm starts) — the counter the
    /// "restart skips compile" guarantee is asserted against, together
    /// with `compiles` staying flat.
    pub disk_hits: u64,
}

/// A concurrent map from (formula fingerprint, engine name) to a prepared
/// sampling engine, with LRU eviction under a modelled memory budget.
///
/// Reads (the hot path: `SAMPLE` on a resident pair) take the shared
/// lock; only inserts and evictions take the exclusive lock. Recency is
/// tracked with a lock-free logical clock so a read never needs the
/// exclusive lock to bump its entry.
#[derive(Debug)]
pub struct SamplerRegistry {
    config: RegistryConfig,
    /// The persistent artifact store, when `config.cache_dir` is set and
    /// the directory could be opened.
    cache: Option<CompileCache>,
    entries: RwLock<HashMap<EngineKey, Arc<RegistryEntry>>>,
    /// Keys whose preparation is in flight right now (single-flight:
    /// concurrent loads of the same pair wait instead of re-preparing).
    inflight: Mutex<HashSet<EngineKey>>,
    inflight_done: Condvar,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    compiles: AtomicU64,
    evictions: AtomicU64,
    disk_hits: AtomicU64,
}

/// RAII release of an in-flight preparation claim, so a failed (or
/// panicking) prepare never leaves other loads of the same pair waiting
/// forever.
struct InflightClaim<'a> {
    registry: &'a SamplerRegistry,
    key: EngineKey,
}

impl Drop for InflightClaim<'_> {
    fn drop(&mut self) {
        if let Ok(mut inflight) = self.registry.inflight.lock() {
            inflight.remove(&self.key);
        }
        self.registry.inflight_done.notify_all();
    }
}

/// The per-engine residency gauge (`serve.resident.<engine>`): how many
/// prepared entries of each engine are resident right now. Engine names are
/// a small closed set, so the dynamic (allocating) registry lookup happens
/// only on insert/evict — never on the request hot path.
fn resident_gauge(engine_name: &str) -> std::sync::Arc<htsat_obs::Gauge> {
    htsat_obs::global().gauge(&format!("serve.resident.{engine_name}"))
}

/// Whether two CNFs are the same formula up to clause and literal order —
/// the equivalence [`Fingerprint`] canonicalises over. Used to detect hash
/// collisions on the registry hit path (both formulas are in hand there,
/// so the check is cheap relative to a preparation).
fn same_canonical_formula(a: &Cnf, b: &Cnf) -> bool {
    if a.num_vars() != b.num_vars() || a.num_clauses() != b.num_clauses() {
        return false;
    }
    let canonical = |cnf: &Cnf| -> Vec<Vec<usize>> {
        let mut clauses: Vec<Vec<usize>> = cnf
            .clauses()
            .iter()
            .map(|c| {
                let mut lits: Vec<usize> = c.lits().iter().map(|l| l.code()).collect();
                lits.sort_unstable();
                lits
            })
            .collect();
        clauses.sort_unstable();
        clauses
    };
    canonical(a) == canonical(b)
}

impl SamplerRegistry {
    /// Creates an empty registry. When the configuration names a cache
    /// directory that cannot be created, persistence is disabled with a
    /// warning — the registry still serves, it just recompiles on restart.
    #[must_use]
    pub fn new(config: RegistryConfig) -> Self {
        let cache = config.cache_dir.as_ref().and_then(|dir| {
            CompileCache::open(dir)
                .map_err(|e| {
                    htsat_obs::warn!(
                        "cannot open compile cache {} ({e}); persistence disabled",
                        dir.display()
                    );
                })
                .ok()
        });
        SamplerRegistry {
            config,
            cache,
            entries: RwLock::new(HashMap::new()),
            inflight: Mutex::new(HashSet::new()),
            inflight_done: Condvar::new(),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
        }
    }

    /// The registry configuration.
    pub fn config(&self) -> &RegistryConfig {
        &self.config
    }

    fn touch(&self, entry: &RegistryEntry) {
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        entry.last_used.store(now, Ordering::Relaxed);
    }

    /// Looks up a resident (formula, engine) entry, bumping its recency and
    /// hit count. Returns `None` for unknown engine names too (nothing can
    /// be resident under them).
    #[must_use]
    pub fn get(&self, fingerprint: &Fingerprint, engine: &str) -> Option<Arc<RegistryEntry>> {
        let key = (*fingerprint, resolve_engine_name(engine)?);
        let entries = self.entries.read().expect("registry poisoned");
        let entry = entries.get(&key)?.clone();
        drop(entries);
        entry.hits.fetch_add(1, Ordering::Relaxed);
        self.hits.fetch_add(1, Ordering::Relaxed);
        htsat_obs::counter!("serve.registry.hits").inc();
        self.touch(&entry);
        Some(entry)
    }

    /// Registers `cnf` under `engine`, preparing the engine only if no
    /// entry with the same canonical (fingerprint, engine) key is resident.
    /// Returns the entry and whether it was already cached.
    ///
    /// Loading is **single-flight** per key: concurrent loads of the same
    /// pair block on the one in-flight preparation and then share its
    /// entry, so a thundering herd of identical `LOAD`s costs exactly one
    /// preparation. Preparation itself runs outside every lock — resident
    /// pairs stay servable while a big new one compiles.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownEngine`] for engine names outside
    /// [`htsat_baselines::ENGINE_NAMES`]; [`ServeError::Transform`] when
    /// preparation fails (structurally unsatisfiable formula).
    pub fn load(
        &self,
        cnf: &Cnf,
        engine: &str,
        name: Option<&str>,
    ) -> Result<(Arc<RegistryEntry>, bool), ServeError> {
        let engine_name = resolve_engine_name(engine)
            .ok_or_else(|| ServeError::UnknownEngine(engine.to_string()))?;
        let fingerprint = Fingerprint::of(cnf);
        let key = (fingerprint, engine_name);
        // Whether this call blocked on another caller's in-flight
        // preparation; set once per call so a load that coalesces onto a
        // concurrent preparation is counted exactly once.
        let mut waited = false;
        let claim = loop {
            let resident = self
                .entries
                .read()
                .expect("registry poisoned")
                .get(&key)
                .cloned();
            if let Some(entry) = resident {
                // Fingerprint equality is the key, but the hash is not
                // collision resistant against an adversarial formula; since
                // both CNFs are in hand here, verify semantic equality
                // (order-insensitively) rather than silently serving the
                // wrong formula's solutions forever. The raw lookup above
                // (not `get`) keeps a rejected collision from counting as a
                // hit or refreshing the victim entry's LRU recency.
                if !same_canonical_formula(cnf, entry.engine.cnf()) {
                    return Err(ServeError::FingerprintCollision(fingerprint));
                }
                entry.hits.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                htsat_obs::counter!("serve.registry.hits").inc();
                if waited {
                    // This load shared another caller's preparation instead
                    // of running its own — the single-flight win.
                    htsat_obs::counter!("serve.registry.coalesced").inc();
                }
                self.touch(&entry);
                return Ok((entry, true));
            }
            let inflight = self.inflight.lock().expect("inflight poisoned");
            // Residency may have been published between the lookup above
            // and taking the lock; re-run the lookup if so.
            if self
                .entries
                .read()
                .expect("registry poisoned")
                .contains_key(&key)
            {
                continue;
            }
            let mut inflight = inflight;
            if inflight.insert(key) {
                break InflightClaim {
                    registry: self,
                    key,
                };
            }
            // Another load is preparing this pair right now: wait for it
            // to finish (success or failure), then retry from the top.
            // The wait is its own span: a traced request shows exactly how
            // long it sat coalesced behind another caller's preparation.
            let wait_span = htsat_obs::span!("serve.registry.coalesce_wait");
            let _released = self
                .inflight_done
                .wait(inflight)
                .expect("inflight poisoned");
            drop(wait_span);
            waited = true;
        };

        // We own the only in-flight preparation for this key. Prepare
        // outside every lock: preparation can take seconds on big formulas
        // and must not block requests for resident entries.
        self.misses.fetch_add(1, Ordering::Relaxed);
        htsat_obs::counter!("serve.registry.misses").inc();
        // Probe the persistent cache before compiling: a restarted daemon
        // (or a peer sharing the cache directory) answers the miss from
        // disk without re-preparing — `compiles` stays flat.
        let disk = self
            .cache
            .as_ref()
            .and_then(|cache| cache.load(&fingerprint, engine_name, &self.config.transform));
        let (prepared, display_name) = match disk {
            Some(cached) => {
                // The collision guard of the hit path applies to disk hits
                // too: the artifact's formula must *be* the requested one,
                // not merely hash like it.
                if !same_canonical_formula(cnf, cached.engine.cnf()) {
                    return Err(ServeError::FingerprintCollision(fingerprint));
                }
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                htsat_obs::counter!("serve.registry.disk_hits").inc();
                let display = name.map_or(cached.name, str::to_string);
                (cached.engine, display)
            }
            None => {
                self.compiles.fetch_add(1, Ordering::Relaxed);
                htsat_obs::counter!("serve.registry.compiles").inc();
                let display = name.map_or_else(|| fingerprint.to_hex(), str::to_string);
                // Span closes on every exit (including the `?` error
                // path), so a traced LOAD always attributes its
                // preparation/compilation time.
                let prepare_span = htsat_obs::span!("serve.registry.prepare");
                let prepared = cache::prepare_with_cache(
                    self.cache.as_ref(),
                    engine_name,
                    cnf,
                    &display,
                    &self.config.transform,
                )?;
                drop(prepare_span);
                (prepared, display)
            }
        };
        let entry = self.insert_entry(key, display_name, prepared);
        drop(claim); // release the in-flight slot, wake the waiters
        Ok((entry, false))
    }

    /// Publishes a freshly prepared (or warm-loaded) engine as a resident
    /// entry, applying the LRU budget. If the key was concurrently
    /// published by another path, the existing entry wins and is returned
    /// instead.
    fn insert_entry(
        &self,
        key: EngineKey,
        name: String,
        engine: Box<dyn SampleEngine>,
    ) -> Arc<RegistryEntry> {
        let bytes = engine
            .memory_model(self.config.model_batch, self.config.model_workers)
            .total_bytes();
        let entry = Arc::new(RegistryEntry {
            fingerprint: key.0,
            engine_name: key.1,
            name,
            engine,
            bytes,
            hits: AtomicU64::new(0),
            last_used: AtomicU64::new(0),
            stats: Mutex::new(StreamStats::default()),
        });
        self.touch(&entry);
        let mut entries = self.entries.write().expect("registry poisoned");
        if let Some(existing) = entries.get(&key) {
            return existing.clone();
        }
        entries.insert(key, entry.clone());
        resident_gauge(key.1).inc();
        self.evict_lru_over_budget(&mut entries, key);
        entry
    }

    /// Fingerprint-only lookup with a persistent-cache fallback: like
    /// [`SamplerRegistry::get`], but a non-resident pair is warm-loaded
    /// from disk when an artifact exists. This is what lets a `SAMPLE`
    /// reach a daemon that never saw the `LOAD` — a failover backend
    /// sharing the cache directory serves the formula anyway.
    #[must_use]
    pub fn get_or_warm(
        &self,
        fingerprint: &Fingerprint,
        engine: &str,
    ) -> Option<Arc<RegistryEntry>> {
        if let Some(entry) = self.get(fingerprint, engine) {
            return Some(entry);
        }
        self.cache.as_ref()?;
        let engine_name = resolve_engine_name(engine)?;
        let key = (*fingerprint, engine_name);
        // Same single-flight discipline as `load`: concurrent warm loads
        // (or a racing `LOAD`) of one pair share one deserialization.
        let claim = loop {
            if let Some(entry) = self.get(fingerprint, engine) {
                return Some(entry);
            }
            let mut inflight = self.inflight.lock().expect("inflight poisoned");
            if self
                .entries
                .read()
                .expect("registry poisoned")
                .contains_key(&key)
            {
                continue;
            }
            if inflight.insert(key) {
                break InflightClaim {
                    registry: self,
                    key,
                };
            }
            let _released = self
                .inflight_done
                .wait(inflight)
                .expect("inflight poisoned");
        };
        let cached = self
            .cache
            .as_ref()?
            .load(fingerprint, engine_name, &self.config.transform)?;
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
        htsat_obs::counter!("serve.registry.disk_hits").inc();
        let entry = self.insert_entry(key, cached.name, cached.engine);
        drop(claim);
        Some(entry)
    }

    /// Restores every loadable artifact of the persistent cache into
    /// residency — the boot-time warm start. Returns how many entries were
    /// restored; artifacts past the byte budget LRU-evict as usual, and
    /// unusable artifacts are skipped (they will be probed again, and
    /// rewritten, on their next miss).
    pub fn warm_start(&self) -> usize {
        let Some(cache) = &self.cache else {
            return 0;
        };
        let mut restored = 0;
        for (fingerprint, engine_name) in cache.scan() {
            let key = (fingerprint, engine_name);
            if self
                .entries
                .read()
                .expect("registry poisoned")
                .contains_key(&key)
            {
                continue;
            }
            let Some(cached) = cache.load(&fingerprint, engine_name, &self.config.transform) else {
                continue;
            };
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            htsat_obs::counter!("serve.registry.disk_hits").inc();
            self.insert_entry(key, cached.name, cached.engine);
            restored += 1;
        }
        restored
    }

    /// Evicts least-recently-used entries (never `keep`) until the modelled
    /// total fits the budget.
    fn evict_lru_over_budget(
        &self,
        entries: &mut HashMap<EngineKey, Arc<RegistryEntry>>,
        keep: EngineKey,
    ) {
        loop {
            let total: u64 = entries.values().map(|e| e.bytes).sum();
            if total <= self.config.budget_bytes {
                return;
            }
            let victim = entries
                .values()
                .filter(|e| (e.fingerprint, e.engine_name) != keep)
                .min_by_key(|e| e.last_used.load(Ordering::Relaxed))
                .map(|e| (e.fingerprint, e.engine_name));
            let Some(victim) = victim else {
                // Only the just-inserted entry is left; an oversized single
                // formula stays resident (see module docs).
                return;
            };
            entries.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            htsat_obs::counter!("serve.registry.evictions").inc();
            resident_gauge(victim.1).dec();
        }
    }

    /// Drops entries of `fingerprint`: the one named engine's, or — with
    /// `None` — every engine's. Returns how many entries were dropped.
    pub fn evict(&self, fingerprint: &Fingerprint, engine: Option<&str>) -> usize {
        let mut entries = self.entries.write().expect("registry poisoned");
        let removed = match engine {
            Some(engine) => {
                let Some(engine_name) = resolve_engine_name(engine) else {
                    return 0;
                };
                match entries.remove(&(*fingerprint, engine_name)) {
                    Some(_) => {
                        resident_gauge(engine_name).dec();
                        1
                    }
                    None => 0,
                }
            }
            None => {
                let before = entries.len();
                entries.retain(|(fp, engine_name), _| {
                    let keep = fp != fingerprint;
                    if !keep {
                        resident_gauge(engine_name).dec();
                    }
                    keep
                });
                before - entries.len()
            }
        };
        drop(entries);
        self.evictions.fetch_add(removed as u64, Ordering::Relaxed);
        htsat_obs::counter!("serve.registry.evictions").add(removed as u64);
        removed
    }

    /// Aggregate hit/miss/preparation/eviction counters.
    pub fn counters(&self) -> RegistryCounters {
        RegistryCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
        }
    }

    /// Modelled resident bytes across all entries.
    pub fn resident_bytes(&self) -> u64 {
        self.entries
            .read()
            .expect("registry poisoned")
            .values()
            .map(|e| e.bytes)
            .sum()
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.read().expect("registry poisoned").len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A stable-ordered snapshot of the resident entries (most recently
    /// used first) for status reporting.
    pub fn snapshot(&self) -> Vec<Arc<RegistryEntry>> {
        let entries = self.entries.read().expect("registry poisoned");
        let mut list: Vec<Arc<RegistryEntry>> = entries.values().cloned().collect();
        drop(entries);
        list.sort_by_key(|e| std::cmp::Reverse(e.last_used.load(Ordering::Relaxed)));
        list
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::DEFAULT_ENGINE;

    fn cnf(width: u32, seed: i64) -> Cnf {
        // A satisfiable chain distinct per seed: (x1 ∨ x2), (x2 ∨ x3), …
        // with one seed-dependent unit clause.
        let mut cnf = Cnf::new(width as usize);
        for v in 1..width {
            cnf.add_dimacs_clause([i64::from(v), i64::from(v + 1)]);
        }
        cnf.add_dimacs_clause([1 + seed.rem_euclid(i64::from(width))]);
        cnf
    }

    fn registry(budget_bytes: u64) -> SamplerRegistry {
        SamplerRegistry::new(RegistryConfig {
            budget_bytes,
            ..RegistryConfig::default()
        })
    }

    #[test]
    fn second_load_is_a_hit_with_no_recompilation() {
        let registry = registry(u64::MAX);
        let formula = cnf(6, 0);
        let (first, cached) = registry
            .load(&formula, DEFAULT_ENGINE, Some("demo"))
            .expect("load");
        assert!(!cached);
        assert_eq!(registry.counters().compiles, 1);

        // Same formula, clauses re-ordered: the canonical fingerprint must
        // land on the resident entry without another preparation.
        let mut reordered = Cnf::new(6);
        let mut clauses: Vec<_> = formula.clauses().to_vec();
        clauses.reverse();
        for clause in clauses {
            reordered.push_clause(clause);
        }
        let (second, cached) = registry
            .load(&reordered, DEFAULT_ENGINE, None)
            .expect("load");
        assert!(cached);
        assert_eq!(second.fingerprint, first.fingerprint);
        assert_eq!(registry.counters().compiles, 1, "hit path must not compile");
        assert_eq!(registry.counters().hits, 1);
        assert_eq!(first.hits(), 1);
        assert_eq!(second.name, "demo", "hit keeps the original entry");
    }

    #[test]
    fn engines_are_cached_independently_per_fingerprint() {
        let registry = registry(u64::MAX);
        let formula = cnf(6, 0);
        let (gd, cached_gd) = registry.load(&formula, "gd", None).expect("gd");
        let (walksat, cached_walksat) = registry.load(&formula, "walksat", None).expect("walksat");
        assert!(!cached_gd && !cached_walksat);
        assert_eq!(gd.fingerprint, walksat.fingerprint, "same formula");
        assert_ne!(gd.engine_name, walksat.engine_name);
        assert_eq!(registry.len(), 2, "one entry per (formula, engine) pair");
        assert_eq!(registry.counters().compiles, 2);
        // Each pair hits independently.
        assert!(registry.get(&gd.fingerprint, "walksat").is_some());
        assert!(registry.get(&gd.fingerprint, "unigen").is_none());
    }

    #[test]
    fn unknown_engine_is_rejected() {
        let registry = registry(u64::MAX);
        let formula = cnf(4, 0);
        match registry.load(&formula, "frobnicate", None) {
            Err(ServeError::UnknownEngine(name)) => assert_eq!(name, "frobnicate"),
            other => panic!("expected UnknownEngine, got {other:?}"),
        }
        assert!(registry.is_empty());
        assert!(registry
            .get(&Fingerprint::of(&formula), "frobnicate")
            .is_none());
    }

    #[test]
    fn lru_eviction_respects_the_budget_and_recency() {
        // Probe one entry's modelled size, then budget for two entries.
        let probe = registry(u64::MAX);
        let (probe_entry, _) = probe.load(&cnf(5, 0), DEFAULT_ENGINE, None).expect("probe");
        let per_entry = probe_entry.bytes;

        let registry = registry(per_entry * 2 + per_entry / 2);
        let (a, _) = registry
            .load(&cnf(5, 0), DEFAULT_ENGINE, Some("a"))
            .expect("a");
        let (_b, _) = registry
            .load(&cnf(5, 1), DEFAULT_ENGINE, Some("b"))
            .expect("b");
        // Touch `a` so `b` becomes the LRU victim.
        assert!(registry.get(&a.fingerprint, DEFAULT_ENGINE).is_some());
        let (_c, _) = registry
            .load(&cnf(5, 2), DEFAULT_ENGINE, Some("c"))
            .expect("c");
        assert_eq!(registry.len(), 2);
        assert!(
            registry.get(&a.fingerprint, DEFAULT_ENGINE).is_some(),
            "a was recently used"
        );
        assert_eq!(registry.counters().evictions, 1);
        assert!(registry.resident_bytes() <= registry.config().budget_bytes);
    }

    #[test]
    fn oversized_single_entry_is_still_admitted() {
        let registry = registry(1); // absurdly small budget
        let (entry, cached) = registry
            .load(&cnf(5, 0), DEFAULT_ENGINE, None)
            .expect("load");
        assert!(!cached);
        assert!(entry.bytes > 1);
        assert_eq!(registry.len(), 1, "the sole entry survives");
    }

    #[test]
    fn explicit_evict_and_counters() {
        let registry = registry(u64::MAX);
        let (entry, _) = registry
            .load(&cnf(4, 0), DEFAULT_ENGINE, None)
            .expect("load");
        assert_eq!(registry.evict(&entry.fingerprint, Some(DEFAULT_ENGINE)), 1);
        assert_eq!(
            registry.evict(&entry.fingerprint, Some(DEFAULT_ENGINE)),
            0,
            "already gone"
        );
        assert!(registry.get(&entry.fingerprint, DEFAULT_ENGINE).is_none());
        assert_eq!(registry.counters().evictions, 1);
        // Re-loading after eviction prepares again.
        let (_again, cached) = registry
            .load(&cnf(4, 0), DEFAULT_ENGINE, None)
            .expect("load");
        assert!(!cached);
        assert_eq!(registry.counters().compiles, 2);
    }

    #[test]
    fn evict_without_engine_drops_every_engine_of_the_fingerprint() {
        let registry = registry(u64::MAX);
        let formula = cnf(5, 0);
        let (entry, _) = registry.load(&formula, "gd", None).expect("gd");
        registry.load(&formula, "walksat", None).expect("walksat");
        registry.load(&formula, "cmsgen", None).expect("cmsgen");
        // A different formula must survive the sweep.
        let (other, _) = registry.load(&cnf(5, 1), "gd", None).expect("other");
        assert_eq!(registry.evict(&entry.fingerprint, None), 3);
        assert_eq!(registry.len(), 1);
        assert!(registry.get(&other.fingerprint, "gd").is_some());
        assert_eq!(registry.counters().evictions, 3);
        // Unknown engine names evict nothing.
        assert_eq!(registry.evict(&other.fingerprint, Some("nope")), 0);
    }

    #[test]
    fn cumulative_stats_accumulate_across_requests() {
        let registry = registry(u64::MAX);
        let (entry, _) = registry
            .load(&cnf(4, 0), DEFAULT_ENGINE, None)
            .expect("load");
        let round = StreamStats {
            rounds: 1,
            attempts: 10,
            valid: 4,
            yielded: 3,
            duplicates: 1,
        };
        entry.record_stats(&round);
        entry.record_stats(&round);
        assert_eq!(entry.cumulative_stats().attempts, 20);
    }

    #[test]
    fn snapshot_orders_by_recency() {
        let registry = registry(u64::MAX);
        let (a, _) = registry
            .load(&cnf(4, 0), DEFAULT_ENGINE, Some("a"))
            .expect("a");
        let (_b, _) = registry
            .load(&cnf(4, 1), DEFAULT_ENGINE, Some("b"))
            .expect("b");
        assert!(registry.get(&a.fingerprint, DEFAULT_ENGINE).is_some());
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.len(), 2);
        assert_eq!(snapshot[0].name, "a", "most recently used first");
    }

    #[test]
    fn concurrent_loads_are_single_flight() {
        let registry = Arc::new(registry(u64::MAX));
        let formula = cnf(8, 0);
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let registry = registry.clone();
                let formula = formula.clone();
                std::thread::spawn(move || {
                    let (entry, _cached) =
                        registry.load(&formula, DEFAULT_ENGINE, None).expect("load");
                    entry.fingerprint
                })
            })
            .collect();
        let fingerprints: Vec<Fingerprint> = handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect();
        assert!(fingerprints.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(
            registry.counters().compiles,
            1,
            "concurrent loads of one pair must share one preparation"
        );
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn failed_load_releases_the_inflight_claim() {
        let registry = registry(u64::MAX);
        let mut unsat = Cnf::new(1);
        unsat.add_clause([]);
        assert!(registry.load(&unsat, DEFAULT_ENGINE, None).is_err());
        // A second attempt must not dead-wait on the failed claim.
        assert!(registry.load(&unsat, DEFAULT_ENGINE, None).is_err());
        assert_eq!(registry.counters().compiles, 2);
    }

    #[test]
    fn canonical_formula_comparison_ignores_order_only() {
        let a = cnf(5, 0);
        let mut reordered = Cnf::new(5);
        let mut clauses: Vec<_> = a.clauses().to_vec();
        clauses.reverse();
        for clause in clauses {
            reordered.push_clause(clause);
        }
        assert!(same_canonical_formula(&a, &reordered));
        assert!(!same_canonical_formula(&a, &cnf(5, 1)), "different content");
        let mut wider = a.clone();
        wider.grow_vars(9);
        assert!(!same_canonical_formula(&a, &wider), "different universe");
    }

    #[test]
    fn unsatisfiable_formula_is_rejected_not_cached() {
        let registry = registry(u64::MAX);
        let mut unsat = Cnf::new(1);
        unsat.add_clause([]); // empty clause
        assert!(registry.load(&unsat, DEFAULT_ENGINE, None).is_err());
        assert!(registry.is_empty());
    }
}
