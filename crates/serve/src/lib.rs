//! # htsat-serve
//!
//! The serving front-end of the htsat workspace: a **dependency-free TCP
//! daemon** that keeps compiled samplers resident between requests, so the
//! per-request cost of sampling a known formula drops from
//! *parse + transform + compile + sample* to just *sample*.
//!
//! The crate is std-only on top of the workspace (no tokio, no hyper, no
//! serde): the wire protocol is newline-delimited JSON with a hand-rolled
//! codec ([`json`]), transport is `std::net::TcpStream`, and request
//! parallelism comes from `std::thread` plus the workspace's own
//! [`htsat_runtime::ThreadPool`] underneath each sampler.
//!
//! The moving parts:
//!
//! * [`json`] — the minimal JSON codec (the shared `htsat-json` crate,
//!   re-exported under its historical module path).
//! * [`proto`] — the request/response message shapes and the protocol
//!   grammar (`LOAD`, `SAMPLE`, `STATUS`, `STATS`, `EVICT`, `SHUTDOWN`),
//!   including the per-request `engine` selector and the stable
//!   machine-readable [`ErrorCode`] every failure response carries.
//! * [`registry`] — the (formula, engine)-keyed sampler registry:
//!   ([`htsat_cnf::Fingerprint`], engine name) → a prepared
//!   [`htsat_core::SampleEngine`] (the GD sampler or any baseline, built
//!   through [`htsat_baselines::engine_by_name`]), with LRU eviction under
//!   a [`htsat_tensor::MemoryModel`]-driven byte budget. The registry hit
//!   path performs **no re-preparation** (asserted by its compile counter).
//! * [`server`] — the accept loop, per-connection sessions, per-request
//!   [`htsat_runtime::StopToken`]s grouped in a
//!   [`htsat_runtime::StopSet`], and graceful shutdown (in-flight streams
//!   cancelled, sessions drained).
//! * [`client`] — a blocking client used by tests, CI and
//!   `repro serve-bench`.
//!
//! The daemon is instrumented through `htsat-obs`: request counts per
//! verb, a request-latency histogram, connection and byte counters,
//! registry hit/miss/compile/eviction/coalesce counters and per-engine
//! residency gauges — all observer-only (instrumented runs stay
//! bit-identical) and exported over the wire by the `STATS` verb as a
//! schema-versioned [`htsat_obs::Snapshot`]. Diagnostics go through the
//! `htsat-obs` leveled logger (`HTSAT_LOG=error|warn|info|debug`).
//!
//! Determinism survives the wire for **every engine**: a `SAMPLE` with a
//! fixed seed returns the identical solution sequence as the in-process
//! [`htsat_core::SampleEngine::stream`] API, at any worker thread count —
//! the end-to-end tests assert byte equality at 1 and 8 threads across the
//! whole engine matrix, so clients can A/B the GD sampler against any
//! baseline bit-for-bit.
//!
//! # Example
//!
//! ```
//! use htsat_serve::proto::SampleParams;
//! use htsat_serve::{serve, Client, ServeConfig};
//!
//! // An ephemeral-port daemon (the default config binds 127.0.0.1:0).
//! let server = serve(ServeConfig::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//!
//! let load = client.load_dimacs(Some("demo"), "p cnf 2 1\n1 2 0\n")?;
//! let reply = client.sample(&SampleParams {
//!     n: 3,
//!     seed: 7,
//!     ..SampleParams::new(load.fingerprint)
//! })?;
//! assert_eq!(reply.solutions.len(), 3);
//! client.shutdown()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
mod feed;
pub use htsat_json as json;
pub mod proto;
pub mod registry;
pub mod server;
mod session;

pub use cache::CompileCache;
pub use client::{
    Client, ClientError, ConnectOptions, LoadReply, SampleDone, SampleEvent, SampleReply,
    SampleStream, SubEvent,
};
pub use proto::ErrorCode;
pub use registry::{RegistryConfig, RegistryCounters, SamplerRegistry};
pub use server::{serve, ServeConfig, ServerHandle};

use htsat_core::TransformError;

/// Errors of the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// The formula could not be prepared for the requested engine
    /// (structurally unsatisfiable, or an invalid engine configuration).
    Transform(TransformError),
    /// The request named an engine the daemon does not know.
    UnknownEngine(String),
    /// A loaded formula hashed to a resident entry's fingerprint but is a
    /// different formula — serving would return the wrong solutions.
    FingerprintCollision(htsat_cnf::Fingerprint),
    /// Transport-level failure.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Transform(e) => write!(f, "{e}"),
            ServeError::UnknownEngine(name) => write!(
                f,
                "unknown engine `{name}` (known: {})",
                htsat_baselines::ENGINE_NAMES.join(", ")
            ),
            ServeError::FingerprintCollision(fp) => write!(
                f,
                "fingerprint collision: a different resident formula already hashes to {fp}"
            ),
            ServeError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<TransformError> for ServeError {
    fn from(e: TransformError) -> Self {
        ServeError::Transform(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}
