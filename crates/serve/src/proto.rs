//! The wire protocol: line-oriented, newline-delimited JSON.
//!
//! Every request and every response is exactly one JSON object on one line
//! (`\n`-terminated). Requests carry a `"cmd"` discriminator; responses
//! always carry `"ok"` — `true` with command-specific payload fields, or
//! `false` with a human-readable `"error"` string. A malformed line yields
//! an `ok:false` response and the connection stays usable, so one bad
//! request never poisons a session.
//!
//! # Grammar (one line per message)
//!
//! ```text
//! request  = hello | load | sample | status | stats | evict | shutdown
//!          | subscribe | credit | unsubscribe | trace | register
//! hello    = {"cmd":"hello", "version":int}
//! load     = {"cmd":"load", "name"?:str, "engine"?:str, "dimacs":str} |
//!            {"cmd":"load", "name"?:str, "engine"?:str, "path":str}
//! sample   = {"cmd":"sample", "fingerprint":hex32, "engine"?:str,
//!             "n"?:int, "seed"?:int|decimal-str, "deadline_ms"?:int,
//!             "max_stale"?:int, "threads"?:int, "batch"?:int}
//! status   = {"cmd":"status"}
//! stats    = {"cmd":"stats", "reset"?:bool}
//! evict    = {"cmd":"evict", "fingerprint":hex32, "engine"?:str}
//! shutdown = {"cmd":"shutdown"}
//! subscribe   = {"cmd":"subscribe", "fingerprint":hex32, "engine"?:str,
//!                "seed"?:int|decimal-str, "threads"?:int, "batch"?:int,
//!                "max_stale"?:int, "credit"?:int, "chunk"?:int}
//! credit      = {"cmd":"credit", "sub":int, "n":int}
//! unsubscribe = {"cmd":"unsubscribe", "sub":int}
//! trace       = {"cmd":"trace", "last"?:int, "verb"?:str, "min_ms"?:int}
//! register    = {"cmd":"register", "addr":"host:port", "ttl_ms"?:int}
//! ```
//!
//! `REGISTER` is the discovery verb of the routing layer: a backend daemon
//! announces its dialable `addr` to an `htsat-router`, which adds it to the
//! shard map for `ttl_ms` milliseconds ([`DEFAULT_REGISTER_TTL_MS`] when
//! omitted). The registration expires unless renewed, so backends
//! re-register on a heartbeat (every `ttl_ms / 3`; see `--register` on
//! `htsat-serve`). The reply echoes `{"addr":…, "ttl_ms":…}`. Sampling
//! daemons themselves answer `REGISTER` with `bad-request` — only the
//! router accepts it.
//!
//! # Request-scoped tracing
//!
//! Any request may carry an optional `"trace"` field: 1–32 hex characters
//! naming a client-chosen 128-bit trace id. The daemon records a
//! per-request span timeline under that id and — on a v2 connection —
//! echoes `"trace"` on **every** frame the request produces (`reply`,
//! `chunk`, `done`, `error`), so a client can correlate interleaved frames
//! with its own distributed trace. v1 responses never carry a `trace` key
//! (the field is accepted and recorded, but the v1 wire shape is frozen).
//! An ill-formed `trace` value is a `bad-request`.
//!
//! The `TRACE` verb returns the most recent completed timelines as a
//! schema-versioned `htsat-trace-v1` document (see
//! [`htsat_obs::TraceReport`]): `last` caps how many (0 or absent = all
//! retained), `verb` keeps only timelines of one verb (e.g. `"sample"`),
//! and `min_ms` keeps only requests at least that slow.
//!
//! # Protocol versions
//!
//! A connection starts in **v1**: strictly one request in, one response
//! out, in order. A client upgrades by sending `HELLO` with
//! `"version": 2`; the `HELLO` reply itself is still v1-framed, and every
//! line after it is a v2 **frame**. Clients that never send `HELLO` (or
//! negotiate version 1) get v1 behaviour bit-for-bit — no `"frame"` or
//! `"id"` keys ever appear in their responses.
//!
//! In v2 every request carries a client-chosen `"id"` (a 64-bit integer,
//! unique among that connection's in-flight requests) and responses are
//! tagged frames that may interleave across requests:
//!
//! ```text
//! frame  = reply | chunk | done | pushed | error
//! reply  = {"frame":"reply",  "id":int, "ok":true, ...payload}
//! chunk  = {"frame":"chunk",  "id":int, "seq":int, "solutions":[bits...]}
//! done   = {"frame":"done",   "id":int, "ok":true, ...payload}
//! pushed = {"frame":"pushed", "sub":int, "seq":int, "solutions":[bits...]}
//! error  = {"frame":"error",  "id":int|null, "ok":false, "error":str,
//!           "code":str}
//! ```
//!
//! `reply` completes a unary request. A v2 `SAMPLE` streams: zero or more
//! `chunk` frames (batches straight off the engine's `SampleStream`, `seq`
//! counting from 0) then one terminal `done` carrying the stream stats; the
//! concatenated chunks are bit-identical to the in-process sequence for
//! the same seed. `pushed` frames belong to a subscription feed (see
//! `SUBSCRIBE` — they are addressed by `sub`, not `id`). `error` is
//! terminal for its `id`; `"id": null` means the request line itself was
//! undecodable.
//!
//! `STATS` returns the daemon's metrics snapshot (schema
//! `htsat-stats-v1`, see `htsat-obs`) merged into the response object;
//! `"reset": true` additionally zeroes counters and histograms *after*
//! taking the returned snapshot (gauges are levels and keep their values).
//!
//! Error responses carry both a human-readable `"error"` message and a
//! stable machine-readable `"code"` (see [`ErrorCode`]) so clients can
//! branch on failure kinds without parsing prose.
//!
//! `engine` selects which prepared sampling engine serves the formula
//! (`"gd"` — the paper's sampler and the default — or any baseline:
//! `"walksat"`, `"unigen"`, `"cmsgen"`, `"quicksampler"`,
//! `"diffsampler"`). The daemon registry caches prepared artifacts per
//! (fingerprint, engine): `LOAD` the pair first, then `SAMPLE` it; an
//! `EVICT` without `engine` drops every engine of that fingerprint.
//!
//! `seed` spans the full 64-bit range; values above 2^53 travel as decimal
//! strings (and are echoed back the same way) because a JSON number is an
//! `f64` and would silently round them — a rounded seed breaks the
//! same-seed determinism contract.
//!
//! Solutions travel as bit strings (`"0110…"`, one character per CNF
//! variable, `'1'` = true), the densest JSON-safe encoding that needs no
//! base64 machinery.

use crate::json::Json;
use htsat_cnf::Fingerprint;
use htsat_obs::TraceId;
use htsat_runtime::StreamStats;

/// Default number of unique solutions a `SAMPLE` request asks for when `n`
/// is omitted.
pub const DEFAULT_SAMPLE_N: usize = 16;

/// The baseline protocol every connection starts in: one request in, one
/// response out, in order.
pub const PROTOCOL_V1: u64 = 1;

/// The tagged, multiplexed frame protocol negotiated via `HELLO`.
pub const PROTOCOL_V2: u64 = 2;

/// Highest protocol version this build speaks.
pub const PROTOCOL_MAX: u64 = PROTOCOL_V2;

/// Initial credit a `SUBSCRIBE` request grants itself when `credit` is
/// omitted: how many `pushed` frames the server may send before the
/// subscriber must top up with `CREDIT`.
pub const DEFAULT_SUBSCRIBE_CREDIT: u64 = 4;

/// Solutions per `pushed` frame when a `SUBSCRIBE` request omits `chunk`.
pub const DEFAULT_SUBSCRIBE_CHUNK: usize = 16;

/// The engine a request targets when its `engine` field is omitted: the
/// paper's transformed-circuit GD sampler.
pub const DEFAULT_ENGINE: &str = "gd";

/// How long a `REGISTER` announcement stays live when `ttl_ms` is omitted.
/// Backends heartbeat at a third of their TTL, so the default tolerates
/// two missed heartbeats before the router drops the backend.
pub const DEFAULT_REGISTER_TTL_MS: u64 = 3000;

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Negotiate the protocol version for the rest of the connection.
    Hello {
        /// Version the client wants to speak ([`PROTOCOL_V1`] or
        /// [`PROTOCOL_V2`]).
        version: u64,
    },
    /// Register a formula (inline DIMACS text or a server-side path) in the
    /// sampler registry, prepared for one engine.
    Load {
        /// Display name for status listings; defaults to the fingerprint.
        name: Option<String>,
        /// Engine to prepare the formula for (`None` = [`DEFAULT_ENGINE`]).
        engine: Option<String>,
        /// Where the DIMACS text comes from.
        source: LoadSource,
    },
    /// Stream unique solutions of a registered (formula, engine) pair.
    Sample(SampleParams),
    /// Report registry contents, cumulative stream statistics and uptime.
    Status,
    /// Return the metrics snapshot; optionally reset counters/histograms
    /// after snapshotting.
    Stats {
        /// Zero counters and histograms after taking the snapshot.
        reset: bool,
    },
    /// Drop registry entries of one formula.
    Evict {
        /// Registry key to drop.
        fingerprint: Fingerprint,
        /// Engine whose entry to drop (`None` = every engine of the
        /// fingerprint).
        engine: Option<String>,
    },
    /// Stop the daemon: fire all request stop-tokens, drain in-flight
    /// connections, exit the accept loop.
    Shutdown,
    /// Join (or start) the shared push feed of a (formula, engine, seed)
    /// trajectory. v2-only.
    Subscribe(SubscribeParams),
    /// Grant a subscription more `pushed` frames. v2-only.
    Credit {
        /// Subscription id (from the `SUBSCRIBE` reply).
        sub: u64,
        /// Additional frames the server may push.
        n: u64,
    },
    /// Leave a feed and reclaim its seat. v2-only.
    Unsubscribe {
        /// Subscription id to drop.
        sub: u64,
    },
    /// Announce a backend daemon to a router's discovery map (renewed on a
    /// heartbeat; expires after the TTL). Only `htsat-router` accepts it —
    /// sampling daemons answer `bad-request`.
    Register {
        /// Address the router should dial the backend at (`host:port`).
        addr: String,
        /// Liveness window in milliseconds
        /// (`None` = [`DEFAULT_REGISTER_TTL_MS`]).
        ttl_ms: Option<u64>,
    },
    /// Return recent request timelines from the trace ring (schema
    /// `htsat-trace-v1`, see [`htsat_obs::TraceReport`]).
    Trace {
        /// Keep only the most recent N timelines (`None`/0 = all retained).
        last: Option<u64>,
        /// Keep only timelines of this verb (e.g. `"sample"`).
        verb: Option<String>,
        /// Keep only requests that took at least this many milliseconds.
        min_ms: Option<u64>,
    },
}

/// Where a `LOAD` request's DIMACS text comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadSource {
    /// DIMACS text carried inline in the request.
    Inline(String),
    /// A path readable by the *server* process.
    Path(String),
}

/// Parameters of a `SAMPLE` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleParams {
    /// Registry key of the formula to sample.
    pub fingerprint: Fingerprint,
    /// Engine to sample with (`None` = [`DEFAULT_ENGINE`]); the
    /// (fingerprint, engine) pair must have been loaded.
    pub engine: Option<String>,
    /// Unique solutions requested.
    pub n: usize,
    /// Sampler seed; the same seed always reproduces the same solution
    /// sequence, at any thread count.
    pub seed: u64,
    /// Per-request deadline in milliseconds (`None` = no deadline).
    pub deadline_ms: Option<u64>,
    /// Stale-round limit override (`None` = the stream default).
    pub max_stale: Option<u32>,
    /// Worker threads for this request (`None` = server default;
    /// `Some(0)` = one worker per core).
    pub threads: Option<usize>,
    /// Batch size override (`None` = the sampler default).
    pub batch: Option<usize>,
}

impl SampleParams {
    /// Parameters with every knob at its default for `fingerprint`.
    #[must_use]
    pub fn new(fingerprint: Fingerprint) -> Self {
        SampleParams {
            fingerprint,
            engine: None,
            n: DEFAULT_SAMPLE_N,
            seed: 0,
            deadline_ms: None,
            max_stale: None,
            threads: None,
            batch: None,
        }
    }

    /// Parameters targeting a specific engine, every other knob default.
    #[must_use]
    pub fn with_engine(fingerprint: Fingerprint, engine: &str) -> Self {
        SampleParams {
            engine: Some(engine.to_string()),
            ..SampleParams::new(fingerprint)
        }
    }
}

/// Parameters of a `SUBSCRIBE` request.
///
/// The (fingerprint, engine, seed, threads, batch, max_stale, chunk) tuple
/// keys the shared feed: subscribers with identical parameters share one
/// resident engine session, and its solution batches fan out to all of
/// them. `credit` is per-subscriber and does not key the feed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubscribeParams {
    /// Registry key of the formula to sample.
    pub fingerprint: Fingerprint,
    /// Engine to sample with (`None` = [`DEFAULT_ENGINE`]); the
    /// (fingerprint, engine) pair must have been loaded.
    pub engine: Option<String>,
    /// Seed of the shared trajectory.
    pub seed: u64,
    /// Worker threads for the shared session (`None` = server default).
    pub threads: Option<usize>,
    /// Batch size override (`None` = the sampler default).
    pub batch: Option<usize>,
    /// Stale-round limit override (`None` = the stream default).
    pub max_stale: Option<u32>,
    /// Initial credit: `pushed` frames the server may send before the
    /// subscriber tops up with `CREDIT`. Zero joins stalled.
    pub credit: u64,
    /// Solutions per `pushed` frame.
    pub chunk: usize,
}

impl SubscribeParams {
    /// Parameters with every knob at its default for `fingerprint`.
    #[must_use]
    pub fn new(fingerprint: Fingerprint) -> Self {
        SubscribeParams {
            fingerprint,
            engine: None,
            seed: 0,
            threads: None,
            batch: None,
            max_stale: None,
            credit: DEFAULT_SUBSCRIBE_CREDIT,
            chunk: DEFAULT_SUBSCRIBE_CHUNK,
        }
    }
}

/// A protocol-level decoding error (valid JSON, invalid request).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ProtoError {}

/// Largest integer a JSON number (an `f64`) carries exactly. Fields that
/// may exceed it (the 64-bit seed) travel as decimal strings instead.
const MAX_EXACT_JSON_INT: u64 = 1 << 53;

fn field_u64(obj: &Json, key: &str) -> Result<Option<u64>, ProtoError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| ProtoError(format!("`{key}` must be a non-negative integer"))),
    }
}

/// Decodes a full-width `u64` field that may arrive as a JSON number *or*
/// a decimal string. Strings are the lossless transport: a JSON number is
/// an `f64` and silently rounds integers above 2^53, which for a sampler
/// seed would violate the same-seed determinism contract.
fn field_u64_exact(obj: &Json, key: &str) -> Result<Option<u64>, ProtoError> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(text)) => text
            .parse()
            .map(Some)
            .map_err(|_| ProtoError(format!("`{key}` string must be a decimal 64-bit integer"))),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| ProtoError(format!("`{key}` must be a non-negative integer"))),
    }
}

/// Encodes a full-width `u64` losslessly: as a number while exact in `f64`,
/// as a decimal string above 2^53 (a JSON number is an `f64` and would
/// silently round). The server echoes seeds with this too.
#[must_use]
pub fn encode_u64_exact(value: u64) -> Json {
    if value <= MAX_EXACT_JSON_INT {
        value.into()
    } else {
        Json::Str(value.to_string())
    }
}

/// Decodes the optional `engine` field (a string when present).
fn field_engine(obj: &Json) -> Result<Option<String>, ProtoError> {
    match obj.get("engine") {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(name)) => Ok(Some(name.clone())),
        Some(_) => Err(ProtoError("`engine` must be a string".to_string())),
    }
}

fn field_fingerprint(obj: &Json) -> Result<Fingerprint, ProtoError> {
    let text = obj
        .get("fingerprint")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError("missing `fingerprint`".to_string()))?;
    text.parse()
        .map_err(|e| ProtoError(format!("invalid fingerprint: {e}")))
}

impl Request {
    /// Decodes a request from its parsed JSON form.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtoError`] naming the offending field for unknown
    /// commands, missing required fields and ill-typed values.
    pub fn decode(msg: &Json) -> Result<Request, ProtoError> {
        let cmd = msg
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError("missing `cmd`".to_string()))?;
        match cmd {
            "hello" => {
                let version = field_u64(msg, "version")?
                    .ok_or_else(|| ProtoError("hello needs `version`".to_string()))?;
                Ok(Request::Hello { version })
            }
            "load" => {
                let name = msg.get("name").and_then(Json::as_str).map(str::to_string);
                let engine = field_engine(msg)?;
                let source = match (
                    msg.get("dimacs").and_then(Json::as_str),
                    msg.get("path").and_then(Json::as_str),
                ) {
                    (Some(text), None) => LoadSource::Inline(text.to_string()),
                    (None, Some(path)) => LoadSource::Path(path.to_string()),
                    (Some(_), Some(_)) => {
                        return Err(ProtoError(
                            "`dimacs` and `path` are mutually exclusive".to_string(),
                        ))
                    }
                    (None, None) => {
                        return Err(ProtoError("load needs `dimacs` or `path`".to_string()))
                    }
                };
                Ok(Request::Load {
                    name,
                    engine,
                    source,
                })
            }
            "sample" => {
                let mut params = SampleParams::new(field_fingerprint(msg)?);
                params.engine = field_engine(msg)?;
                if let Some(n) = field_u64(msg, "n")? {
                    params.n = n as usize;
                }
                if let Some(seed) = field_u64_exact(msg, "seed")? {
                    params.seed = seed;
                }
                params.deadline_ms = field_u64(msg, "deadline_ms")?;
                params.max_stale = field_u64(msg, "max_stale")?.map(|v| v as u32);
                params.threads = field_u64(msg, "threads")?.map(|v| v as usize);
                params.batch = field_u64(msg, "batch")?.map(|v| v as usize);
                if params.batch == Some(0) {
                    return Err(ProtoError("`batch` must be non-zero".to_string()));
                }
                Ok(Request::Sample(params))
            }
            "status" => Ok(Request::Status),
            "stats" => {
                let reset = match msg.get("reset") {
                    None | Some(Json::Null) => false,
                    Some(Json::Bool(b)) => *b,
                    Some(_) => return Err(ProtoError("`reset` must be a boolean".to_string())),
                };
                Ok(Request::Stats { reset })
            }
            "evict" => Ok(Request::Evict {
                fingerprint: field_fingerprint(msg)?,
                engine: field_engine(msg)?,
            }),
            "shutdown" => Ok(Request::Shutdown),
            "subscribe" => {
                let mut params = SubscribeParams::new(field_fingerprint(msg)?);
                params.engine = field_engine(msg)?;
                if let Some(seed) = field_u64_exact(msg, "seed")? {
                    params.seed = seed;
                }
                params.threads = field_u64(msg, "threads")?.map(|v| v as usize);
                params.batch = field_u64(msg, "batch")?.map(|v| v as usize);
                params.max_stale = field_u64(msg, "max_stale")?.map(|v| v as u32);
                if let Some(credit) = field_u64(msg, "credit")? {
                    params.credit = credit;
                }
                if let Some(chunk) = field_u64(msg, "chunk")? {
                    params.chunk = chunk as usize;
                }
                if params.batch == Some(0) {
                    return Err(ProtoError("`batch` must be non-zero".to_string()));
                }
                if params.chunk == 0 {
                    return Err(ProtoError("`chunk` must be non-zero".to_string()));
                }
                Ok(Request::Subscribe(params))
            }
            "credit" => {
                let sub = field_u64(msg, "sub")?
                    .ok_or_else(|| ProtoError("credit needs `sub`".to_string()))?;
                let n = field_u64(msg, "n")?
                    .ok_or_else(|| ProtoError("credit needs `n`".to_string()))?;
                if n == 0 {
                    return Err(ProtoError("`n` must be non-zero".to_string()));
                }
                Ok(Request::Credit { sub, n })
            }
            "unsubscribe" => {
                let sub = field_u64(msg, "sub")?
                    .ok_or_else(|| ProtoError("unsubscribe needs `sub`".to_string()))?;
                Ok(Request::Unsubscribe { sub })
            }
            "register" => {
                let addr = msg
                    .get("addr")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ProtoError("register needs `addr`".to_string()))?;
                if addr.is_empty() {
                    return Err(ProtoError("`addr` must be non-empty".to_string()));
                }
                let ttl_ms = field_u64(msg, "ttl_ms")?;
                if ttl_ms == Some(0) {
                    return Err(ProtoError("`ttl_ms` must be non-zero".to_string()));
                }
                Ok(Request::Register {
                    addr: addr.to_string(),
                    ttl_ms,
                })
            }
            "trace" => {
                let verb = match msg.get("verb") {
                    None | Some(Json::Null) => None,
                    Some(Json::Str(name)) => Some(name.clone()),
                    Some(_) => return Err(ProtoError("`verb` must be a string".to_string())),
                };
                Ok(Request::Trace {
                    last: field_u64(msg, "last")?,
                    verb,
                    min_ms: field_u64(msg, "min_ms")?,
                })
            }
            other => Err(ProtoError(format!("unknown command `{other}`"))),
        }
    }

    /// Encodes the request to its JSON wire form (the client side of
    /// [`Request::decode`]).
    #[must_use]
    pub fn encode(&self) -> Json {
        match self {
            Request::Hello { version } => Json::obj(vec![
                ("cmd", "hello".into()),
                ("version", (*version).into()),
            ]),
            Request::Load {
                name,
                engine,
                source,
            } => {
                let mut pairs = vec![("cmd", Json::from("load"))];
                if let Some(name) = name {
                    pairs.push(("name", name.clone().into()));
                }
                if let Some(engine) = engine {
                    pairs.push(("engine", engine.clone().into()));
                }
                match source {
                    LoadSource::Inline(text) => pairs.push(("dimacs", text.clone().into())),
                    LoadSource::Path(path) => pairs.push(("path", path.clone().into())),
                }
                Json::obj(pairs)
            }
            Request::Sample(p) => {
                let mut pairs = vec![
                    ("cmd", Json::from("sample")),
                    ("fingerprint", p.fingerprint.to_hex().into()),
                    ("n", p.n.into()),
                    ("seed", encode_u64_exact(p.seed)),
                ];
                if let Some(engine) = &p.engine {
                    pairs.push(("engine", engine.clone().into()));
                }
                if let Some(ms) = p.deadline_ms {
                    pairs.push(("deadline_ms", ms.into()));
                }
                if let Some(stale) = p.max_stale {
                    pairs.push(("max_stale", u64::from(stale).into()));
                }
                if let Some(threads) = p.threads {
                    pairs.push(("threads", threads.into()));
                }
                if let Some(batch) = p.batch {
                    pairs.push(("batch", batch.into()));
                }
                Json::obj(pairs)
            }
            Request::Status => Json::obj(vec![("cmd", "status".into())]),
            Request::Stats { reset } => {
                let mut pairs = vec![("cmd", Json::from("stats"))];
                if *reset {
                    pairs.push(("reset", true.into()));
                }
                Json::obj(pairs)
            }
            Request::Evict {
                fingerprint,
                engine,
            } => {
                let mut pairs = vec![
                    ("cmd", "evict".into()),
                    ("fingerprint", fingerprint.to_hex().into()),
                ];
                if let Some(engine) = engine {
                    pairs.push(("engine", engine.clone().into()));
                }
                Json::obj(pairs)
            }
            Request::Shutdown => Json::obj(vec![("cmd", "shutdown".into())]),
            Request::Subscribe(p) => {
                let mut pairs = vec![
                    ("cmd", Json::from("subscribe")),
                    ("fingerprint", p.fingerprint.to_hex().into()),
                    ("seed", encode_u64_exact(p.seed)),
                ];
                if let Some(engine) = &p.engine {
                    pairs.push(("engine", engine.clone().into()));
                }
                if let Some(threads) = p.threads {
                    pairs.push(("threads", threads.into()));
                }
                if let Some(batch) = p.batch {
                    pairs.push(("batch", batch.into()));
                }
                if let Some(stale) = p.max_stale {
                    pairs.push(("max_stale", u64::from(stale).into()));
                }
                pairs.push(("credit", p.credit.into()));
                pairs.push(("chunk", p.chunk.into()));
                Json::obj(pairs)
            }
            Request::Credit { sub, n } => Json::obj(vec![
                ("cmd", "credit".into()),
                ("sub", (*sub).into()),
                ("n", (*n).into()),
            ]),
            Request::Unsubscribe { sub } => {
                Json::obj(vec![("cmd", "unsubscribe".into()), ("sub", (*sub).into())])
            }
            Request::Register { addr, ttl_ms } => {
                let mut pairs = vec![
                    ("cmd", Json::from("register")),
                    ("addr", addr.clone().into()),
                ];
                if let Some(ttl) = ttl_ms {
                    pairs.push(("ttl_ms", (*ttl).into()));
                }
                Json::obj(pairs)
            }
            Request::Trace { last, verb, min_ms } => {
                let mut pairs = vec![("cmd", Json::from("trace"))];
                if let Some(last) = last {
                    pairs.push(("last", (*last).into()));
                }
                if let Some(verb) = verb {
                    pairs.push(("verb", verb.clone().into()));
                }
                if let Some(ms) = min_ms {
                    pairs.push(("min_ms", (*ms).into()));
                }
                Json::obj(pairs)
            }
        }
    }
}

/// Decodes the v2 request tag: the client-chosen `"id"` echoed on every
/// frame the request produces. `Ok(None)` when absent (a v1 request, or a
/// v2 framing error the session layer reports with `"id": null`).
///
/// # Errors
///
/// Returns a [`ProtoError`] when `id` is present but not a non-negative
/// integer (or decimal string) — ids span the full `u64` range, so strings
/// are accepted like seeds.
pub fn request_id(msg: &Json) -> Result<Option<u64>, ProtoError> {
    field_u64_exact(msg, "id")
}

/// Decodes the optional client-supplied `"trace"` field: 1–32 hex
/// characters naming a 128-bit [`TraceId`] the request's timeline is
/// recorded under. `Ok(None)` when absent.
///
/// # Errors
///
/// Returns a [`ProtoError`] when `trace` is present but not a hex string
/// (answered as `bad-request`).
pub fn request_trace(msg: &Json) -> Result<Option<TraceId>, ProtoError> {
    match msg.get("trace") {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(text)) => TraceId::parse(text).map(Some).ok_or_else(|| {
            ProtoError("`trace` must be 1-32 hex characters (a 128-bit trace id)".to_string())
        }),
        Some(_) => Err(ProtoError("`trace` must be a hex string".to_string())),
    }
}

/// Appends the `"trace"` echo to a v2 frame of a client-traced request (a
/// no-op with `None` — untraced requests keep the pre-trace frame shape
/// bit-for-bit).
#[must_use]
pub fn frame_traced(mut frame: Json, trace: Option<TraceId>) -> Json {
    if let (Some(id), Json::Obj(pairs)) = (trace, &mut frame) {
        pairs.push(("trace".to_string(), Json::Str(id.to_hex())));
    }
    frame
}

/// Builds a v2 `reply` frame: the terminal (and only) frame of a unary
/// request, payload fields appended after `ok:true`.
#[must_use]
pub fn frame_reply(id: u64, payload: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![
        ("frame", Json::from("reply")),
        ("id", encode_u64_exact(id)),
        ("ok", true.into()),
    ];
    pairs.extend(payload);
    Json::obj(pairs)
}

/// Builds a v2 `chunk` frame: one incremental batch of a streaming
/// `SAMPLE`, `seq` counting from 0 per request.
#[must_use]
pub fn frame_chunk(id: u64, seq: u64, solutions: &[Vec<bool>]) -> Json {
    Json::obj(vec![
        ("frame", "chunk".into()),
        ("id", encode_u64_exact(id)),
        ("seq", seq.into()),
        (
            "solutions",
            Json::Arr(
                solutions
                    .iter()
                    .map(|bits| encode_solution(bits).into())
                    .collect(),
            ),
        ),
    ])
}

/// Builds a v2 `done` frame: the terminal frame of a streaming request,
/// payload fields (stats, elapsed) appended after `ok:true`.
#[must_use]
pub fn frame_done(id: u64, payload: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![
        ("frame", Json::from("done")),
        ("id", encode_u64_exact(id)),
        ("ok", true.into()),
    ];
    pairs.extend(payload);
    Json::obj(pairs)
}

/// Builds a v2 `pushed` frame: one fanned-out feed batch, addressed by
/// subscription id (`sub`), `seq` counting the feed's batches from 0.
#[must_use]
pub fn frame_pushed(sub: u64, seq: u64, solutions: &[Vec<bool>]) -> Json {
    Json::obj(vec![
        ("frame", "pushed".into()),
        ("sub", encode_u64_exact(sub)),
        ("seq", seq.into()),
        (
            "solutions",
            Json::Arr(
                solutions
                    .iter()
                    .map(|bits| encode_solution(bits).into())
                    .collect(),
            ),
        ),
    ])
}

/// Builds the terminal `done` frame of a *feed*: addressed by subscription
/// id (`sub`, like `pushed`) because a feed outlives the `SUBSCRIBE`
/// request that opened it. Sent when the shared trajectory ends naturally
/// (solution space exhausted).
#[must_use]
pub fn frame_feed_done(sub: u64, payload: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![
        ("frame", Json::from("done")),
        ("sub", encode_u64_exact(sub)),
        ("ok", true.into()),
    ];
    pairs.extend(payload);
    Json::obj(pairs)
}

/// Builds the terminal `error` frame of a *feed* (addressed by `sub`, like
/// [`frame_feed_done`]) — e.g. code `shutdown` when the daemon stops under
/// live subscriptions.
#[must_use]
pub fn frame_feed_error(sub: u64, code: ErrorCode, message: &str) -> Json {
    Json::obj(vec![
        ("frame", "error".into()),
        ("sub", encode_u64_exact(sub)),
        ("ok", false.into()),
        ("error", message.into()),
        ("code", code.as_str().into()),
    ])
}

/// Wraps a v1 response object into its v2 frame: `reply` for `ok:true`,
/// `error` for `ok:false`, with the response's own fields carried verbatim
/// after the `frame`/`id` tags. This is how the v2 session reuses every
/// unary v1 handler unchanged.
#[must_use]
pub fn frame_from_response(id: u64, response: &Json) -> Json {
    let kind = if response.get("ok").and_then(Json::as_bool) == Some(true) {
        "reply"
    } else {
        "error"
    };
    let mut pairs = vec![
        ("frame".to_string(), Json::from(kind)),
        ("id".to_string(), encode_u64_exact(id)),
    ];
    if let Json::Obj(fields) = response {
        pairs.extend(fields.iter().cloned());
    }
    Json::Obj(pairs)
}

/// Builds a v2 `error` frame: terminal for its `id`. `id: None` encodes as
/// `"id": null` and means the request line itself could not be attributed
/// to a request (bad JSON, missing id).
#[must_use]
pub fn frame_error(id: Option<u64>, code: ErrorCode, message: &str) -> Json {
    Json::obj(vec![
        ("frame", "error".into()),
        ("id", id.map_or(Json::Null, encode_u64_exact)),
        ("ok", false.into()),
        ("error", message.into()),
        ("code", code.as_str().into()),
    ])
}

/// Stable machine-readable classification of a failure response.
///
/// The kebab-case wire form ([`ErrorCode::as_str`]) travels in the
/// response's `"code"` field and keys the per-code error counters
/// (`serve.errors.<code>`). Codes are append-only: clients may rely on an
/// existing code never changing meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line was not valid JSON.
    BadJson,
    /// Valid JSON but an invalid request: unknown command, missing or
    /// ill-typed field, out-of-range parameter, or a cap exceeded.
    BadRequest,
    /// The requested engine name is not one the daemon knows.
    EngineUnknown,
    /// The (fingerprint, engine) pair has not been loaded.
    NotLoaded,
    /// A `path` load was requested but the daemon runs without
    /// `--allow-path-load`.
    PathLoadDisabled,
    /// The server failed to read a requested resource (e.g. a `path` load).
    Io,
    /// The CNF could not be parsed or prepared for the engine.
    TransformFailed,
    /// Two distinct formulas collided on one fingerprint.
    FingerprintCollision,
    /// The daemon is shutting down and takes no further work.
    Shutdown,
    /// No live backend owns the requested shard (router-only: the
    /// discovery map is empty or every candidate refused the dial).
    NoBackend,
    /// The backend owning an in-flight request died mid-stream
    /// (router-only: terminal for that request; retry re-routes).
    BackendLost,
}

impl ErrorCode {
    /// The stable kebab-case wire form.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad-json",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::EngineUnknown => "engine-unknown",
            ErrorCode::NotLoaded => "not-loaded",
            ErrorCode::PathLoadDisabled => "path-load-disabled",
            ErrorCode::Io => "io",
            ErrorCode::TransformFailed => "transform-failed",
            ErrorCode::FingerprintCollision => "fingerprint-collision",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::NoBackend => "no-backend",
            ErrorCode::BackendLost => "backend-lost",
        }
    }

    /// The metric name its occurrences are counted under.
    #[must_use]
    pub fn metric_name(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "serve.errors.bad-json",
            ErrorCode::BadRequest => "serve.errors.bad-request",
            ErrorCode::EngineUnknown => "serve.errors.engine-unknown",
            ErrorCode::NotLoaded => "serve.errors.not-loaded",
            ErrorCode::PathLoadDisabled => "serve.errors.path-load-disabled",
            ErrorCode::Io => "serve.errors.io",
            ErrorCode::TransformFailed => "serve.errors.transform-failed",
            ErrorCode::FingerprintCollision => "serve.errors.fingerprint-collision",
            ErrorCode::Shutdown => "serve.errors.shutdown",
            ErrorCode::NoBackend => "serve.errors.no-backend",
            ErrorCode::BackendLost => "serve.errors.backend-lost",
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Builds the standard failure response: the human-readable `error`
/// message (unchanged across releases for a given failure) plus the stable
/// machine-readable `code`.
#[must_use]
pub fn error_response(code: ErrorCode, message: &str) -> Json {
    Json::obj(vec![
        ("ok", false.into()),
        ("error", message.into()),
        ("code", code.as_str().into()),
    ])
}

/// Builds a success response from payload fields (prepends `"ok": true`).
#[must_use]
pub fn ok_response(mut payload: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![("ok", Json::Bool(true))];
    pairs.append(&mut payload);
    Json::obj(pairs)
}

/// Encodes a solution bit-vector as the wire bit string (`'1'` = true).
#[must_use]
pub fn encode_solution(bits: &[bool]) -> String {
    bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

/// Decodes a wire bit string back into a solution bit-vector.
///
/// # Errors
///
/// Returns a [`ProtoError`] on characters other than `'0'`/`'1'`.
pub fn decode_solution(text: &str) -> Result<Vec<bool>, ProtoError> {
    text.chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(ProtoError(format!("invalid solution bit `{other}`"))),
        })
        .collect()
}

/// Encodes [`StreamStats`] as a JSON object using the stable
/// [`StreamStats::fields`] names.
#[must_use]
pub fn encode_stats(stats: &StreamStats) -> Json {
    Json::Obj(
        stats
            .fields()
            .into_iter()
            .map(|(name, value)| (name.to_string(), value.into()))
            .collect(),
    )
}

/// Decodes a stats object produced by [`encode_stats`]; missing fields
/// decode as zero.
#[must_use]
pub fn decode_stats(msg: &Json) -> StreamStats {
    let field = |name: &str| msg.get(name).and_then(Json::as_u64).unwrap_or_default() as usize;
    StreamStats {
        rounds: field("rounds"),
        attempts: field("attempts"),
        valid: field("valid"),
        yielded: field("yielded"),
        duplicates: field("duplicates"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htsat_cnf::Cnf;

    fn fp() -> Fingerprint {
        let mut cnf = Cnf::new(2);
        cnf.add_dimacs_clause([1, 2]);
        Fingerprint::of(&cnf)
    }

    #[test]
    fn requests_round_trip_through_the_wire_form() {
        let requests = [
            Request::Load {
                name: Some("demo".to_string()),
                engine: None,
                source: LoadSource::Inline("p cnf 1 1\n1 0\n".to_string()),
            },
            Request::Load {
                name: None,
                engine: Some("walksat".to_string()),
                source: LoadSource::Path("/tmp/x.cnf".to_string()),
            },
            Request::Sample(SampleParams {
                n: 8,
                seed: 42,
                deadline_ms: Some(250),
                max_stale: Some(4),
                threads: Some(8),
                batch: Some(64),
                ..SampleParams::new(fp())
            }),
            Request::Sample(SampleParams::new(fp())),
            Request::Sample(SampleParams::with_engine(fp(), "unigen")),
            Request::Sample(SampleParams {
                // Above 2^53: must survive the wire exactly (string form).
                seed: u64::MAX - 1,
                ..SampleParams::new(fp())
            }),
            Request::Status,
            Request::Stats { reset: false },
            Request::Stats { reset: true },
            Request::Evict {
                fingerprint: fp(),
                engine: None,
            },
            Request::Evict {
                fingerprint: fp(),
                engine: Some("cmsgen".to_string()),
            },
            Request::Shutdown,
            Request::Hello { version: 2 },
            Request::Subscribe(SubscribeParams::new(fp())),
            Request::Subscribe(SubscribeParams {
                engine: Some("walksat".to_string()),
                seed: u64::MAX - 3, // above 2^53: travels as a string
                threads: Some(8),
                batch: Some(32),
                max_stale: Some(6),
                credit: 0,
                chunk: 5,
                ..SubscribeParams::new(fp())
            }),
            Request::Credit { sub: 3, n: 10 },
            Request::Unsubscribe { sub: 3 },
            Request::Trace {
                last: None,
                verb: None,
                min_ms: None,
            },
            Request::Trace {
                last: Some(5),
                verb: Some("sample".to_string()),
                min_ms: Some(250),
            },
            Request::Register {
                addr: "127.0.0.1:7878".to_string(),
                ttl_ms: None,
            },
            Request::Register {
                addr: "10.0.0.2:9000".to_string(),
                ttl_ms: Some(1500),
            },
        ];
        for request in requests {
            let line = request.encode().encode();
            let parsed = Json::parse(&line).expect("valid JSON");
            assert_eq!(Request::decode(&parsed).expect("decodes"), request);
        }
    }

    #[test]
    fn decode_rejects_malformed_requests() {
        for (text, needle) in [
            (r#"{"n": 3}"#, "missing `cmd`"),
            (r#"{"cmd": "frobnicate"}"#, "unknown command"),
            (r#"{"cmd": "load"}"#, "`dimacs` or `path`"),
            (
                r#"{"cmd": "load", "dimacs": "x", "path": "y"}"#,
                "mutually exclusive",
            ),
            (r#"{"cmd": "sample"}"#, "missing `fingerprint`"),
            (
                r#"{"cmd": "sample", "fingerprint": "zz"}"#,
                "invalid fingerprint",
            ),
            (
                r#"{"cmd": "evict", "fingerprint": 7}"#,
                "missing `fingerprint`",
            ),
            (
                r#"{"cmd": "load", "dimacs": "x", "engine": 3}"#,
                "`engine` must be a string",
            ),
            (
                r#"{"cmd": "stats", "reset": "yes"}"#,
                "`reset` must be a boolean",
            ),
            (r#"{"cmd": "hello"}"#, "hello needs `version`"),
            (r#"{"cmd": "subscribe"}"#, "missing `fingerprint`"),
            (r#"{"cmd": "credit", "n": 1}"#, "credit needs `sub`"),
            (
                r#"{"cmd": "credit", "sub": 1, "n": 0}"#,
                "`n` must be non-zero",
            ),
            (r#"{"cmd": "unsubscribe"}"#, "unsubscribe needs `sub`"),
            (r#"{"cmd": "trace", "verb": 7}"#, "`verb` must be a string"),
            (r#"{"cmd": "register"}"#, "register needs `addr`"),
            (
                r#"{"cmd": "register", "addr": ""}"#,
                "`addr` must be non-empty",
            ),
            (
                r#"{"cmd": "register", "addr": "x:1", "ttl_ms": 0}"#,
                "`ttl_ms` must be non-zero",
            ),
            (
                r#"{"cmd": "trace", "last": "many"}"#,
                "`last` must be a non-negative integer",
            ),
        ] {
            let msg = Json::parse(text).expect("valid JSON");
            let err = Request::decode(&msg).expect_err(text);
            assert!(err.0.contains(needle), "{text}: {err}");
        }
        let bad_n = Json::parse(&format!(
            r#"{{"cmd": "sample", "fingerprint": "{}", "n": -1}}"#,
            fp().to_hex()
        ))
        .expect("valid JSON");
        assert!(Request::decode(&bad_n).is_err());
    }

    #[test]
    fn solution_bit_strings_round_trip() {
        let bits = vec![true, false, false, true, true];
        let text = encode_solution(&bits);
        assert_eq!(text, "10011");
        assert_eq!(decode_solution(&text).expect("decodes"), bits);
        assert!(decode_solution("01x").is_err());
    }

    #[test]
    fn stats_round_trip() {
        let stats = StreamStats {
            rounds: 3,
            attempts: 300,
            valid: 50,
            yielded: 40,
            duplicates: 10,
        };
        assert_eq!(decode_stats(&encode_stats(&stats)), stats);
        assert_eq!(decode_stats(&Json::obj(vec![])), StreamStats::default());
    }

    #[test]
    fn response_builders_shape() {
        let ok = ok_response(vec![("x", 1usize.into())]);
        assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(ok.get("x").and_then(Json::as_u64), Some(1));
        let err = error_response(ErrorCode::BadRequest, "boom");
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(err.get("error").and_then(Json::as_str), Some("boom"));
        assert_eq!(err.get("code").and_then(Json::as_str), Some("bad-request"));
    }

    #[test]
    fn subscribe_rejects_zero_chunk() {
        let msg = Json::parse(&format!(
            r#"{{"cmd": "subscribe", "fingerprint": "{}", "chunk": 0}}"#,
            fp().to_hex()
        ))
        .expect("valid JSON");
        let err = Request::decode(&msg).expect_err("zero chunk");
        assert!(err.0.contains("`chunk` must be non-zero"), "{err}");
    }

    #[test]
    fn request_id_decodes_numbers_strings_and_absence() {
        let tagged = Json::parse(r#"{"cmd":"status","id":7}"#).expect("json");
        assert_eq!(request_id(&tagged).expect("decodes"), Some(7));
        // Full-width ids travel as decimal strings, like seeds.
        let wide = Json::parse(&format!(r#"{{"id":"{}"}}"#, u64::MAX)).expect("json");
        assert_eq!(request_id(&wide).expect("decodes"), Some(u64::MAX));
        let untagged = Json::parse(r#"{"cmd":"status"}"#).expect("json");
        assert_eq!(request_id(&untagged).expect("decodes"), None);
        let bad = Json::parse(r#"{"id":-3}"#).expect("json");
        assert!(request_id(&bad).is_err());
    }

    #[test]
    fn v2_frames_have_the_documented_shape() {
        let reply = frame_reply(4, vec![("version", 2u64.into())]);
        assert_eq!(reply.get("frame").and_then(Json::as_str), Some("reply"));
        assert_eq!(reply.get("id").and_then(Json::as_u64), Some(4));
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(reply.get("version").and_then(Json::as_u64), Some(2));

        let solutions = vec![vec![true, false], vec![false, true]];
        let chunk = frame_chunk(4, 1, &solutions);
        assert_eq!(chunk.get("frame").and_then(Json::as_str), Some("chunk"));
        assert_eq!(chunk.get("seq").and_then(Json::as_u64), Some(1));
        let encoded = match chunk.get("solutions") {
            Some(Json::Arr(items)) => items
                .iter()
                .filter_map(Json::as_str)
                .map(str::to_string)
                .collect::<Vec<_>>(),
            other => panic!("solutions not an array: {other:?}"),
        };
        assert_eq!(encoded, vec!["10", "01"]);

        let done = frame_done(4, vec![("exhausted", false.into())]);
        assert_eq!(done.get("frame").and_then(Json::as_str), Some("done"));
        assert_eq!(done.get("ok").and_then(Json::as_bool), Some(true));

        let pushed = frame_pushed(9, 0, &solutions);
        assert_eq!(pushed.get("frame").and_then(Json::as_str), Some("pushed"));
        assert_eq!(pushed.get("sub").and_then(Json::as_u64), Some(9));

        let err = frame_error(Some(4), ErrorCode::Shutdown, "stopping");
        assert_eq!(err.get("frame").and_then(Json::as_str), Some("error"));
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(err.get("code").and_then(Json::as_str), Some("shutdown"));
        let anon = frame_error(None, ErrorCode::BadJson, "not json");
        assert_eq!(anon.get("id"), Some(&Json::Null));
    }

    #[test]
    fn request_trace_decodes_hex_absence_and_rejects_junk() {
        let traced = Json::parse(r#"{"cmd":"status","trace":"00ff"}"#).expect("json");
        assert_eq!(
            request_trace(&traced).expect("decodes"),
            Some(TraceId::from_u128(0xff))
        );
        // Full-width ids round-trip through their own hex form.
        let id = TraceId::from_u128(u128::MAX - 17);
        let wide = Json::parse(&format!(r#"{{"trace":"{}"}}"#, id.to_hex())).expect("json");
        assert_eq!(request_trace(&wide).expect("decodes"), Some(id));
        let untraced = Json::parse(r#"{"cmd":"status"}"#).expect("json");
        assert_eq!(request_trace(&untraced).expect("decodes"), None);
        for bad in [r#"{"trace":"zz"}"#, r#"{"trace":""}"#, r#"{"trace":12}"#] {
            let msg = Json::parse(bad).expect("json");
            assert!(request_trace(&msg).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn frame_traced_echoes_on_every_frame_kind_and_preserves_untraced() {
        let id = TraceId::from_u128(0xabc);
        let solutions = vec![vec![true, false]];
        for frame in [
            frame_reply(4, vec![("version", 2u64.into())]),
            frame_chunk(4, 0, &solutions),
            frame_done(4, vec![("exhausted", false.into())]),
            frame_error(Some(4), ErrorCode::BadRequest, "boom"),
        ] {
            let untraced = frame_traced(frame.clone(), None);
            assert_eq!(untraced, frame, "None must not change the frame");
            assert!(untraced.get("trace").is_none());
            let traced = frame_traced(frame, Some(id));
            assert_eq!(
                traced.get("trace").and_then(Json::as_str),
                Some(id.to_hex().as_str())
            );
        }
    }

    #[test]
    fn error_codes_are_kebab_case_and_distinct() {
        let codes = [
            ErrorCode::BadJson,
            ErrorCode::BadRequest,
            ErrorCode::EngineUnknown,
            ErrorCode::NotLoaded,
            ErrorCode::PathLoadDisabled,
            ErrorCode::Io,
            ErrorCode::TransformFailed,
            ErrorCode::FingerprintCollision,
            ErrorCode::Shutdown,
            ErrorCode::NoBackend,
            ErrorCode::BackendLost,
        ];
        let mut seen = std::collections::HashSet::new();
        for code in codes {
            let s = code.as_str();
            assert!(seen.insert(s), "duplicate code {s}");
            assert!(
                s.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{s} must be kebab-case"
            );
            assert_eq!(code.metric_name(), format!("serve.errors.{s}"));
        }
    }
}
