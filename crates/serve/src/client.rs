//! A blocking client for the daemon's wire protocol, v1 and v2.
//!
//! A fresh [`Client`] speaks **v1**: one in-flight request at a time —
//! write a request line, read the response line. Calling [`Client::hello`]
//! upgrades the connection to **v2** (tagged frames): the same one-call
//! methods keep working unchanged, and the pipelined API opens up —
//! [`Client::sample_start`] / [`Client::sample_next`] multiplex several
//! chunked `SAMPLE` streams over one connection, and
//! [`Client::subscribe`] / [`Client::sub_next`] join push feeds with
//! automatic credit replenishment. The client is what the end-to-end
//! tests and the `repro serve-bench` harness drive the daemon with, and
//! doubles as the reference implementation of the protocol's client side.

use crate::json::{Json, JsonError};
use crate::proto::{
    decode_solution, decode_stats, encode_u64_exact, request_id, LoadSource, Request, SampleParams,
    SubscribeParams, PROTOCOL_V2,
};
use htsat_cnf::Fingerprint;
use htsat_obs::{TraceId, TraceReport};
use htsat_runtime::StreamStats;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Errors a client call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or a server hang-up).
    Io(std::io::Error),
    /// The configured read timeout elapsed with no complete reply line.
    /// Any partially received line is retained — the next read resumes it —
    /// and `pending` lists the request ids still awaiting a terminal frame
    /// (empty on a v1 connection, where requests are not tagged).
    Timeout {
        /// Request ids in flight when the timeout fired, ascending.
        pending: Vec<u64>,
    },
    /// The server's bytes were not a valid protocol message.
    Protocol(String),
    /// The server answered `ok:false` with this message.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Timeout { pending } if pending.is_empty() => {
                write!(f, "timed out waiting for the server")
            }
            ClientError::Timeout { pending } => {
                let ids: Vec<String> = pending.iter().map(u64::to_string).collect();
                write!(
                    f,
                    "timed out waiting for the server (pending requests: {})",
                    ids.join(", ")
                )
            }
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<JsonError> for ClientError {
    fn from(e: JsonError) -> Self {
        ClientError::Protocol(e.to_string())
    }
}

/// How [`Client::connect_with`] establishes the TCP connection.
///
/// `ECONNREFUSED` gets special treatment because it is the signature of
/// the daemon-startup race: the process exists but has not reached `bind`
/// yet. Those attempts are retried with exponential backoff up to
/// `refused_retries` times; every other error (timeout, unreachable,
/// resolution failure) fails immediately — retrying would not fix it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectOptions {
    /// Per-attempt connect timeout; `None` uses the OS default.
    pub connect_timeout: Option<Duration>,
    /// How many times to retry after `ECONNREFUSED` (0 = fail fast).
    pub refused_retries: u32,
    /// Sleep before the first retry; doubles per retry.
    pub initial_backoff: Duration,
    /// Upper bound of the per-retry sleep.
    pub max_backoff: Duration,
}

impl Default for ConnectOptions {
    /// 5 s per-attempt timeout; 5 refused retries backing off
    /// 20 ms → 40 → 80 → 160 → 320 (≈ 620 ms of patience total).
    fn default() -> Self {
        ConnectOptions {
            connect_timeout: Some(Duration::from_secs(5)),
            refused_retries: 5,
            initial_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_millis(500),
        }
    }
}

/// The reply to a successful `LOAD`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReply {
    /// Canonical fingerprint — with the engine, the key for subsequent
    /// `SAMPLE`s.
    pub fingerprint: Fingerprint,
    /// Canonical name of the engine the formula was prepared for.
    pub engine: String,
    /// Whether the (formula, engine) pair was already resident (no
    /// re-preparation).
    pub cached: bool,
    /// Variable count of the parsed CNF.
    pub vars: usize,
    /// Clause count of the parsed CNF.
    pub clauses: usize,
}

/// The reply to a successful `SAMPLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleReply {
    /// Unique satisfying assignments, in stream order.
    pub solutions: Vec<Vec<bool>>,
    /// The request's stream statistics.
    pub stats: StreamStats,
    /// Server-side wall-clock of the stream, in milliseconds.
    pub elapsed_ms: f64,
    /// Whether the stream hit its stale limit (solution space exhausted).
    pub exhausted: bool,
}

/// The terminal `done` frame of a v2 chunked `SAMPLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleDone {
    /// The request's stream statistics.
    pub stats: StreamStats,
    /// Server-side wall-clock of the stream, in milliseconds.
    pub elapsed_ms: f64,
    /// Whether the stream hit its stale limit (solution space exhausted).
    pub exhausted: bool,
    /// `chunk` frames the stream produced before this `done`.
    pub chunks: u64,
}

/// One event of a pipelined v2 `SAMPLE` stream.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleEvent {
    /// An incremental batch of unique solutions, in stream order.
    Batch(Vec<Vec<bool>>),
    /// The terminal frame: the stream is complete.
    Done(SampleDone),
}

/// One event of a v2 subscription feed.
#[derive(Debug, Clone, PartialEq)]
pub enum SubEvent {
    /// A fanned-out batch. `seq` is the feed-global batch number: a gap
    /// means this subscriber was stalled (out of credit or backed up)
    /// while the feed advanced.
    Batch {
        /// Feed-global batch sequence number.
        seq: u64,
        /// The batch's unique solutions.
        solutions: Vec<Vec<bool>>,
    },
    /// The feed ended (trajectory exhausted): per-seat delivery counts and
    /// the shared stream's statistics.
    Done {
        /// Batches delivered to this subscriber.
        delivered: u64,
        /// Batches this subscriber missed while stalled.
        stalls: u64,
        /// The shared stream's statistics.
        stats: StreamStats,
    },
}

/// Per-subscription client-side credit accounting for automatic
/// replenishment.
struct SubCredit {
    /// Credit level to top back up to.
    target: u64,
    /// Frames the server may still push before the next top-up.
    remaining: u64,
}

/// Which frames a read loop is waiting for.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Want {
    /// Frames tagged with this request id.
    Req(u64),
    /// Frames addressed to this subscription.
    Sub(u64),
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Negotiated protocol version (1 until [`Client::hello`] succeeds).
    version: u64,
    next_id: u64,
    /// Partially received line, preserved across read timeouts.
    line_buf: Vec<u8>,
    /// Request ids awaiting their terminal frame.
    pending: BTreeSet<u64>,
    /// Frames read while waiting for a different request id.
    routed_req: HashMap<u64, VecDeque<Json>>,
    /// Frames read while waiting for a different subscription.
    routed_sub: HashMap<u64, VecDeque<Json>>,
    /// Live subscriptions and their credit accounting.
    subs: HashMap<u64, SubCredit>,
    /// Automatic `CREDIT` request ids, mapped to their subscription so a
    /// rejection can be attributed (and ignored once the feed has ended).
    auto_credit: HashMap<u64, u64>,
    /// Trace id stamped on every outgoing request (see
    /// [`Client::set_trace`]); `None` sends untraced requests.
    trace_id: Option<TraceId>,
}

impl Client {
    /// Connects to a daemon (protocol v1 until [`Client::hello`]).
    ///
    /// # Errors
    ///
    /// Returns the connect error.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        Client::connect_with(addr, &ConnectOptions::default())
    }

    /// Connects with an explicit per-attempt timeout and a bounded
    /// retry-with-backoff on `ECONNREFUSED` (see [`ConnectOptions`]) — the
    /// refusal window between a daemon's spawn and its `bind` no longer
    /// fails the first client that races it.
    ///
    /// # Errors
    ///
    /// Returns the last attempt's connect error once the retry budget is
    /// spent, or immediately for errors retrying cannot fix (unresolvable
    /// address, unreachable network).
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        options: &ConnectOptions,
    ) -> Result<Client, ClientError> {
        let addrs: Vec<std::net::SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(ClientError::Io(std::io::Error::new(
                ErrorKind::InvalidInput,
                "address resolved to no socket addresses",
            )));
        }
        let mut backoff = options.initial_backoff;
        let mut attempt = 0;
        let stream = loop {
            attempt += 1;
            // Try every resolved address before declaring the attempt
            // failed (the usual multi-address case is localhost v4+v6).
            let mut last_err: Option<std::io::Error> = None;
            let mut refused = false;
            let connected = addrs.iter().find_map(|sock_addr| {
                let result = match options.connect_timeout {
                    Some(timeout) => TcpStream::connect_timeout(sock_addr, timeout),
                    None => TcpStream::connect(sock_addr),
                };
                match result {
                    Ok(stream) => Some(stream),
                    Err(e) => {
                        refused |= e.kind() == ErrorKind::ConnectionRefused;
                        last_err = Some(e);
                        None
                    }
                }
            });
            match connected {
                Some(stream) => break stream,
                None => {
                    let err = last_err.expect("at least one address was tried");
                    // Only a refusal is the retryable startup race; other
                    // errors (unreachable, timeout) fail fast.
                    if !refused || attempt > options.refused_retries {
                        return Err(ClientError::Io(err));
                    }
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(options.max_backoff);
                }
            }
        };
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            version: 1,
            next_id: 0,
            line_buf: Vec::new(),
            pending: BTreeSet::new(),
            routed_req: HashMap::new(),
            routed_sub: HashMap::new(),
            subs: HashMap::new(),
            auto_credit: HashMap::new(),
            trace_id: None,
        })
    }

    /// Stamps (or stops stamping) a trace id on every subsequent request.
    /// A traced request always records a span timeline server-side —
    /// regardless of the daemon's sampling knob — and, on a v2 connection,
    /// every one of its frames echoes the id back in a `"trace"` key.
    /// Retrieve the recorded timelines with [`Client::trace`].
    pub fn set_trace(&mut self, trace: Option<TraceId>) {
        self.trace_id = trace;
    }

    /// Appends the configured `"trace"` context to an outgoing request
    /// object (no-op when tracing is off).
    fn stamp_trace(&self, msg: &mut Json) {
        if let (Some(trace), Json::Obj(pairs)) = (self.trace_id, msg) {
            pairs.push(("trace".to_string(), Json::Str(trace.to_hex())));
        }
    }

    /// Sets (or clears) the read timeout. With a timeout set, a read that
    /// sees no complete reply line in time fails with
    /// [`ClientError::Timeout`] — and the connection stays usable: a
    /// partially received line is resumed by the next read.
    ///
    /// # Errors
    ///
    /// Propagates the socket option error.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Negotiates protocol v2. After this succeeds, every subsequent call
    /// travels as tagged frames and the pipelined APIs
    /// ([`Client::sample_start`], [`Client::subscribe`]) become available.
    /// Returns the negotiated version.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the daemon does not speak v2.
    pub fn hello(&mut self) -> Result<u64, ClientError> {
        let reply = self.call_v1(&Request::Hello {
            version: PROTOCOL_V2,
        })?;
        let version = reply
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("hello reply without version".to_string()))?;
        self.version = version;
        Ok(version)
    }

    /// The negotiated protocol version (1 before [`Client::hello`]).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    fn write_line(&mut self, mut line: String) -> Result<(), ClientError> {
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads the next complete line, preserving a partial one across
    /// timeouts.
    fn read_line(&mut self) -> Result<String, ClientError> {
        let eof = || {
            ClientError::Io(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        };
        match self.reader.read_until(b'\n', &mut self.line_buf) {
            Ok(0) => Err(eof()),
            Ok(_) => {
                if self.line_buf.last() == Some(&b'\n') {
                    let bytes = std::mem::take(&mut self.line_buf);
                    String::from_utf8(bytes)
                        .map_err(|_| ClientError::Protocol("reply is not valid UTF-8".to_string()))
                } else {
                    // Delimiter not found and no error: EOF mid-line.
                    Err(eof())
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Bytes read so far stay in `line_buf` for the retry.
                Err(ClientError::Timeout {
                    pending: self.pending.iter().copied().collect(),
                })
            }
            Err(e) => Err(ClientError::Io(e)),
        }
    }

    /// Reads frames until one addressed to `want` arrives, stashing frames
    /// of other requests/subscriptions for their own readers.
    fn next_frame(&mut self, want: Want) -> Result<Json, ClientError> {
        let stashed = match want {
            Want::Req(id) => self.routed_req.get_mut(&id).and_then(VecDeque::pop_front),
            Want::Sub(sub) => self.routed_sub.get_mut(&sub).and_then(VecDeque::pop_front),
        };
        if let Some(frame) = stashed {
            return Ok(frame);
        }
        loop {
            let line = self.read_line()?;
            let msg = Json::parse(line.trim_end())?;
            // An explicit `"id": null` error frame means the server could
            // not attribute one of our lines — a client bug; surface it.
            if msg.get("id") == Some(&Json::Null) {
                return Err(ClientError::Server(
                    msg.get("error")
                        .and_then(Json::as_str)
                        .unwrap_or("unattributable request line")
                        .to_string(),
                ));
            }
            let addr = match request_id(&msg).map_err(|e| ClientError::Protocol(e.to_string()))? {
                Some(id) => Want::Req(id),
                None => match msg.get("sub").and_then(Json::as_u64) {
                    Some(sub) => Want::Sub(sub),
                    None => {
                        return Err(ClientError::Protocol(
                            "frame without `id` or `sub`".to_string(),
                        ))
                    }
                },
            };
            // Terminal request frames retire their id from the pending set
            // the moment they are *received*, stash or not.
            if let Want::Req(id) = addr {
                if matches!(
                    msg.get("frame").and_then(Json::as_str),
                    Some("reply" | "done" | "error")
                ) {
                    self.pending.remove(&id);
                }
                // Replies to automatic CREDIT top-ups are swallowed here.
                // A rejection surfaces only while the subscription is still
                // believed live: a top-up that raced the feed's own end is
                // expected to bounce and carries no information.
                if let Some(sub) = self.auto_credit.remove(&id) {
                    if msg.get("ok").and_then(Json::as_bool) == Some(false)
                        && self.subs.contains_key(&sub)
                    {
                        return Err(ClientError::Server(
                            msg.get("error")
                                .and_then(Json::as_str)
                                .unwrap_or("credit top-up rejected")
                                .to_string(),
                        ));
                    }
                    continue;
                }
            }
            if addr == want {
                return Ok(msg);
            }
            match addr {
                Want::Req(id) => self.routed_req.entry(id).or_default().push_back(msg),
                Want::Sub(sub) => self.routed_sub.entry(sub).or_default().push_back(msg),
            }
        }
    }

    /// v1 lockstep exchange: one line out, one line in.
    fn call_v1(&mut self, request: &Request) -> Result<Json, ClientError> {
        let mut msg = request.encode();
        self.stamp_trace(&mut msg);
        self.write_line(msg.encode())?;
        let reply = self.read_line()?;
        let msg = Json::parse(reply.trim_end())?;
        match msg.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(msg),
            Some(false) => Err(ClientError::Server(
                msg.get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified server error")
                    .to_string(),
            )),
            None => Err(ClientError::Protocol("reply without `ok`".to_string())),
        }
    }

    /// Sends a request with a fresh tag and returns the id.
    fn send_tagged(&mut self, request: &Request) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        let mut msg = request.encode();
        if let Json::Obj(pairs) = &mut msg {
            pairs.push(("id".to_string(), encode_u64_exact(id)));
        }
        self.stamp_trace(&mut msg);
        self.write_line(msg.encode())?;
        self.pending.insert(id);
        Ok(id)
    }

    /// v2 unary exchange: tagged request out, terminal frame back (chunks,
    /// which only `SAMPLE` produces, are not expected here).
    fn call_v2(&mut self, request: &Request) -> Result<Json, ClientError> {
        let id = self.send_tagged(request)?;
        loop {
            let frame = self.next_frame(Want::Req(id))?;
            match frame.get("frame").and_then(Json::as_str) {
                Some("reply" | "done") => return Ok(frame),
                Some("error") => {
                    return Err(ClientError::Server(
                        frame
                            .get("error")
                            .and_then(Json::as_str)
                            .unwrap_or("unspecified server error")
                            .to_string(),
                    ))
                }
                _ => {} // stray chunk: skip to the terminal frame
            }
        }
    }

    /// Sends one request and reads its terminal response, returning the
    /// payload object of a successful reply. Works on both protocol
    /// versions (framing is handled internally).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for failure replies, [`ClientError::Io`] /
    /// [`ClientError::Timeout`] / [`ClientError::Protocol`] for transport
    /// and framing problems.
    pub fn call(&mut self, request: &Request) -> Result<Json, ClientError> {
        if self.version >= PROTOCOL_V2 {
            self.call_v2(request)
        } else {
            self.call_v1(request)
        }
    }

    /// Registers inline DIMACS text under an optional display name,
    /// prepared for the default (`"gd"`) engine.
    ///
    /// # Errors
    ///
    /// Parse and transform failures surface as [`ClientError::Server`].
    pub fn load_dimacs(
        &mut self,
        name: Option<&str>,
        dimacs: &str,
    ) -> Result<LoadReply, ClientError> {
        self.load(name, None, LoadSource::Inline(dimacs.to_string()))
    }

    /// Registers inline DIMACS text prepared for a specific engine
    /// (`"gd"`, `"walksat"`, `"unigen"`, `"cmsgen"`, `"quicksampler"` or
    /// `"diffsampler"`).
    ///
    /// # Errors
    ///
    /// Unknown engine names surface as [`ClientError::Server`].
    pub fn load_dimacs_engine(
        &mut self,
        name: Option<&str>,
        engine: &str,
        dimacs: &str,
    ) -> Result<LoadReply, ClientError> {
        self.load(name, Some(engine), LoadSource::Inline(dimacs.to_string()))
    }

    /// Registers a CNF from a path readable by the *server* process.
    ///
    /// # Errors
    ///
    /// Fails unless the server was started with path loads enabled.
    pub fn load_path(&mut self, name: Option<&str>, path: &str) -> Result<LoadReply, ClientError> {
        self.load(name, None, LoadSource::Path(path.to_string()))
    }

    fn load(
        &mut self,
        name: Option<&str>,
        engine: Option<&str>,
        source: LoadSource,
    ) -> Result<LoadReply, ClientError> {
        let reply = self.call(&Request::Load {
            name: name.map(str::to_string),
            engine: engine.map(str::to_string),
            source,
        })?;
        let fingerprint = reply
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or_else(|| ClientError::Protocol("load reply without fingerprint".to_string()))?
            .parse()
            .map_err(|e| ClientError::Protocol(format!("bad fingerprint: {e}")))?;
        let field = |key: &str| reply.get(key).and_then(Json::as_u64).unwrap_or_default() as usize;
        Ok(LoadReply {
            fingerprint,
            engine: reply
                .get("engine")
                .and_then(Json::as_str)
                .unwrap_or(crate::proto::DEFAULT_ENGINE)
                .to_string(),
            cached: reply.get("cached").and_then(Json::as_bool).unwrap_or(false),
            vars: field("vars"),
            clauses: field("clauses"),
        })
    }

    /// Streams unique solutions of a loaded formula, blocking until the
    /// stream completes. On a v2 connection the solutions arrive as
    /// incremental chunks and are reassembled here — the result is
    /// bit-identical to the v1 single-response form.
    ///
    /// # Errors
    ///
    /// Unknown fingerprints and invalid parameters surface as
    /// [`ClientError::Server`].
    pub fn sample(&mut self, params: &SampleParams) -> Result<SampleReply, ClientError> {
        if self.version >= PROTOCOL_V2 {
            let id = self.sample_start(params)?;
            let mut solutions = Vec::new();
            loop {
                match self.sample_next(id)? {
                    SampleEvent::Batch(batch) => solutions.extend(batch),
                    SampleEvent::Done(done) => {
                        return Ok(SampleReply {
                            solutions,
                            stats: done.stats,
                            elapsed_ms: done.elapsed_ms,
                            exhausted: done.exhausted,
                        })
                    }
                }
            }
        }
        let reply = self.call_v1(&Request::Sample(params.clone()))?;
        let solutions = decode_solution_array(&reply)?;
        let stats = reply.get("stats").map(decode_stats).unwrap_or_default();
        Ok(SampleReply {
            solutions,
            stats,
            elapsed_ms: reply
                .get("elapsed_ms")
                .and_then(Json::as_f64)
                .unwrap_or_default(),
            exhausted: reply
                .get("exhausted")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        })
    }

    /// Starts a pipelined chunked `SAMPLE` (v2 only) and returns its
    /// request id. Several streams may be in flight at once; interleave
    /// [`Client::sample_next`] calls to drain them.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] before [`Client::hello`]; transport
    /// failures.
    pub fn sample_start(&mut self, params: &SampleParams) -> Result<u64, ClientError> {
        self.require_v2()?;
        self.send_tagged(&Request::Sample(params.clone()))
    }

    /// Reads the next event of a pipelined `SAMPLE` stream: a solution
    /// batch, or the terminal [`SampleDone`].
    ///
    /// # Errors
    ///
    /// A terminal server error frame (e.g. code `shutdown` when the daemon
    /// stops mid-stream) surfaces as [`ClientError::Server`].
    pub fn sample_next(&mut self, id: u64) -> Result<SampleEvent, ClientError> {
        let frame = self.next_frame(Want::Req(id))?;
        match frame.get("frame").and_then(Json::as_str) {
            Some("chunk") => Ok(SampleEvent::Batch(decode_solution_array(&frame)?)),
            Some("done") => Ok(SampleEvent::Done(SampleDone {
                stats: frame.get("stats").map(decode_stats).unwrap_or_default(),
                elapsed_ms: frame
                    .get("elapsed_ms")
                    .and_then(Json::as_f64)
                    .unwrap_or_default(),
                exhausted: frame
                    .get("exhausted")
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
                chunks: frame.get("chunks").and_then(Json::as_u64).unwrap_or(0),
            })),
            Some("error") => Err(ClientError::Server(
                frame
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified server error")
                    .to_string(),
            )),
            other => Err(ClientError::Protocol(format!(
                "unexpected frame kind {other:?} for sample {id}"
            ))),
        }
    }

    /// Runs one chunked `SAMPLE` as an iterator of solution batches (v2
    /// only). For pipelining several streams, use [`Client::sample_start`]
    /// / [`Client::sample_next`] directly.
    ///
    /// # Errors
    ///
    /// As for [`Client::sample_start`].
    pub fn sample_stream(
        &mut self,
        params: &SampleParams,
    ) -> Result<SampleStream<'_>, ClientError> {
        let id = self.sample_start(params)?;
        Ok(SampleStream {
            client: self,
            id,
            done: None,
            failed: false,
        })
    }

    /// Joins (or starts) a push feed (v2 only) and returns the
    /// subscription id. The client tracks credit locally and tops it up
    /// automatically inside [`Client::sub_next`].
    ///
    /// # Errors
    ///
    /// Validation failures (formula not loaded, caps) surface as
    /// [`ClientError::Server`].
    pub fn subscribe(&mut self, params: &SubscribeParams) -> Result<u64, ClientError> {
        self.require_v2()?;
        let reply = self.call_v2(&Request::Subscribe(params.clone()))?;
        let sub = reply
            .get("sub")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("subscribe reply without sub".to_string()))?;
        self.subs.insert(
            sub,
            SubCredit {
                target: params.credit,
                remaining: params.credit,
            },
        );
        Ok(sub)
    }

    /// Reads the next event of a subscription, replenishing credit when it
    /// runs low (at or below half the initial grant, topped back up to the
    /// full grant). A subscription opened with zero credit is never topped
    /// up automatically — grant explicitly with [`Client::grant_credit`].
    ///
    /// # Errors
    ///
    /// A terminal feed error (e.g. code `shutdown`) surfaces as
    /// [`ClientError::Server`]; the subscription is closed either way.
    pub fn sub_next(&mut self, sub: u64) -> Result<SubEvent, ClientError> {
        let top_up = match self.subs.get(&sub) {
            Some(credit) if credit.target > 0 && credit.remaining <= credit.target / 2 => {
                Some(credit.target - credit.remaining)
            }
            Some(_) => None,
            None => {
                return Err(ClientError::Protocol(format!(
                    "unknown subscription `{sub}`"
                )))
            }
        };
        // While a backlog of already-received frames is queued locally there
        // is no point asking for more — the feed may even have ended inside
        // that backlog.
        let draining_stash = self
            .routed_sub
            .get(&sub)
            .is_some_and(|queue| !queue.is_empty());
        if let Some(n) = top_up.filter(|n| *n > 0 && !draining_stash) {
            let id = self.send_tagged(&Request::Credit { sub, n })?;
            self.auto_credit.insert(id, sub);
            if let Some(credit) = self.subs.get_mut(&sub) {
                credit.remaining += n;
            }
        }
        let frame = self.next_frame(Want::Sub(sub))?;
        match frame.get("frame").and_then(Json::as_str) {
            Some("pushed") => {
                if let Some(credit) = self.subs.get_mut(&sub) {
                    credit.remaining = credit.remaining.saturating_sub(1);
                }
                Ok(SubEvent::Batch {
                    seq: frame.get("seq").and_then(Json::as_u64).unwrap_or(0),
                    solutions: decode_solution_array(&frame)?,
                })
            }
            Some("done") => {
                self.subs.remove(&sub);
                Ok(SubEvent::Done {
                    delivered: frame
                        .get("sub_delivered")
                        .and_then(Json::as_u64)
                        .unwrap_or(0),
                    stalls: frame.get("sub_stalls").and_then(Json::as_u64).unwrap_or(0),
                    stats: frame.get("stats").map(decode_stats).unwrap_or_default(),
                })
            }
            Some("error") => {
                self.subs.remove(&sub);
                Err(ClientError::Server(
                    frame
                        .get("error")
                        .and_then(Json::as_str)
                        .unwrap_or("feed closed")
                        .to_string(),
                ))
            }
            other => Err(ClientError::Protocol(format!(
                "unexpected frame kind {other:?} for subscription {sub}"
            ))),
        }
    }

    /// Explicitly grants a subscription `n` more pushed frames (the manual
    /// alternative to [`Client::sub_next`]'s automatic top-up). Returns
    /// the server-side credit total.
    ///
    /// # Errors
    ///
    /// Unknown subscription ids surface as [`ClientError::Server`].
    pub fn grant_credit(&mut self, sub: u64, n: u64) -> Result<u64, ClientError> {
        self.require_v2()?;
        let reply = self.call_v2(&Request::Credit { sub, n })?;
        if let Some(credit) = self.subs.get_mut(&sub) {
            credit.remaining += n;
        }
        Ok(reply.get("credit").and_then(Json::as_u64).unwrap_or(0))
    }

    /// Leaves a feed and discards any still-queued pushed frames for it.
    ///
    /// # Errors
    ///
    /// Unknown subscription ids surface as [`ClientError::Server`].
    pub fn unsubscribe(&mut self, sub: u64) -> Result<(), ClientError> {
        self.require_v2()?;
        self.subs.remove(&sub);
        let result = self.call_v2(&Request::Unsubscribe { sub });
        // Pushed frames that raced the unsubscribe are stale either way.
        self.routed_sub.remove(&sub);
        result.map(|_| ())
    }

    fn require_v2(&self) -> Result<(), ClientError> {
        if self.version >= PROTOCOL_V2 {
            Ok(())
        } else {
            Err(ClientError::Protocol(
                "pipelined APIs need protocol v2: call hello() first".to_string(),
            ))
        }
    }

    /// Fetches the raw status payload (uptime, registry contents, counters).
    ///
    /// # Errors
    ///
    /// Transport failures only; `status` itself cannot fail server-side.
    pub fn status(&mut self) -> Result<Json, ClientError> {
        self.call(&Request::Status)
    }

    /// Fetches the daemon's metrics snapshot (the `STATS` verb), parsed
    /// into the typed [`htsat_obs::Snapshot`].
    ///
    /// # Errors
    ///
    /// Transport failures, or [`ClientError::Protocol`] when the reply is
    /// not a schema-`htsat-stats-v1` snapshot.
    pub fn stats(&mut self) -> Result<htsat_obs::Snapshot, ClientError> {
        let reply = self.call(&Request::Stats { reset: false })?;
        htsat_obs::Snapshot::from_json(&reply).map_err(ClientError::Protocol)
    }

    /// Fetches the metrics snapshot and resets the daemon's counters and
    /// histograms in the same request (`STATS reset`). The returned
    /// snapshot reports the totals *before* the reset; gauges survive.
    ///
    /// # Errors
    ///
    /// As for [`Client::stats`].
    pub fn stats_reset(&mut self) -> Result<htsat_obs::Snapshot, ClientError> {
        let reply = self.call(&Request::Stats { reset: true })?;
        htsat_obs::Snapshot::from_json(&reply).map_err(ClientError::Protocol)
    }

    /// Fetches recent request timelines from the daemon's trace ring (the
    /// `TRACE` verb), newest first, parsed into the typed
    /// [`htsat_obs::TraceReport`]. `last` caps the count (`None` = the
    /// whole ring), `verb` keeps only that wire verb's timelines, and
    /// `min_ms` keeps only requests at least that slow.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`ClientError::Protocol`] when the reply is
    /// not a schema-`htsat-trace-v1` report.
    pub fn trace(
        &mut self,
        last: Option<u64>,
        verb: Option<&str>,
        min_ms: Option<u64>,
    ) -> Result<TraceReport, ClientError> {
        let reply = self.call(&Request::Trace {
            last,
            verb: verb.map(str::to_string),
            min_ms,
        })?;
        TraceReport::from_json(&reply).map_err(ClientError::Protocol)
    }

    /// Drops every engine's entry of one fingerprint; returns whether
    /// anything was resident.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn evict(&mut self, fingerprint: Fingerprint) -> Result<bool, ClientError> {
        let reply = self.call(&Request::Evict {
            fingerprint,
            engine: None,
        })?;
        Ok(reply
            .get("evicted")
            .and_then(Json::as_bool)
            .unwrap_or(false))
    }

    /// Drops one (fingerprint, engine) entry; returns whether it was
    /// resident.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn evict_engine(
        &mut self,
        fingerprint: Fingerprint,
        engine: &str,
    ) -> Result<bool, ClientError> {
        let reply = self.call(&Request::Evict {
            fingerprint,
            engine: Some(engine.to_string()),
        })?;
        Ok(reply
            .get("evicted")
            .and_then(Json::as_bool)
            .unwrap_or(false))
    }

    /// Asks the daemon to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.call(&Request::Shutdown)?;
        Ok(())
    }
}

/// Decodes a frame/reply's `solutions` array of bit strings.
fn decode_solution_array(msg: &Json) -> Result<Vec<Vec<bool>>, ClientError> {
    msg.get("solutions")
        .and_then(Json::as_arr)
        .ok_or_else(|| ClientError::Protocol("message without solutions".to_string()))?
        .iter()
        .map(|s| {
            s.as_str()
                .ok_or_else(|| ClientError::Protocol("non-string solution".to_string()))
                .and_then(|text| {
                    decode_solution(text).map_err(|e| ClientError::Protocol(e.to_string()))
                })
        })
        .collect()
}

/// Iterator over one chunked `SAMPLE` stream's batches (see
/// [`Client::sample_stream`]). After the iterator returns `None`, the
/// terminal frame is available from [`SampleStream::done`].
pub struct SampleStream<'a> {
    client: &'a mut Client,
    id: u64,
    done: Option<SampleDone>,
    failed: bool,
}

impl SampleStream<'_> {
    /// The stream's request id (for correlating with server logs).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The terminal frame, once the iterator has returned `None`.
    #[must_use]
    pub fn done(&self) -> Option<&SampleDone> {
        self.done.as_ref()
    }
}

impl Iterator for SampleStream<'_> {
    type Item = Result<Vec<Vec<bool>>, ClientError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done.is_some() || self.failed {
            return None;
        }
        match self.client.sample_next(self.id) {
            Ok(SampleEvent::Batch(batch)) => Some(Ok(batch)),
            Ok(SampleEvent::Done(done)) => {
                self.done = Some(done);
                None
            }
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}
