//! A small blocking client for the daemon's wire protocol.
//!
//! One TCP connection, one in-flight request at a time: write a request
//! line, read the response line. The client is what the end-to-end tests
//! and the `repro serve-bench` harness drive the daemon with, and doubles
//! as the reference implementation of the protocol's client side.

use crate::json::{Json, JsonError};
use crate::proto::{decode_solution, decode_stats, LoadSource, Request, SampleParams};
use htsat_cnf::Fingerprint;
use htsat_runtime::StreamStats;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Errors a client call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or a server hang-up).
    Io(std::io::Error),
    /// The server's bytes were not a valid protocol message.
    Protocol(String),
    /// The server answered `ok:false` with this message.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<JsonError> for ClientError {
    fn from(e: JsonError) -> Self {
        ClientError::Protocol(e.to_string())
    }
}

/// The reply to a successful `LOAD`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReply {
    /// Canonical fingerprint — with the engine, the key for subsequent
    /// `SAMPLE`s.
    pub fingerprint: Fingerprint,
    /// Canonical name of the engine the formula was prepared for.
    pub engine: String,
    /// Whether the (formula, engine) pair was already resident (no
    /// re-preparation).
    pub cached: bool,
    /// Variable count of the parsed CNF.
    pub vars: usize,
    /// Clause count of the parsed CNF.
    pub clauses: usize,
}

/// The reply to a successful `SAMPLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleReply {
    /// Unique satisfying assignments, in stream order.
    pub solutions: Vec<Vec<bool>>,
    /// The request's stream statistics.
    pub stats: StreamStats,
    /// Server-side wall-clock of the stream, in milliseconds.
    pub elapsed_ms: f64,
    /// Whether the stream hit its stale limit (solution space exhausted).
    pub exhausted: bool,
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Returns the connect error.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and reads its response, returning the payload
    /// object of an `ok:true` reply.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for `ok:false` replies, [`ClientError::Io`] /
    /// [`ClientError::Protocol`] for transport and framing problems.
    pub fn call(&mut self, request: &Request) -> Result<Json, ClientError> {
        let mut line = request.encode().encode();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let msg = Json::parse(reply.trim_end())?;
        match msg.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(msg),
            Some(false) => Err(ClientError::Server(
                msg.get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified server error")
                    .to_string(),
            )),
            None => Err(ClientError::Protocol("reply without `ok`".to_string())),
        }
    }

    /// Registers inline DIMACS text under an optional display name,
    /// prepared for the default (`"gd"`) engine.
    ///
    /// # Errors
    ///
    /// Parse and transform failures surface as [`ClientError::Server`].
    pub fn load_dimacs(
        &mut self,
        name: Option<&str>,
        dimacs: &str,
    ) -> Result<LoadReply, ClientError> {
        self.load(name, None, LoadSource::Inline(dimacs.to_string()))
    }

    /// Registers inline DIMACS text prepared for a specific engine
    /// (`"gd"`, `"walksat"`, `"unigen"`, `"cmsgen"`, `"quicksampler"` or
    /// `"diffsampler"`).
    ///
    /// # Errors
    ///
    /// Unknown engine names surface as [`ClientError::Server`].
    pub fn load_dimacs_engine(
        &mut self,
        name: Option<&str>,
        engine: &str,
        dimacs: &str,
    ) -> Result<LoadReply, ClientError> {
        self.load(name, Some(engine), LoadSource::Inline(dimacs.to_string()))
    }

    /// Registers a CNF from a path readable by the *server* process.
    ///
    /// # Errors
    ///
    /// Fails unless the server was started with path loads enabled.
    pub fn load_path(&mut self, name: Option<&str>, path: &str) -> Result<LoadReply, ClientError> {
        self.load(name, None, LoadSource::Path(path.to_string()))
    }

    fn load(
        &mut self,
        name: Option<&str>,
        engine: Option<&str>,
        source: LoadSource,
    ) -> Result<LoadReply, ClientError> {
        let reply = self.call(&Request::Load {
            name: name.map(str::to_string),
            engine: engine.map(str::to_string),
            source,
        })?;
        let fingerprint = reply
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or_else(|| ClientError::Protocol("load reply without fingerprint".to_string()))?
            .parse()
            .map_err(|e| ClientError::Protocol(format!("bad fingerprint: {e}")))?;
        let field = |key: &str| reply.get(key).and_then(Json::as_u64).unwrap_or_default() as usize;
        Ok(LoadReply {
            fingerprint,
            engine: reply
                .get("engine")
                .and_then(Json::as_str)
                .unwrap_or(crate::proto::DEFAULT_ENGINE)
                .to_string(),
            cached: reply.get("cached").and_then(Json::as_bool).unwrap_or(false),
            vars: field("vars"),
            clauses: field("clauses"),
        })
    }

    /// Streams unique solutions of a loaded formula.
    ///
    /// # Errors
    ///
    /// Unknown fingerprints and invalid parameters surface as
    /// [`ClientError::Server`].
    pub fn sample(&mut self, params: &SampleParams) -> Result<SampleReply, ClientError> {
        let reply = self.call(&Request::Sample(params.clone()))?;
        let solutions = reply
            .get("solutions")
            .and_then(Json::as_arr)
            .ok_or_else(|| ClientError::Protocol("sample reply without solutions".to_string()))?
            .iter()
            .map(|s| {
                s.as_str()
                    .ok_or_else(|| ClientError::Protocol("non-string solution".to_string()))
                    .and_then(|text| {
                        decode_solution(text).map_err(|e| ClientError::Protocol(e.to_string()))
                    })
            })
            .collect::<Result<Vec<Vec<bool>>, ClientError>>()?;
        let stats = reply.get("stats").map(decode_stats).unwrap_or_default();
        Ok(SampleReply {
            solutions,
            stats,
            elapsed_ms: reply
                .get("elapsed_ms")
                .and_then(Json::as_f64)
                .unwrap_or_default(),
            exhausted: reply
                .get("exhausted")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        })
    }

    /// Fetches the raw status payload (uptime, registry contents, counters).
    ///
    /// # Errors
    ///
    /// Transport failures only; `status` itself cannot fail server-side.
    pub fn status(&mut self) -> Result<Json, ClientError> {
        self.call(&Request::Status)
    }

    /// Fetches the daemon's metrics snapshot (the `STATS` verb), parsed
    /// into the typed [`htsat_obs::Snapshot`].
    ///
    /// # Errors
    ///
    /// Transport failures, or [`ClientError::Protocol`] when the reply is
    /// not a schema-`htsat-stats-v1` snapshot.
    pub fn stats(&mut self) -> Result<htsat_obs::Snapshot, ClientError> {
        let reply = self.call(&Request::Stats { reset: false })?;
        htsat_obs::Snapshot::from_json(&reply).map_err(ClientError::Protocol)
    }

    /// Fetches the metrics snapshot and resets the daemon's counters and
    /// histograms in the same request (`STATS reset`). The returned
    /// snapshot reports the totals *before* the reset; gauges survive.
    ///
    /// # Errors
    ///
    /// As for [`Client::stats`].
    pub fn stats_reset(&mut self) -> Result<htsat_obs::Snapshot, ClientError> {
        let reply = self.call(&Request::Stats { reset: true })?;
        htsat_obs::Snapshot::from_json(&reply).map_err(ClientError::Protocol)
    }

    /// Drops every engine's entry of one fingerprint; returns whether
    /// anything was resident.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn evict(&mut self, fingerprint: Fingerprint) -> Result<bool, ClientError> {
        let reply = self.call(&Request::Evict {
            fingerprint,
            engine: None,
        })?;
        Ok(reply
            .get("evicted")
            .and_then(Json::as_bool)
            .unwrap_or(false))
    }

    /// Drops one (fingerprint, engine) entry; returns whether it was
    /// resident.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn evict_engine(
        &mut self,
        fingerprint: Fingerprint,
        engine: &str,
    ) -> Result<bool, ClientError> {
        let reply = self.call(&Request::Evict {
            fingerprint,
            engine: Some(engine.to_string()),
        })?;
        Ok(reply
            .get("evicted")
            .and_then(Json::as_bool)
            .unwrap_or(false))
    }

    /// Asks the daemon to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.call(&Request::Shutdown)?;
        Ok(())
    }
}
