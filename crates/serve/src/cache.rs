//! The persistent on-disk compile cache (`--cache-dir`).
//!
//! An in-memory LRU registry cannot be the millions-of-users story: every
//! daemon restart recompiles every formula. This module persists one
//! versioned JSON artifact per (formula fingerprint, engine) pair so a
//! restarted — or *different* — daemon pointed at the same directory skips
//! preparation entirely:
//!
//! * **Written through** on every fresh preparation
//!   (`prepare_with_cache`), atomically: the document goes to a unique
//!   temp file in the same directory and is `rename`d into place, so a
//!   concurrent reader (another daemon sharing the directory) only ever
//!   sees complete files.
//! * **Read back** on a registry miss (`CompileCache::load`) and on boot
//!   ([`CompileCache::scan`] + load, the warm start). For the `"gd"`
//!   engine the artifact carries the expensive CNF-to-circuit
//!   transformation (the serialized [`Netlist`], variable classes and
//!   stats); the warm path only re-runs the cheap mechanical kernel
//!   compilation ([`PreparedFormula::from_transformed`]). The baseline
//!   engines prepare from the CNF alone, so their artifacts store just the
//!   canonical DIMACS text — the win is not having to resend the formula.
//! * **Corruption tolerant**: a missing, truncated, version-mismatched,
//!   fingerprint-mismatched or structurally invalid file is a *miss*,
//!   never an error — the formula is simply recompiled (and the artifact
//!   rewritten). Nothing in this module panics on file content.
//!
//! The format is versioned with a `"format": "htsat-cache-v1"` header;
//! readers reject every other value, so the format can evolve by bumping
//! the string. Artifacts additionally store the [`TransformConfig`] they
//! were prepared under; a daemon configured differently treats them as
//! misses rather than serving artifacts of the wrong configuration.

use crate::json::Json;
use htsat_baselines::engine_by_name;
use htsat_cnf::{dimacs, Cnf, Fingerprint};
use htsat_core::{
    PreparedFormula, SampleEngine, TransformConfig, TransformError, TransformResult,
    TransformStats, VarClass,
};
use htsat_logic::{GateKind, Netlist, NodeId, NodeRef, OutputConstraint, VarId};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use std::{fs, io};

/// The artifact format version header. Bump on any incompatible change;
/// readers treat every other value as a miss.
pub const CACHE_FORMAT: &str = "htsat-cache-v1";

/// A successfully deserialized artifact: the prepared engine plus the
/// display name it was stored under.
pub(crate) struct CachedEngine {
    /// The prepared engine, ready to mint sessions.
    pub engine: Box<dyn SampleEngine>,
    /// Display name recorded at store time (`LOAD` name or fingerprint).
    pub name: String,
}

/// A directory of versioned compile artifacts keyed by (fingerprint,
/// engine).
#[derive(Debug)]
pub struct CompileCache {
    dir: PathBuf,
    /// Distinguishes concurrent writers' temp files within one process.
    temp_seq: AtomicU64,
}

impl CompileCache {
    /// Opens (creating if needed) the cache directory.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the directory cannot be created.
    pub fn open(dir: &Path) -> io::Result<CompileCache> {
        fs::create_dir_all(dir)?;
        Ok(CompileCache {
            dir: dir.to_path_buf(),
            temp_seq: AtomicU64::new(0),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn artifact_path(&self, fingerprint: &Fingerprint, engine_name: &str) -> PathBuf {
        self.dir
            .join(format!("{}-{engine_name}.json", fingerprint.to_hex()))
    }

    /// Atomically writes one artifact document: temp file in the same
    /// directory, then `rename` over the final path.
    fn write_atomic(&self, path: &Path, doc: &Json) -> io::Result<()> {
        let seq = self.temp_seq.fetch_add(1, Ordering::Relaxed);
        let mut temp = path.to_path_buf();
        temp.set_extension(format!("tmp.{}.{seq}", std::process::id()));
        let mut text = doc.encode();
        text.push('\n');
        let result = fs::write(&temp, text).and_then(|()| fs::rename(&temp, path));
        if result.is_err() {
            let _ = fs::remove_file(&temp);
        }
        result
    }

    /// Stores one artifact. `gd_artifact` carries the serialized
    /// transformation for the `"gd"` engine; baselines pass `None`.
    fn store(
        &self,
        fingerprint: &Fingerprint,
        engine_name: &str,
        name: &str,
        cnf: &Cnf,
        transform: &TransformConfig,
        gd_artifact: Option<Json>,
    ) -> io::Result<()> {
        let mut pairs = vec![
            ("format", CACHE_FORMAT.into()),
            ("fingerprint", fingerprint.to_hex().into()),
            ("engine", engine_name.into()),
            ("name", name.into()),
            ("transform", encode_transform_config(transform)),
            ("dimacs", dimacs::to_string(cnf).into()),
        ];
        if let Some(gd) = gd_artifact {
            pairs.push(("gd", gd));
        }
        self.write_atomic(
            &self.artifact_path(fingerprint, engine_name),
            &Json::obj(pairs),
        )
    }

    /// Loads the artifact of one (fingerprint, engine) pair prepared under
    /// `transform`, or `None` — a miss — when there is no usable artifact
    /// (absent, unreadable, corrupt, wrong version/fingerprint/config).
    pub(crate) fn load(
        &self,
        fingerprint: &Fingerprint,
        engine_name: &'static str,
        transform: &TransformConfig,
    ) -> Option<CachedEngine> {
        let path = self.artifact_path(fingerprint, engine_name);
        let text = fs::read_to_string(&path).ok()?;
        match decode_artifact(&text, fingerprint, engine_name, transform) {
            Ok(cached) => Some(cached),
            Err(reason) => {
                htsat_obs::warn!(
                    "cache artifact {} rejected ({reason}); treating as a miss",
                    path.display()
                );
                htsat_obs::counter!("serve.cache.rejects").inc();
                None
            }
        }
    }

    /// Enumerates the (fingerprint, engine) keys with an artifact on disk,
    /// skipping files whose *name* is not a cache key (their content is
    /// vetted later by `CompileCache::load`). This is the boot-time warm
    /// start's work list.
    pub fn scan(&self) -> Vec<(Fingerprint, &'static str)> {
        let mut keys = Vec::new();
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return keys;
        };
        for entry in entries.flatten() {
            let file_name = entry.file_name();
            let Some(stem) = file_name
                .to_str()
                .and_then(|name| name.strip_suffix(".json"))
            else {
                continue;
            };
            // `<32-hex-fingerprint>-<engine>.json`
            let Some((hex, engine)) = stem.split_once('-') else {
                continue;
            };
            let Ok(fingerprint) = hex.parse::<Fingerprint>() else {
                continue;
            };
            let Some(engine_name) = htsat_baselines::resolve_engine_name(engine) else {
                continue;
            };
            keys.push((fingerprint, engine_name));
        }
        keys.sort();
        keys
    }
}

/// Prepares an engine, writing the artifact through to `cache` on success.
/// This is [`engine_by_name`] plus the cache write — the registry's miss
/// path. Write failures are logged and swallowed: a full or read-only disk
/// degrades to the uncached behaviour, it never fails the request.
///
/// # Errors
///
/// Exactly [`engine_by_name`]'s errors.
pub(crate) fn prepare_with_cache(
    cache: Option<&CompileCache>,
    engine_name: &'static str,
    cnf: &Cnf,
    name: &str,
    transform: &TransformConfig,
) -> Result<Box<dyn SampleEngine>, TransformError> {
    // The `"gd"` engine is prepared concretely so the expensive transform
    // result is in hand for serialization; `engine_by_name` does exactly
    // this boxing for `"gd"`.
    let (prepared, gd_artifact): (Box<dyn SampleEngine>, Option<Json>) = if engine_name == "gd" {
        let prepared = PreparedFormula::prepare(cnf, transform)?;
        let artifact = cache.map(|_| encode_gd_artifact(prepared.transform_result()));
        (Box::new(prepared), artifact)
    } else {
        (engine_by_name(engine_name, cnf, transform)?, None)
    };
    if let Some(cache) = cache {
        let fingerprint = Fingerprint::of(cnf);
        if let Err(e) = cache.store(&fingerprint, engine_name, name, cnf, transform, gd_artifact) {
            htsat_obs::warn!(
                "cannot persist compile artifact for {} ({engine_name}): {e}",
                fingerprint.to_hex()
            );
        } else {
            htsat_obs::counter!("serve.cache.writes").inc();
        }
    }
    Ok(prepared)
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn encode_transform_config(config: &TransformConfig) -> Json {
    Json::obj(vec![
        ("simplify", config.simplify.into()),
        ("use_signatures", config.use_signatures.into()),
        ("max_group_clauses", config.max_group_clauses.into()),
        ("max_support", config.max_support.into()),
    ])
}

fn gate_kind_name(kind: GateKind) -> &'static str {
    match kind {
        GateKind::Buf => "buf",
        GateKind::Not => "not",
        GateKind::And => "and",
        GateKind::Or => "or",
        GateKind::Nand => "nand",
        GateKind::Nor => "nor",
        GateKind::Xor => "xor",
        GateKind::Xnor => "xnor",
    }
}

fn class_char(class: VarClass) -> char {
    match class {
        VarClass::PrimaryInput => 'i',
        VarClass::Intermediate => 'm',
        VarClass::PrimaryOutput => 'o',
        VarClass::Unused => 'u',
    }
}

/// Serializes the expensive half of a `"gd"` preparation: the netlist,
/// variable classes and transform statistics.
fn encode_gd_artifact(transform: &TransformResult) -> Json {
    let netlist = &transform.netlist;
    let nodes: Vec<Json> = netlist
        .nodes()
        .iter()
        .map(|node| match node {
            NodeRef::Input(var) => Json::Arr(vec!["i".into(), u64::from(*var).into()]),
            NodeRef::Const(value) => Json::Arr(vec!["c".into(), (*value).into()]),
            NodeRef::Gate { kind, fanin } => Json::Arr(vec![
                "g".into(),
                gate_kind_name(*kind).into(),
                Json::Arr(fanin.iter().map(|f| f.index().into()).collect()),
            ]),
        })
        .collect();
    let primary_inputs: Vec<Json> = netlist
        .primary_inputs()
        .iter()
        .map(|&v| Json::from(u64::from(v)))
        .collect();
    let mut bound: Vec<(VarId, NodeId)> = netlist.bound_vars().collect();
    bound.sort_unstable();
    let bound: Vec<Json> = bound
        .into_iter()
        .map(|(var, node)| Json::Arr(vec![u64::from(var).into(), node.index().into()]))
        .collect();
    let outputs: Vec<Json> = netlist
        .outputs()
        .iter()
        .map(|o| {
            Json::Arr(vec![
                o.node.index().into(),
                o.target.into(),
                o.var.map_or(Json::Null, |v| u64::from(v).into()),
            ])
        })
        .collect();
    let classes: String = transform.classes().iter().map(|&c| class_char(c)).collect();
    let stats = &transform.stats;
    let stats = Json::obj(vec![
        ("cnf_vars", stats.cnf_vars.into()),
        ("cnf_clauses", stats.cnf_clauses.into()),
        ("cnf_ops", stats.cnf_ops.into()),
        ("circuit_ops", stats.circuit_ops.into()),
        ("gate_groups", stats.gate_groups.into()),
        ("signature_hits", stats.signature_hits.into()),
        ("aux_constraints", stats.aux_constraints.into()),
        ("constant_outputs", stats.constant_outputs.into()),
        (
            "transform_time_ns",
            (stats.transform_time.as_nanos().min(u128::from(u64::MAX)) as u64).into(),
        ),
    ]);
    Json::obj(vec![
        ("nodes", Json::Arr(nodes)),
        ("primary_inputs", Json::Arr(primary_inputs)),
        ("bound", Json::Arr(bound)),
        ("outputs", Json::Arr(outputs)),
        ("classes", classes.into()),
        ("stats", stats),
    ])
}

// ---------------------------------------------------------------------------
// Decoding — every failure is a described miss, never a panic.
// ---------------------------------------------------------------------------

fn decode_transform_config(json: &Json) -> Result<TransformConfig, String> {
    Ok(TransformConfig {
        simplify: json
            .get("simplify")
            .and_then(Json::as_bool)
            .ok_or("transform.simplify")?,
        use_signatures: json
            .get("use_signatures")
            .and_then(Json::as_bool)
            .ok_or("transform.use_signatures")?,
        max_group_clauses: decode_usize(json.get("max_group_clauses"))
            .ok_or("transform.max_group_clauses")?,
        max_support: decode_usize(json.get("max_support")).ok_or("transform.max_support")?,
    })
}

fn decode_usize(json: Option<&Json>) -> Option<usize> {
    usize::try_from(json?.as_u64()?).ok()
}

fn decode_u32(json: Option<&Json>) -> Option<u32> {
    u32::try_from(json?.as_u64()?).ok()
}

fn decode_gate_kind(name: &str) -> Option<GateKind> {
    Some(match name {
        "buf" => GateKind::Buf,
        "not" => GateKind::Not,
        "and" => GateKind::And,
        "or" => GateKind::Or,
        "nand" => GateKind::Nand,
        "nor" => GateKind::Nor,
        "xor" => GateKind::Xor,
        "xnor" => GateKind::Xnor,
        _ => return None,
    })
}

fn decode_class(c: char) -> Option<VarClass> {
    Some(match c {
        'i' => VarClass::PrimaryInput,
        'm' => VarClass::Intermediate,
        'o' => VarClass::PrimaryOutput,
        'u' => VarClass::Unused,
        _ => return None,
    })
}

fn decode_node(json: &Json) -> Option<NodeRef> {
    let parts = json.as_arr()?;
    match parts.first()?.as_str()? {
        "i" if parts.len() == 2 => Some(NodeRef::Input(decode_u32(parts.get(1))?)),
        "c" if parts.len() == 2 => Some(NodeRef::Const(parts.get(1)?.as_bool()?)),
        "g" if parts.len() == 3 => {
            let kind = decode_gate_kind(parts.get(1)?.as_str()?)?;
            let fanin = parts
                .get(2)?
                .as_arr()?
                .iter()
                .map(|f| NodeId::from_index(decode_usize(Some(f))?))
                .collect::<Option<Vec<NodeId>>>()?;
            Some(NodeRef::Gate { kind, fanin })
        }
        _ => None,
    }
}

fn decode_netlist(json: &Json) -> Result<Netlist, String> {
    let nodes = json
        .get("nodes")
        .and_then(Json::as_arr)
        .ok_or("gd.nodes")?
        .iter()
        .map(decode_node)
        .collect::<Option<Vec<NodeRef>>>()
        .ok_or("gd.nodes entry")?;
    let primary_inputs = json
        .get("primary_inputs")
        .and_then(Json::as_arr)
        .ok_or("gd.primary_inputs")?
        .iter()
        .map(|v| decode_u32(Some(v)))
        .collect::<Option<Vec<VarId>>>()
        .ok_or("gd.primary_inputs entry")?;
    let bound = json
        .get("bound")
        .and_then(Json::as_arr)
        .ok_or("gd.bound")?
        .iter()
        .map(|pair| {
            let pair = pair.as_arr().filter(|p| p.len() == 2)?;
            Some((
                decode_u32(pair.first())?,
                NodeId::from_index(decode_usize(pair.get(1))?)?,
            ))
        })
        .collect::<Option<Vec<(VarId, NodeId)>>>()
        .ok_or("gd.bound entry")?;
    let outputs = json
        .get("outputs")
        .and_then(Json::as_arr)
        .ok_or("gd.outputs")?
        .iter()
        .map(|o| {
            let o = o.as_arr().filter(|o| o.len() == 3)?;
            Some(OutputConstraint {
                node: NodeId::from_index(decode_usize(o.first())?)?,
                target: o.get(1)?.as_bool()?,
                var: match o.get(2)? {
                    Json::Null => None,
                    var => Some(decode_u32(Some(var))?),
                },
            })
        })
        .collect::<Option<Vec<OutputConstraint>>>()
        .ok_or("gd.outputs entry")?;
    Netlist::from_raw_parts(nodes, primary_inputs, bound, outputs)
        .map_err(|e| format!("invalid netlist: {e}"))
}

fn decode_stats(json: &Json) -> Result<TransformStats, String> {
    let field = |name: &str| json.get(name).and_then(Json::as_u64);
    Ok(TransformStats {
        cnf_vars: decode_usize(json.get("cnf_vars")).ok_or("stats.cnf_vars")?,
        cnf_clauses: decode_usize(json.get("cnf_clauses")).ok_or("stats.cnf_clauses")?,
        cnf_ops: field("cnf_ops").ok_or("stats.cnf_ops")?,
        circuit_ops: field("circuit_ops").ok_or("stats.circuit_ops")?,
        gate_groups: decode_usize(json.get("gate_groups")).ok_or("stats.gate_groups")?,
        signature_hits: decode_usize(json.get("signature_hits")).ok_or("stats.signature_hits")?,
        aux_constraints: decode_usize(json.get("aux_constraints"))
            .ok_or("stats.aux_constraints")?,
        constant_outputs: decode_usize(json.get("constant_outputs"))
            .ok_or("stats.constant_outputs")?,
        transform_time: Duration::from_nanos(
            field("transform_time_ns").ok_or("stats.transform_time_ns")?,
        ),
    })
}

/// Decodes and fully validates one artifact document against the key and
/// configuration it is being loaded for.
fn decode_artifact(
    text: &str,
    fingerprint: &Fingerprint,
    engine_name: &'static str,
    transform: &TransformConfig,
) -> Result<CachedEngine, String> {
    let doc = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let format = doc.get("format").and_then(Json::as_str).unwrap_or("");
    if format != CACHE_FORMAT {
        return Err(format!("format `{format}` (want `{CACHE_FORMAT}`)"));
    }
    let stored_engine = doc.get("engine").and_then(Json::as_str).unwrap_or("");
    if stored_engine != engine_name {
        return Err(format!("engine `{stored_engine}` (want `{engine_name}`)"));
    }
    let stored_transform =
        decode_transform_config(doc.get("transform").ok_or("missing transform")?)
            .map_err(|field| format!("missing/invalid field {field}"))?;
    if stored_transform != *transform {
        return Err("prepared under a different transform configuration".to_string());
    }
    let name = doc
        .get("name")
        .and_then(Json::as_str)
        .ok_or("missing name")?
        .to_string();
    let dimacs_text = doc
        .get("dimacs")
        .and_then(Json::as_str)
        .ok_or("missing dimacs")?;
    let cnf = dimacs::parse_str(dimacs_text).map_err(|e| format!("invalid DIMACS: {e}"))?;
    // Integrity: the formula must actually hash to the key it is stored
    // under (catches renamed and content-swapped files in one check).
    let actual = Fingerprint::of(&cnf);
    if actual != *fingerprint {
        return Err(format!(
            "fingerprint mismatch (content hashes to {})",
            actual.to_hex()
        ));
    }
    let stored_hex = doc.get("fingerprint").and_then(Json::as_str).unwrap_or("");
    if stored_hex != fingerprint.to_hex() {
        return Err(format!("fingerprint field `{stored_hex}` disagrees"));
    }
    let engine: Box<dyn SampleEngine> = if engine_name == "gd" {
        let gd = doc.get("gd").ok_or("missing gd artifact")?;
        let netlist = decode_netlist(gd)?;
        let classes = gd
            .get("classes")
            .and_then(Json::as_str)
            .ok_or("missing gd.classes")?
            .chars()
            .map(decode_class)
            .collect::<Option<Vec<VarClass>>>()
            .ok_or("invalid gd.classes")?;
        if classes.len() != cnf.num_vars() {
            return Err(format!(
                "gd.classes length {} does not cover {} variables",
                classes.len(),
                cnf.num_vars()
            ));
        }
        let stats = decode_stats(gd.get("stats").ok_or("missing gd.stats")?)
            .map_err(|field| format!("missing/invalid field {field}"))?;
        let result = TransformResult::from_parts(netlist, classes, stats);
        Box::new(PreparedFormula::from_transformed(&cnf, transform, result))
    } else {
        // Baselines prepare cheaply from the CNF alone; the artifact's
        // value is the canonical formula itself.
        engine_by_name(engine_name, &cnf, transform)
            .map_err(|e| format!("cannot prepare from artifact: {e}"))?
    };
    Ok(CachedEngine { engine, name })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cnf(width: u32, seed: i64) -> Cnf {
        let mut cnf = Cnf::new(width as usize);
        for v in 1..width {
            cnf.add_dimacs_clause([i64::from(v), i64::from(v + 1)]);
        }
        cnf.add_dimacs_clause([1 + seed.rem_euclid(i64::from(width))]);
        cnf
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("htsat-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn gd_artifact_round_trips_and_streams_identically() {
        let dir = temp_dir("roundtrip");
        let cache = CompileCache::open(&dir).expect("open");
        let formula = cnf(8, 0);
        let transform = TransformConfig::default();
        let fingerprint = Fingerprint::of(&formula);
        let fresh =
            prepare_with_cache(Some(&cache), "gd", &formula, "demo", &transform).expect("prepare");
        let warm = cache
            .load(&fingerprint, "gd", &transform)
            .expect("disk hit");
        assert_eq!(warm.name, "demo");
        let config = htsat_core::SessionConfig::with_seed(42);
        let timeout = Duration::from_secs(30);
        let fresh_solutions = fresh.sample(&config, 8, timeout).expect("fresh sample");
        let warm_solutions = warm
            .engine
            .sample(&config, 8, timeout)
            .expect("warm sample");
        assert_eq!(
            fresh_solutions.solutions, warm_solutions.solutions,
            "warm-loaded engine must stream bit-identically"
        );
        assert_eq!(cache.scan(), vec![(fingerprint, "gd")]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn baseline_artifact_round_trips() {
        let dir = temp_dir("baseline");
        let cache = CompileCache::open(&dir).expect("open");
        let formula = cnf(6, 1);
        let transform = TransformConfig::default();
        let fingerprint = Fingerprint::of(&formula);
        prepare_with_cache(Some(&cache), "walksat", &formula, "w", &transform).expect("prepare");
        let warm = cache
            .load(&fingerprint, "walksat", &transform)
            .expect("disk hit");
        assert_eq!(warm.engine.name(), "walksat");
        assert_eq!(warm.name, "w");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_mismatched_artifacts_are_misses() {
        let dir = temp_dir("corrupt");
        let cache = CompileCache::open(&dir).expect("open");
        let formula = cnf(6, 0);
        let transform = TransformConfig::default();
        let fingerprint = Fingerprint::of(&formula);
        prepare_with_cache(Some(&cache), "gd", &formula, "x", &transform).expect("prepare");
        let path = cache.artifact_path(&fingerprint, "gd");

        // Absent file.
        assert!(cache
            .load(&Fingerprint::of(&cnf(6, 2)), "gd", &transform)
            .is_none());
        // Truncated JSON.
        let full = fs::read_to_string(&path).expect("read");
        fs::write(&path, &full[..full.len() / 2]).expect("truncate");
        assert!(cache.load(&fingerprint, "gd", &transform).is_none());
        // Wrong format version.
        fs::write(&path, full.replace(CACHE_FORMAT, "htsat-cache-v999")).expect("rewrite");
        assert!(cache.load(&fingerprint, "gd", &transform).is_none());
        // Content that hashes to a different fingerprint.
        fs::write(&path, &full).expect("restore");
        let other = cnf(6, 3);
        let other_doc = fs::read_to_string(full_path_for(&cache, &other)).unwrap_or_default();
        assert!(other_doc.is_empty(), "no artifact for the other formula");
        let renamed = cache.artifact_path(&Fingerprint::of(&other), "gd");
        fs::copy(&path, &renamed).expect("copy");
        assert!(
            cache
                .load(&Fingerprint::of(&other), "gd", &transform)
                .is_none(),
            "renamed artifact must fail the content-hash check"
        );
        // Different transform configuration.
        let other_config = TransformConfig {
            max_support: 7,
            ..TransformConfig::default()
        };
        assert!(cache.load(&fingerprint, "gd", &other_config).is_none());
        // The intact artifact still loads.
        assert!(cache.load(&fingerprint, "gd", &transform).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    fn full_path_for(cache: &CompileCache, cnf: &Cnf) -> PathBuf {
        cache.artifact_path(&Fingerprint::of(cnf), "gd")
    }

    #[test]
    fn scan_skips_foreign_files() {
        let dir = temp_dir("scan");
        let cache = CompileCache::open(&dir).expect("open");
        fs::write(dir.join("README.txt"), "not an artifact").expect("write");
        fs::write(dir.join("zz-gd.json"), "{}").expect("write");
        fs::write(dir.join("deadbeef-frobnicate.json"), "{}").expect("write");
        assert!(cache.scan().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
