//! The TCP daemon: accept loop, per-connection sessions, graceful shutdown.

use crate::json::Json;
use crate::proto::{
    encode_solution, encode_stats, error_response, ok_response, ErrorCode, LoadSource, ProtoError,
    Request, SampleParams, DEFAULT_ENGINE,
};
use crate::registry::{RegistryConfig, SamplerRegistry};
use crate::ServeError;
use htsat_cnf::dimacs;
use htsat_core::SessionConfig;
use htsat_runtime::{StopSet, StopToken};
use htsat_tensor::Backend;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the accept loop polls for new connections and the stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Configuration of the daemon.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port (the bound address is
    /// reported by [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Default worker threads for `SAMPLE` requests that do not pin their
    /// own count (`0` = one worker per core).
    pub default_threads: usize,
    /// Registry options (memory budget, model parameters).
    pub registry: RegistryConfig,
    /// Allow `LOAD` requests that name a server-side `path`. Disabled by
    /// default: a daemon reachable over TCP should not read arbitrary local
    /// files unless the operator opts in.
    pub allow_path_load: bool,
    /// Emit the metrics snapshot as a structured `info` log line at this
    /// interval (`None` = off). The daemon's `--log-stats <secs>` flag.
    pub log_stats: Option<Duration>,
}

impl Default for ServeConfig {
    /// Loopback on an ephemeral port, auto-sized sampling threads, default
    /// registry budget, path loads disabled.
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            default_threads: 0,
            registry: RegistryConfig::default(),
            allow_path_load: false,
            log_stats: None,
        }
    }
}

/// Shared state every connection session works against.
struct ServerState {
    config: ServeConfig,
    registry: SamplerRegistry,
    /// Master stop flag: set once, never cleared — the daemon is done.
    stop: StopToken,
    /// Stop tokens of in-flight `SAMPLE` streams, fired on shutdown.
    requests: StopSet,
    started: Instant,
    connections_served: AtomicU64,
}

/// A running daemon.
///
/// Dropping the handle shuts the daemon down gracefully (equivalent to
/// [`ServerHandle::shutdown`]).
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    stats_logger: Option<JoinHandle<()>>,
}

/// Starts the daemon described by `config` and returns its handle.
///
/// The accept loop and every connection session run on background threads;
/// the call returns as soon as the listener is bound, so callers can read
/// the ephemeral port from [`ServerHandle::local_addr`] immediately.
///
/// # Errors
///
/// Returns the bind error if the address is unusable.
pub fn serve(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(ServerState {
        registry: SamplerRegistry::new(config.registry.clone()),
        config,
        stop: StopToken::new(),
        requests: StopSet::new(),
        started: Instant::now(),
        connections_served: AtomicU64::new(0),
    });
    htsat_obs::debug!("htsat-serve bound on {addr}");
    let accept_state = state.clone();
    let accept = std::thread::Builder::new()
        .name("htsat-serve-accept".to_string())
        .spawn(move || accept_loop(&listener, &accept_state))
        .expect("spawn accept thread");
    let stats_logger = state.config.log_stats.map(|period| {
        let logger_state = state.clone();
        std::thread::Builder::new()
            .name("htsat-serve-stats".to_string())
            .spawn(move || stats_log_loop(&logger_state, period))
            .expect("spawn stats logger thread")
    });
    Ok(ServerHandle {
        addr,
        state,
        accept: Some(accept),
        stats_logger,
    })
}

/// How often the stats logger polls the stop flag between emissions.
const STATS_LOG_POLL: Duration = Duration::from_millis(50);

/// Emits the global metrics snapshot as one structured `info` line per
/// period until the daemon stops.
fn stats_log_loop(state: &Arc<ServerState>, period: Duration) {
    let mut next = Instant::now() + period;
    while !state.stop.is_stopped() {
        std::thread::sleep(STATS_LOG_POLL);
        if Instant::now() >= next {
            next += period;
            htsat_obs::info!(
                "stats {}",
                htsat_obs::global().snapshot().to_json().encode()
            );
        }
    }
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry, for in-process inspection by tests and benchmarks.
    #[must_use]
    pub fn registry(&self) -> &SamplerRegistry {
        &self.state.registry
    }

    /// Whether the daemon has been told to stop (by [`ServerHandle::shutdown`]
    /// or a `SHUTDOWN` request).
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.state.stop.is_stopped()
    }

    /// Blocks until the daemon stops (a `SHUTDOWN` request arrives or
    /// another thread calls [`ServerHandle::shutdown`]).
    pub fn wait(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(logger) = self.stats_logger.take() {
            let _ = logger.join();
        }
    }

    /// Stops the daemon gracefully: fires every in-flight request's stop
    /// token, closes the accept loop and joins the session threads.
    pub fn shutdown(&mut self) {
        self.state.stop.stop();
        self.state.requests.stop_all();
        self.wait();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Polls for connections until the master stop flag is set, then drains the
/// session threads.
fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    while !state.stop.is_stopped() {
        match listener.accept() {
            Ok((stream, peer)) => {
                state.connections_served.fetch_add(1, Ordering::Relaxed);
                htsat_obs::counter!("serve.connections.total").inc();
                htsat_obs::debug!("connection accepted from {peer}");
                let session_state = state.clone();
                let handle = std::thread::Builder::new()
                    .name("htsat-serve-session".to_string())
                    .spawn(move || session(stream, &session_state))
                    .expect("spawn session thread");
                sessions.push(handle);
                sessions.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Graceful drain: in-flight streams have had their stop tokens fired
    // (by shutdown() or the SHUTDOWN session), so sessions finish their
    // current response and exit at the next read.
    for handle in sessions {
        let _ = handle.join();
    }
}

/// Largest accepted request line (a paper-scale inline DIMACS is a few
/// MiB; the cap only bounds a hostile endless line).
const MAX_LINE_BYTES: usize = 64 * 1024 * 1024;

/// Reads `\n`-terminated lines from a stream with a read timeout,
/// preserving partially received lines across timeouts (a plain
/// `BufRead::read_line` would drop them) and checking a stop flag between
/// polls.
struct LineReader {
    stream: TcpStream,
    pending: Vec<u8>,
    /// Bytes of `pending` already scanned for a newline, so each appended
    /// chunk is scanned once (a full rescan per chunk would make multi-MiB
    /// inline-DIMACS lines quadratic).
    scanned: usize,
}

impl LineReader {
    /// Returns the next complete line (without guarantee of trailing
    /// newline trimming), or `None` on EOF / stop / protocol violation.
    fn next_line(&mut self, stop: &StopToken) -> Option<String> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(pos) = self.pending[self.scanned..]
                .iter()
                .position(|&b| b == b'\n')
            {
                let line: Vec<u8> = self.pending.drain(..=self.scanned + pos).collect();
                self.scanned = 0;
                // Invalid UTF-8 cannot be valid protocol JSON; drop the
                // connection rather than guessing.
                return String::from_utf8(line).ok();
            }
            self.scanned = self.pending.len();
            if stop.is_stopped() || self.pending.len() > MAX_LINE_BYTES {
                return None;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return None, // client hung up (partial line dropped)
                Ok(n) => self.pending.extend_from_slice(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(_) => return None,
            }
        }
    }
}

/// RAII level of concurrently open connections: the gauge rises on session
/// entry and falls on every exit path (EOF, shutdown, write failure).
struct ConnectionGauge;

impl ConnectionGauge {
    fn enter() -> ConnectionGauge {
        htsat_obs::gauge!("serve.connections.active").inc();
        ConnectionGauge
    }
}

impl Drop for ConnectionGauge {
    fn drop(&mut self) {
        htsat_obs::gauge!("serve.connections.active").dec();
    }
}

/// Serves one connection: one request line in, one response line out.
fn session(stream: TcpStream, state: &Arc<ServerState>) {
    let _active = ConnectionGauge::enter();
    let _ = stream.set_nodelay(true);
    // Sessions must notice a daemon-wide shutdown even while idle in a
    // read: a read timeout turns the blocking read into a poll.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = LineReader {
        stream,
        pending: Vec::new(),
        scanned: 0,
    };
    loop {
        let Some(line) = reader.next_line(&state.stop) else {
            return;
        };
        htsat_obs::counter!("serve.bytes_in").add(line.len() as u64);
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = dispatch(&line, state);
        let mut text = response.encode();
        text.push('\n');
        htsat_obs::counter!("serve.bytes_out").add(text.len() as u64);
        if writer.write_all(text.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
        if shutdown {
            // Acknowledge first, then stop the world: the master flag ends
            // the accept loop, the stop set cancels in-flight streams on
            // other sessions.
            state.stop.stop();
            state.requests.stop_all();
            return;
        }
    }
}

/// Parses and executes one request line. Returns the response and whether
/// the daemon should shut down after sending it.
///
/// This is the single funnel every request flows through, so it carries the
/// request-level telemetry: the `serve.request` latency span, and — when
/// the response carries an error `code` — the per-code error counters.
fn dispatch(line: &str, state: &Arc<ServerState>) -> (Json, bool) {
    let _span = htsat_obs::span!("serve.request");
    let (response, shutdown) = dispatch_inner(line, state);
    if response.get("ok").and_then(Json::as_bool) == Some(false) {
        htsat_obs::counter!("serve.errors").inc();
        let code = response.get("code").and_then(Json::as_str).unwrap_or("?");
        let message = response.get("error").and_then(Json::as_str).unwrap_or("");
        // Dynamic (allocating) registry lookup is fine here: this is the
        // error path, never the per-sample hot path.
        htsat_obs::global()
            .counter(&format!("serve.errors.{code}"))
            .inc();
        htsat_obs::warn!("request failed ({code}): {message}");
    }
    (response, shutdown)
}

fn dispatch_inner(line: &str, state: &Arc<ServerState>) -> (Json, bool) {
    let msg = match Json::parse(line.trim_end()) {
        Ok(msg) => msg,
        Err(e) => {
            return (
                error_response(ErrorCode::BadJson, &format!("invalid JSON: {e}")),
                false,
            )
        }
    };
    let request = match Request::decode(&msg) {
        Ok(request) => request,
        Err(ProtoError(e)) => return (error_response(ErrorCode::BadRequest, &e), false),
    };
    match request {
        Request::Load {
            name,
            engine,
            source,
        } => {
            htsat_obs::counter!("serve.requests.load").inc();
            (
                handle_load(
                    state,
                    name.as_deref(),
                    engine.as_deref().unwrap_or(DEFAULT_ENGINE),
                    &source,
                ),
                false,
            )
        }
        Request::Sample(params) => {
            htsat_obs::counter!("serve.requests.sample").inc();
            (handle_sample(state, &params), false)
        }
        Request::Status => {
            htsat_obs::counter!("serve.requests.status").inc();
            (handle_status(state), false)
        }
        Request::Stats { reset } => {
            htsat_obs::counter!("serve.requests.stats").inc();
            (handle_stats(state, reset), false)
        }
        Request::Evict {
            fingerprint,
            engine,
        } => {
            htsat_obs::counter!("serve.requests.evict").inc();
            let evicted = state.registry.evict(&fingerprint, engine.as_deref());
            (
                ok_response(vec![
                    ("evicted", (evicted > 0).into()),
                    ("evicted_count", evicted.into()),
                ]),
                false,
            )
        }
        Request::Shutdown => {
            htsat_obs::counter!("serve.requests.shutdown").inc();
            htsat_obs::info!("shutdown requested");
            (ok_response(vec![("shutdown", true.into())]), true)
        }
    }
}

/// Answers `STATS`: the full metrics snapshot, optionally followed by a
/// counter/histogram reset.
///
/// The snapshot is taken *before* the reset, so a `STATS reset` reply
/// always reports the totals the reset wiped — callers never lose a
/// reporting window. Gauges (levels like in-flight connections) survive
/// the reset by [`htsat_obs::Registry::reset`]'s contract.
fn handle_stats(state: &Arc<ServerState>, reset: bool) -> Json {
    // Refresh level-style gauges the moment they are observed, so a
    // snapshot is coherent even if no request touched them recently.
    htsat_obs::gauge!("serve.registry.resident_entries").set(state.registry.len() as i64);
    let snapshot = htsat_obs::global().snapshot();
    if reset {
        htsat_obs::global().reset();
    }
    let mut pairs = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("reset".to_string(), Json::Bool(reset)),
    ];
    if let Json::Obj(snapshot_pairs) = snapshot.to_json() {
        pairs.extend(snapshot_pairs);
    }
    Json::Obj(pairs)
}

fn handle_load(
    state: &Arc<ServerState>,
    name: Option<&str>,
    engine: &str,
    source: &LoadSource,
) -> Json {
    let cnf = match source {
        LoadSource::Inline(text) => match dimacs::parse_str(text) {
            Ok(cnf) => cnf,
            Err(e) => {
                return error_response(
                    ErrorCode::TransformFailed,
                    &format!("DIMACS parse error: {e}"),
                )
            }
        },
        LoadSource::Path(path) => {
            if !state.config.allow_path_load {
                return error_response(
                    ErrorCode::PathLoadDisabled,
                    "path loads are disabled on this server (start with --allow-path-load)",
                );
            }
            match dimacs::read_file(path) {
                Ok(cnf) => cnf,
                Err(e) => {
                    return error_response(ErrorCode::Io, &format!("cannot read `{path}`: {e}"))
                }
            }
        }
    };
    match state.registry.load(&cnf, engine, name) {
        Ok((entry, cached)) => {
            let mut payload = vec![
                ("fingerprint", entry.fingerprint.to_hex().into()),
                ("engine", entry.engine_name.into()),
                ("name", entry.name.clone().into()),
                ("cached", cached.into()),
                ("vars", entry.engine.cnf().num_vars().into()),
                ("clauses", entry.engine.cnf().num_clauses().into()),
            ];
            // Engine-specific artifact sizes (compiled inputs/nodes for the
            // GD engine, circuit nodes for DiffSampler, nothing for the
            // solver-backed baselines).
            for (dim, value) in entry.engine.artifact_dims() {
                payload.push((dim, value.into()));
            }
            ok_response(payload)
        }
        Err(ServeError::Transform(e)) => {
            error_response(ErrorCode::TransformFailed, &format!("transform error: {e}"))
        }
        Err(e) => {
            let code = match &e {
                ServeError::Transform(_) => ErrorCode::TransformFailed,
                ServeError::UnknownEngine(_) => ErrorCode::EngineUnknown,
                ServeError::FingerprintCollision(_) => ErrorCode::FingerprintCollision,
                ServeError::Io(_) => ErrorCode::Io,
            };
            error_response(code, &e.to_string())
        }
    }
}

/// Server-side ceilings on wire-supplied sampling knobs: a daemon must not
/// let one request spawn unbounded OS threads, allocate an unbounded logit
/// matrix, or queue an absurd solution target.
const MAX_REQUEST_THREADS: usize = 1024;
const MAX_REQUEST_BATCH: usize = 1 << 16;
const MAX_REQUEST_N: usize = 1 << 20;

fn handle_sample(state: &Arc<ServerState>, params: &SampleParams) -> Json {
    let engine = params.engine.as_deref().unwrap_or(DEFAULT_ENGINE);
    let Some(entry) = state.registry.get(&params.fingerprint, engine) else {
        return error_response(
            ErrorCode::NotLoaded,
            &format!(
                "(formula {}, engine {engine}) is not loaded (use `load` first, or it was evicted)",
                params.fingerprint
            ),
        );
    };
    let threads = params.threads.unwrap_or(state.config.default_threads);
    if threads > MAX_REQUEST_THREADS {
        return error_response(
            ErrorCode::BadRequest,
            &format!("`threads` exceeds the cap {MAX_REQUEST_THREADS}"),
        );
    }
    if params.n > MAX_REQUEST_N {
        return error_response(
            ErrorCode::BadRequest,
            &format!("`n` exceeds the cap {MAX_REQUEST_N}"),
        );
    }
    if let Some(batch) = params.batch {
        if batch > MAX_REQUEST_BATCH {
            return error_response(
                ErrorCode::BadRequest,
                &format!("`batch` exceeds the cap {MAX_REQUEST_BATCH}"),
            );
        }
    }
    let config = SessionConfig {
        seed: params.seed,
        backend: Backend::Threads(threads),
        batch: params.batch,
    };
    // Registry hit path: the stream is minted from the resident prepared
    // engine — no parse, no transform, no kernel compilation. Going through
    // `SampleEngine::stream` (not `session` + a manual wrap) lets engines
    // apply their stream options (e.g. quicksampler's source-side dedup).
    let stream = match entry.engine.stream(&config) {
        Ok(stream) => stream,
        Err(e) => {
            return error_response(
                ErrorCode::BadRequest,
                &format!("invalid sampler config: {e}"),
            )
        }
    };
    let token = state.requests.issue();
    // Close the shutdown race: if the master stop fired before this token
    // was registered, `StopSet::stop_all` may already have swept the set —
    // a stream on a fresh token would then outlive the drain and block
    // shutdown forever. Issuing first and re-checking second guarantees
    // the token is stopped on either side of the race.
    if state.stop.is_stopped() {
        token.stop();
        return error_response(ErrorCode::Shutdown, "server is shutting down");
    }
    let mut stream = stream.with_stop_token(token.clone());
    if let Some(ms) = params.deadline_ms {
        stream = stream.with_timeout(Duration::from_millis(ms));
    }
    if let Some(stale) = params.max_stale {
        stream = stream.with_stale_limit(stale);
    }
    let solutions: Vec<Json> = stream
        .by_ref()
        .take(params.n)
        .map(|bits| Json::Str(encode_solution(&bits)))
        .collect();
    let stats = *stream.stats();
    let elapsed = stream.elapsed();
    let exhausted = stream.is_exhausted();
    drop(stream);
    // Mark this request's token done so the StopSet can prune it.
    token.stop();
    entry.record_stats(&stats);
    ok_response(vec![
        ("fingerprint", params.fingerprint.to_hex().into()),
        ("engine", entry.engine_name.into()),
        ("seed", crate::proto::encode_u64_exact(params.seed)),
        ("threads", threads.into()),
        ("solutions", Json::Arr(solutions)),
        ("stats", encode_stats(&stats)),
        ("elapsed_ms", (elapsed.as_secs_f64() * 1e3).into()),
        ("exhausted", exhausted.into()),
        ("stopped", state.stop.is_stopped().into()),
    ])
}

fn handle_status(state: &Arc<ServerState>) -> Json {
    let counters = state.registry.counters();
    let entries: Vec<Json> = state
        .registry
        .snapshot()
        .into_iter()
        .map(|entry| {
            let mut pairs = vec![
                ("fingerprint", entry.fingerprint.to_hex().into()),
                ("engine", entry.engine_name.into()),
                ("name", entry.name.clone().into()),
                ("vars", entry.engine.cnf().num_vars().into()),
                ("clauses", entry.engine.cnf().num_clauses().into()),
            ];
            for (dim, value) in entry.engine.artifact_dims() {
                pairs.push((dim, value.into()));
            }
            pairs.push(("bytes", entry.bytes.into()));
            pairs.push(("hits", entry.hits().into()));
            pairs.push(("stats", encode_stats(&entry.cumulative_stats())));
            Json::obj(pairs)
        })
        .collect();
    ok_response(vec![
        (
            "uptime_ms",
            (state.started.elapsed().as_secs_f64() * 1e3).into(),
        ),
        (
            "connections",
            state.connections_served.load(Ordering::Relaxed).into(),
        ),
        ("entries", Json::Arr(entries)),
        ("resident_bytes", state.registry.resident_bytes().into()),
        ("budget_bytes", state.registry.config().budget_bytes.into()),
        ("hits", counters.hits.into()),
        ("misses", counters.misses.into()),
        ("compiles", counters.compiles.into()),
        ("evictions", counters.evictions.into()),
        ("in_flight", state.requests.len().into()),
    ])
}
