//! The TCP daemon: accept loop, per-connection sessions, graceful shutdown.

use crate::feed::FeedRegistry;
use crate::json::Json;
use crate::proto::{
    encode_solution, encode_stats, error_response, ok_response, ErrorCode, LoadSource, Request,
    SampleParams, DEFAULT_ENGINE, DEFAULT_REGISTER_TTL_MS,
};
use crate::registry::{RegistryConfig, RegistryEntry, SamplerRegistry};
use crate::session::session;
use crate::ServeError;
use htsat_cnf::dimacs;
use htsat_core::{EngineStream, SessionConfig};
use htsat_runtime::{StopSet, StopToken};
use htsat_tensor::Backend;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the accept loop polls for new connections and the stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Configuration of the daemon.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port (the bound address is
    /// reported by [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Default worker threads for `SAMPLE` requests that do not pin their
    /// own count (`0` = one worker per core).
    pub default_threads: usize,
    /// Registry options (memory budget, model parameters).
    pub registry: RegistryConfig,
    /// Allow `LOAD` requests that name a server-side `path`. Disabled by
    /// default: a daemon reachable over TCP should not read arbitrary local
    /// files unless the operator opts in.
    pub allow_path_load: bool,
    /// Emit the metrics snapshot as a structured `info` log line at this
    /// interval (`None` = off). The daemon's `--log-stats <secs>` flag.
    pub log_stats: Option<Duration>,
    /// Log a structured `warn` line carrying the full span timeline for any
    /// traced request slower than this many milliseconds (`None` = off;
    /// `0` warns on every traced request). The daemon's `--trace-slow-ms`
    /// flag.
    pub trace_slow_ms: Option<u64>,
    /// Address of an `htsat-router` to announce this daemon to (`None` =
    /// standalone). A background thread re-registers every
    /// [`DEFAULT_REGISTER_TTL_MS`]` / 3` milliseconds so the router's
    /// liveness window never lapses while the daemon is up. The daemon's
    /// `--register` flag.
    pub register: Option<String>,
    /// Address to announce to the router (`None` = the bound address).
    /// Needed when the daemon binds a wildcard or sits behind NAT, where
    /// the bound address is not what the router should dial. The daemon's
    /// `--advertise` flag.
    pub advertise: Option<String>,
}

impl Default for ServeConfig {
    /// Loopback on an ephemeral port, auto-sized sampling threads, default
    /// registry budget, path loads disabled.
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            default_threads: 0,
            registry: RegistryConfig::default(),
            allow_path_load: false,
            log_stats: None,
            trace_slow_ms: None,
            register: None,
            advertise: None,
        }
    }
}

/// Shared state every connection session works against.
pub(crate) struct ServerState {
    pub(crate) config: ServeConfig,
    pub(crate) registry: SamplerRegistry,
    /// Master stop flag: set once, never cleared — the daemon is done.
    pub(crate) stop: StopToken,
    /// Stop tokens of in-flight `SAMPLE` streams and feed producers, fired
    /// on shutdown.
    pub(crate) requests: StopSet,
    /// Shared `SUBSCRIBE` feeds and their producer threads.
    pub(crate) feeds: FeedRegistry,
    pub(crate) started: Instant,
    pub(crate) connections_served: AtomicU64,
}

/// A running daemon.
///
/// Dropping the handle shuts the daemon down gracefully (equivalent to
/// [`ServerHandle::shutdown`]).
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: Option<JoinHandle<()>>,
    stats_logger: Option<JoinHandle<()>>,
    heartbeat: Option<JoinHandle<()>>,
}

/// Starts the daemon described by `config` and returns its handle.
///
/// The accept loop and every connection session run on background threads;
/// the call returns as soon as the listener is bound, so callers can read
/// the ephemeral port from [`ServerHandle::local_addr`] immediately.
///
/// # Errors
///
/// Returns the bind error if the address is unusable.
pub fn serve(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let registry = SamplerRegistry::new(config.registry.clone());
    if config.registry.cache_dir.is_some() {
        let restored = registry.warm_start();
        if restored > 0 {
            htsat_obs::info!(
                "warm-started {restored} registry entr{} from the compile cache",
                if restored == 1 { "y" } else { "ies" }
            );
        }
    }
    let state = Arc::new(ServerState {
        registry,
        config,
        stop: StopToken::new(),
        requests: StopSet::new(),
        feeds: FeedRegistry::new(),
        started: Instant::now(),
        connections_served: AtomicU64::new(0),
    });
    htsat_obs::debug!("htsat-serve bound on {addr}");
    let accept_state = state.clone();
    let accept = std::thread::Builder::new()
        .name("htsat-serve-accept".to_string())
        .spawn(move || accept_loop(&listener, &accept_state))
        .expect("spawn accept thread");
    let stats_logger = state.config.log_stats.map(|period| {
        let logger_state = state.clone();
        std::thread::Builder::new()
            .name("htsat-serve-stats".to_string())
            .spawn(move || stats_log_loop(&logger_state, period))
            .expect("spawn stats logger thread")
    });
    let heartbeat = state.config.register.clone().map(|router| {
        let advertise = state
            .config
            .advertise
            .clone()
            .unwrap_or_else(|| addr.to_string());
        let heartbeat_state = state.clone();
        std::thread::Builder::new()
            .name("htsat-serve-heartbeat".to_string())
            .spawn(move || heartbeat_loop(&heartbeat_state, &router, &advertise))
            .expect("spawn heartbeat thread")
    });
    Ok(ServerHandle {
        addr,
        state,
        accept: Some(accept),
        stats_logger,
        heartbeat,
    })
}

/// How often the heartbeat thread polls the stop flag between
/// re-registrations.
const HEARTBEAT_POLL: Duration = Duration::from_millis(25);

/// Socket timeout of one registration exchange: the router answers a
/// `REGISTER` inline, so anything slower than this is as good as down.
const REGISTER_IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Announces the daemon to `router` every TTL/3 until the daemon stops.
/// Failures are expected (the router may start later, restart, or be
/// briefly unreachable) and only logged — the next tick retries.
fn heartbeat_loop(state: &Arc<ServerState>, router: &str, advertise: &str) {
    let period = Duration::from_millis(DEFAULT_REGISTER_TTL_MS / 3);
    let mut announced = false;
    let mut next = Instant::now(); // register immediately on boot
    while !state.stop.is_stopped() {
        if Instant::now() >= next {
            next = Instant::now() + period;
            match register_once(router, advertise) {
                Ok(()) => {
                    htsat_obs::counter!("serve.register.sent").inc();
                    if !announced {
                        announced = true;
                        htsat_obs::info!("registered with router {router} as {advertise}");
                    }
                }
                Err(e) => {
                    htsat_obs::counter!("serve.register.failed").inc();
                    if announced {
                        announced = false;
                        htsat_obs::warn!("lost router {router}: {e} (retrying)");
                    } else {
                        htsat_obs::debug!("register with {router} failed: {e} (retrying)");
                    }
                }
            }
        }
        std::thread::sleep(HEARTBEAT_POLL);
    }
}

/// One registration exchange: dial, send `REGISTER`, require `ok:true`.
fn register_once(router: &str, advertise: &str) -> std::io::Result<()> {
    use std::io::{BufRead, BufReader, Write};
    let stream = TcpStream::connect(router)?;
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(REGISTER_IO_TIMEOUT))?;
    stream.set_write_timeout(Some(REGISTER_IO_TIMEOUT))?;
    let request = Request::Register {
        addr: advertise.to_string(),
        ttl_ms: Some(DEFAULT_REGISTER_TTL_MS),
    };
    let mut writer = stream.try_clone()?;
    writer.write_all(request.encode().encode().as_bytes())?;
    writer.write_all(b"\n")?;
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply)?;
    let msg = Json::parse(&reply)
        .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, format!("bad reply: {e}")))?;
    if msg.get("ok").and_then(Json::as_bool) == Some(true) {
        Ok(())
    } else {
        let detail = msg
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("registration rejected");
        Err(std::io::Error::other(detail.to_string()))
    }
}

/// How often the stats logger polls the stop flag between emissions.
const STATS_LOG_POLL: Duration = Duration::from_millis(50);

/// Emits the global metrics snapshot as one structured `info` line per
/// period until the daemon stops.
fn stats_log_loop(state: &Arc<ServerState>, period: Duration) {
    let mut next = Instant::now() + period;
    while !state.stop.is_stopped() {
        std::thread::sleep(STATS_LOG_POLL);
        if Instant::now() >= next {
            next += period;
            htsat_obs::info!(
                "stats {}",
                htsat_obs::global().snapshot().to_json().encode()
            );
        }
    }
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry, for in-process inspection by tests and benchmarks.
    #[must_use]
    pub fn registry(&self) -> &SamplerRegistry {
        &self.state.registry
    }

    /// Whether the daemon has been told to stop (by [`ServerHandle::shutdown`]
    /// or a `SHUTDOWN` request).
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.state.stop.is_stopped()
    }

    /// Blocks until the daemon stops (a `SHUTDOWN` request arrives or
    /// another thread calls [`ServerHandle::shutdown`]).
    pub fn wait(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(logger) = self.stats_logger.take() {
            let _ = logger.join();
        }
        if let Some(heartbeat) = self.heartbeat.take() {
            let _ = heartbeat.join();
        }
        // Feed producers are owned by the daemon, not by any one session:
        // their stop tokens were fired with the rest of the request set, so
        // by now each is sending its terminal frames and exiting.
        self.state.feeds.join_all();
    }

    /// Stops the daemon gracefully: fires every in-flight request's stop
    /// token, closes the accept loop and joins the session threads.
    pub fn shutdown(&mut self) {
        self.state.stop.stop();
        self.state.requests.stop_all();
        self.wait();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Polls for connections until the master stop flag is set, then drains the
/// session threads.
fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    while !state.stop.is_stopped() {
        match listener.accept() {
            Ok((stream, peer)) => {
                state.connections_served.fetch_add(1, Ordering::Relaxed);
                htsat_obs::counter!("serve.connections.total").inc();
                htsat_obs::debug!("connection accepted from {peer}");
                let session_state = state.clone();
                let handle = std::thread::Builder::new()
                    .name("htsat-serve-session".to_string())
                    .spawn(move || session(stream, &session_state))
                    .expect("spawn session thread");
                sessions.push(handle);
                sessions.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Graceful drain: in-flight streams have had their stop tokens fired
    // (by shutdown() or the SHUTDOWN session), so sessions finish their
    // current response and exit at the next read.
    for handle in sessions {
        let _ = handle.join();
    }
}

/// Counts and logs a failure response (v1 line or v2 frame): the aggregate
/// error counter, the per-code counter, and a `warn` log line.
///
/// Every response funnels through here — the v1 lockstep loop and every v2
/// frame producer alike — so error telemetry is framing-independent.
pub(crate) fn note_response(response: &Json) {
    if response.get("ok").and_then(Json::as_bool) == Some(false) {
        htsat_obs::counter!("serve.errors").inc();
        let code = response.get("code").and_then(Json::as_str).unwrap_or("?");
        let message = response.get("error").and_then(Json::as_str).unwrap_or("");
        // Dynamic (allocating) registry lookup is fine here: this is the
        // error path, never the per-sample hot path.
        htsat_obs::global()
            .counter(&format!("serve.errors.{code}"))
            .inc();
        htsat_obs::warn!("request failed ({code}): {message}");
    }
}

/// Executes one decoded request against the shared state. Returns the v1
/// response object and whether the daemon should shut down after it.
///
/// `HELLO` never reaches here (version negotiation is the session layer's
/// job), and the v2-only verbs answer `bad-request` — which is exactly the
/// v1 behaviour a pre-v2 client must observe.
pub(crate) fn dispatch_request(request: Request, state: &Arc<ServerState>) -> (Json, bool) {
    match request {
        // The session layer intercepts HELLO before dispatch; seeing one
        // here means a session-layer bug, answered defensively.
        Request::Hello { .. } => (
            error_response(ErrorCode::BadRequest, "hello is negotiated per-connection"),
            false,
        ),
        Request::Subscribe(_) => (
            error_response(
                ErrorCode::BadRequest,
                "`subscribe` requires protocol v2 (negotiate with `hello` first)",
            ),
            false,
        ),
        Request::Credit { .. } | Request::Unsubscribe { .. } => (
            error_response(
                ErrorCode::BadRequest,
                "subscription verbs require protocol v2 (negotiate with `hello` first)",
            ),
            false,
        ),
        Request::Load {
            name,
            engine,
            source,
        } => {
            htsat_obs::counter!("serve.requests.load").inc();
            (
                handle_load(
                    state,
                    name.as_deref(),
                    engine.as_deref().unwrap_or(DEFAULT_ENGINE),
                    &source,
                ),
                false,
            )
        }
        Request::Sample(params) => {
            htsat_obs::counter!("serve.requests.sample").inc();
            (handle_sample(state, &params), false)
        }
        Request::Status => {
            htsat_obs::counter!("serve.requests.status").inc();
            (handle_status(state), false)
        }
        Request::Stats { reset } => {
            htsat_obs::counter!("serve.requests.stats").inc();
            (handle_stats(state, reset), false)
        }
        Request::Evict {
            fingerprint,
            engine,
        } => {
            htsat_obs::counter!("serve.requests.evict").inc();
            let evicted = state.registry.evict(&fingerprint, engine.as_deref());
            (
                ok_response(vec![
                    ("evicted", (evicted > 0).into()),
                    ("evicted_count", evicted.into()),
                ]),
                false,
            )
        }
        Request::Shutdown => {
            htsat_obs::counter!("serve.requests.shutdown").inc();
            htsat_obs::info!("shutdown requested");
            (ok_response(vec![("shutdown", true.into())]), true)
        }
        Request::Trace { last, verb, min_ms } => {
            htsat_obs::counter!("serve.requests.trace").inc();
            (handle_trace(last, verb, min_ms), false)
        }
        // Discovery announcements belong to the routing layer; a sampling
        // daemon is never a registration target.
        Request::Register { .. } => (
            error_response(
                ErrorCode::BadRequest,
                "register is only accepted by htsat-router",
            ),
            false,
        ),
    }
}

/// Answers `TRACE`: recent request timelines from the process-global trace
/// ring, newest first, optionally filtered by verb and minimum duration.
/// The reply merges the `htsat-trace-v1` report document into the usual
/// `ok` envelope (mirroring how `STATS` carries its snapshot).
fn handle_trace(last: Option<u64>, verb: Option<String>, min_ms: Option<u64>) -> Json {
    let filter = htsat_obs::trace::TraceFilter {
        last: usize::try_from(last.unwrap_or(0)).unwrap_or(usize::MAX),
        verb,
        min_total_ns: min_ms.unwrap_or(0).saturating_mul(1_000_000),
    };
    let report = htsat_obs::trace::snapshot_traces(&filter);
    let mut pairs = vec![("ok".to_string(), Json::Bool(true))];
    if let Json::Obj(report_pairs) = report.to_json() {
        pairs.extend(report_pairs);
    }
    Json::Obj(pairs)
}

/// Thread count of this process, from `/proc/self/status` (`1` when the
/// procfs read is unavailable, e.g. on non-Linux hosts).
fn process_threads() -> i64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|text| {
            text.lines().find_map(|line| {
                line.strip_prefix("Threads:")
                    .and_then(|rest| rest.trim().parse::<i64>().ok())
            })
        })
        .unwrap_or(1)
}

/// Answers `STATS`: the full metrics snapshot, optionally followed by a
/// counter/histogram reset.
///
/// The snapshot is taken *before* the reset, so a `STATS reset` reply
/// always reports the totals the reset wiped — callers never lose a
/// reporting window. Gauges (levels like in-flight connections) survive
/// the reset by [`htsat_obs::Registry::reset`]'s contract.
fn handle_stats(state: &Arc<ServerState>, reset: bool) -> Json {
    // Refresh level-style gauges the moment they are observed, so a
    // snapshot is coherent even if no request touched them recently.
    htsat_obs::gauge!("serve.registry.resident_entries").set(state.registry.len() as i64);
    htsat_obs::gauge!("process.uptime_ms")
        .set(i64::try_from(state.started.elapsed().as_millis()).unwrap_or(i64::MAX));
    htsat_obs::gauge!("process.threads").set(process_threads());
    let snapshot = htsat_obs::global().snapshot();
    if reset {
        htsat_obs::global().reset();
    }
    let mut pairs = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("reset".to_string(), Json::Bool(reset)),
    ];
    if let Json::Obj(snapshot_pairs) = snapshot.to_json() {
        pairs.extend(snapshot_pairs);
    }
    Json::Obj(pairs)
}

fn handle_load(
    state: &Arc<ServerState>,
    name: Option<&str>,
    engine: &str,
    source: &LoadSource,
) -> Json {
    let cnf = match source {
        LoadSource::Inline(text) => match dimacs::parse_str(text) {
            Ok(cnf) => cnf,
            Err(e) => {
                return error_response(
                    ErrorCode::TransformFailed,
                    &format!("DIMACS parse error: {e}"),
                )
            }
        },
        LoadSource::Path(path) => {
            if !state.config.allow_path_load {
                return error_response(
                    ErrorCode::PathLoadDisabled,
                    "path loads are disabled on this server (start with --allow-path-load)",
                );
            }
            match dimacs::read_file(path) {
                Ok(cnf) => cnf,
                Err(e) => {
                    return error_response(ErrorCode::Io, &format!("cannot read `{path}`: {e}"))
                }
            }
        }
    };
    match state.registry.load(&cnf, engine, name) {
        Ok((entry, cached)) => {
            let mut payload = vec![
                ("fingerprint", entry.fingerprint.to_hex().into()),
                ("engine", entry.engine_name.into()),
                ("name", entry.name.clone().into()),
                ("cached", cached.into()),
                ("vars", entry.engine.cnf().num_vars().into()),
                ("clauses", entry.engine.cnf().num_clauses().into()),
            ];
            // Engine-specific artifact sizes (compiled inputs/nodes for the
            // GD engine, circuit nodes for DiffSampler, nothing for the
            // solver-backed baselines).
            for (dim, value) in entry.engine.artifact_dims() {
                payload.push((dim, value.into()));
            }
            ok_response(payload)
        }
        Err(ServeError::Transform(e)) => {
            error_response(ErrorCode::TransformFailed, &format!("transform error: {e}"))
        }
        Err(e) => {
            let code = match &e {
                ServeError::Transform(_) => ErrorCode::TransformFailed,
                ServeError::UnknownEngine(_) => ErrorCode::EngineUnknown,
                ServeError::FingerprintCollision(_) => ErrorCode::FingerprintCollision,
                ServeError::Io(_) => ErrorCode::Io,
            };
            error_response(code, &e.to_string())
        }
    }
}

/// Server-side ceilings on wire-supplied sampling knobs: a daemon must not
/// let one request spawn unbounded OS threads, allocate an unbounded logit
/// matrix, or queue an absurd solution target.
const MAX_REQUEST_THREADS: usize = 1024;
const MAX_REQUEST_BATCH: usize = 1 << 16;
const MAX_REQUEST_N: usize = 1 << 20;

/// A validated, admitted sampling request: the resident entry, the resolved
/// worker count and the stream (the caller's stop token, deadline and
/// stale limit already applied).
pub(crate) struct AdmittedSample {
    pub(crate) entry: Arc<RegistryEntry>,
    pub(crate) threads: usize,
    pub(crate) stream: EngineStream,
}

/// Validates a `SAMPLE`-shaped request (caps, residency, config) and mints
/// its stream — the shared front half of the v1 blocking handler, the v2
/// chunked worker and the feed producer. `token` must already be issued
/// from the daemon's [`StopSet`]; on *any* error the caller still owns it
/// and must stop it.
///
/// # Errors
///
/// Returns the error code and message the caller should answer with.
pub(crate) fn admit_sample(
    state: &Arc<ServerState>,
    params: &SampleParams,
    token: &StopToken,
) -> Result<AdmittedSample, (ErrorCode, String)> {
    let engine = params.engine.as_deref().unwrap_or(DEFAULT_ENGINE);
    // `get_or_warm`: a non-resident pair can still be served when the
    // persistent cache has its artifact — the failover path of a routed
    // deployment, where a backend receives `SAMPLE`s for formulas another
    // backend loaded into the shared cache directory.
    let Some(entry) = state.registry.get_or_warm(&params.fingerprint, engine) else {
        return Err((
            ErrorCode::NotLoaded,
            format!(
                "(formula {}, engine {engine}) is not loaded (use `load` first, or it was evicted)",
                params.fingerprint
            ),
        ));
    };
    let threads = params.threads.unwrap_or(state.config.default_threads);
    if threads > MAX_REQUEST_THREADS {
        return Err((
            ErrorCode::BadRequest,
            format!("`threads` exceeds the cap {MAX_REQUEST_THREADS}"),
        ));
    }
    if params.n > MAX_REQUEST_N {
        return Err((
            ErrorCode::BadRequest,
            format!("`n` exceeds the cap {MAX_REQUEST_N}"),
        ));
    }
    if let Some(batch) = params.batch {
        if batch > MAX_REQUEST_BATCH {
            return Err((
                ErrorCode::BadRequest,
                format!("`batch` exceeds the cap {MAX_REQUEST_BATCH}"),
            ));
        }
    }
    let config = SessionConfig {
        seed: params.seed,
        backend: Backend::Threads(threads),
        batch: params.batch,
    };
    // Registry hit path: the stream is minted from the resident prepared
    // engine — no parse, no transform, no kernel compilation. Going through
    // `SampleEngine::stream` (not `session` + a manual wrap) lets engines
    // apply their stream options (e.g. quicksampler's source-side dedup).
    let stream = match entry.engine.stream(&config) {
        Ok(stream) => stream,
        Err(e) => {
            return Err((
                ErrorCode::BadRequest,
                format!("invalid sampler config: {e}"),
            ))
        }
    };
    // Close the shutdown race: if the master stop fired before the
    // caller's token was registered, `StopSet::stop_all` may already have
    // swept the set — a stream on a fresh token would then outlive the
    // drain and block shutdown forever. Issuing first and re-checking
    // second guarantees the token is stopped on either side of the race.
    if state.stop.is_stopped() {
        return Err((ErrorCode::Shutdown, "server is shutting down".to_string()));
    }
    let mut stream = stream.with_stop_token(token.clone());
    if let Some(ms) = params.deadline_ms {
        stream = stream.with_timeout(Duration::from_millis(ms));
    }
    if let Some(stale) = params.max_stale {
        stream = stream.with_stale_limit(stale);
    }
    Ok(AdmittedSample {
        entry,
        threads,
        stream,
    })
}

/// The terminal payload both framings share: stream stats, elapsed wall
/// clock, exhaustion and the shutdown flag.
pub(crate) fn sample_tail_payload(
    state: &Arc<ServerState>,
    stats: &htsat_runtime::StreamStats,
    elapsed: Duration,
    exhausted: bool,
) -> Vec<(&'static str, Json)> {
    vec![
        ("stats", encode_stats(stats)),
        ("elapsed_ms", (elapsed.as_secs_f64() * 1e3).into()),
        ("exhausted", exhausted.into()),
        ("stopped", state.stop.is_stopped().into()),
    ]
}

fn handle_sample(state: &Arc<ServerState>, params: &SampleParams) -> Json {
    let token = state.requests.issue();
    let admitted = match admit_sample(state, params, &token) {
        Ok(admitted) => admitted,
        Err((code, message)) => {
            token.stop();
            return error_response(code, &message);
        }
    };
    let AdmittedSample {
        entry,
        threads,
        mut stream,
    } = admitted;
    let solutions: Vec<Json> = stream
        .by_ref()
        .take(params.n)
        .map(|bits| Json::Str(encode_solution(&bits)))
        .collect();
    let stats = *stream.stats();
    let elapsed = stream.elapsed();
    let exhausted = stream.is_exhausted();
    drop(stream);
    // Mark this request's token done so the StopSet can prune it.
    token.stop();
    entry.record_stats(&stats);
    let mut payload = vec![
        ("fingerprint", params.fingerprint.to_hex().into()),
        ("engine", entry.engine_name.into()),
        ("seed", crate::proto::encode_u64_exact(params.seed)),
        ("threads", threads.into()),
        ("solutions", Json::Arr(solutions)),
    ];
    payload.extend(sample_tail_payload(state, &stats, elapsed, exhausted));
    ok_response(payload)
}

fn handle_status(state: &Arc<ServerState>) -> Json {
    let counters = state.registry.counters();
    let entries: Vec<Json> = state
        .registry
        .snapshot()
        .into_iter()
        .map(|entry| {
            let mut pairs = vec![
                ("fingerprint", entry.fingerprint.to_hex().into()),
                ("engine", entry.engine_name.into()),
                ("name", entry.name.clone().into()),
                ("vars", entry.engine.cnf().num_vars().into()),
                ("clauses", entry.engine.cnf().num_clauses().into()),
            ];
            for (dim, value) in entry.engine.artifact_dims() {
                pairs.push((dim, value.into()));
            }
            pairs.push(("bytes", entry.bytes.into()));
            pairs.push(("hits", entry.hits().into()));
            pairs.push(("stats", encode_stats(&entry.cumulative_stats())));
            Json::obj(pairs)
        })
        .collect();
    ok_response(vec![
        (
            "uptime_ms",
            (state.started.elapsed().as_secs_f64() * 1e3).into(),
        ),
        (
            "connections",
            state.connections_served.load(Ordering::Relaxed).into(),
        ),
        ("entries", Json::Arr(entries)),
        ("resident_bytes", state.registry.resident_bytes().into()),
        ("budget_bytes", state.registry.config().budget_bytes.into()),
        ("hits", counters.hits.into()),
        ("misses", counters.misses.into()),
        ("compiles", counters.compiles.into()),
        ("evictions", counters.evictions.into()),
        ("disk_hits", counters.disk_hits.into()),
        ("in_flight", state.requests.len().into()),
        ("feeds", state.feeds.feed_count().into()),
        ("subscribers", state.feeds.subscriber_count().into()),
    ])
}
