//! `htsat-serve` — run the sampling daemon.
//!
//! ```sh
//! cargo run --release -p htsat-serve --bin htsat-serve -- --addr 127.0.0.1:7878
//! ```
//!
//! The daemon speaks the newline-delimited JSON protocol documented in
//! `htsat_serve::proto` and runs until it receives a `SHUTDOWN` request:
//!
//! ```sh
//! printf '{"cmd":"shutdown"}\n' | nc 127.0.0.1 7878
//! ```
//!
//! Options:
//! * `--addr HOST:PORT` — bind address (default `127.0.0.1:7878`; port `0`
//!   picks an ephemeral port, logged on startup).
//! * `--threads N` — default `SAMPLE` worker threads (`0` = one per core).
//! * `--budget-mb N` — registry memory budget in MiB (default 512).
//! * `--allow-path-load` — allow `LOAD` requests naming server-side paths.
//! * `--cache-dir DIR` — persist compiled artifacts to `DIR` and warm-start
//!   the registry from it on boot, so a restarted daemon skips recompiles.
//! * `--register ROUTER_ADDR` — announce this daemon to an `htsat-router`
//!   and re-register on a heartbeat so its liveness window never lapses.
//! * `--advertise HOST:PORT` — address to announce instead of the bound
//!   one (for wildcard binds).
//! * `--log-stats SECS` — emit the metrics snapshot as a structured `info`
//!   log line every `SECS` seconds.
//! * `--trace-slow-ms MS` — log a structured `warn` line carrying the full
//!   span timeline for any traced request slower than `MS` milliseconds
//!   (`0` warns on every traced request).
//!
//! Diagnostics go to stderr through the `htsat-obs` leveled logger; set
//! `HTSAT_LOG=error|warn|info|debug` to choose the verbosity (default
//! `info`).

use htsat_serve::{serve, RegistryConfig, ServeConfig};
use std::time::Duration;

fn parse_args() -> Result<ServeConfig, String> {
    let mut config = ServeConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServeConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--allow-path-load" {
            config.allow_path_load = true;
            continue;
        }
        let value = args
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "--addr" => config.addr = value,
            "--threads" => {
                config.default_threads = value
                    .parse()
                    .map_err(|e| format!("invalid --threads: {e}"))?;
            }
            "--budget-mb" => {
                let mib: u64 = value
                    .parse()
                    .map_err(|e| format!("invalid --budget-mb: {e}"))?;
                config.registry = RegistryConfig {
                    budget_bytes: mib * 1024 * 1024,
                    ..config.registry
                };
            }
            "--cache-dir" => {
                config.registry.cache_dir = Some(std::path::PathBuf::from(value));
            }
            "--register" => config.register = Some(value),
            "--advertise" => config.advertise = Some(value),
            "--log-stats" => {
                let secs: u64 = value
                    .parse()
                    .map_err(|e| format!("invalid --log-stats: {e}"))?;
                if secs == 0 {
                    return Err("invalid --log-stats: interval must be positive".to_string());
                }
                config.log_stats = Some(Duration::from_secs(secs));
            }
            "--trace-slow-ms" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|e| format!("invalid --trace-slow-ms: {e}"))?;
                config.trace_slow_ms = Some(ms);
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(config)
}

fn main() {
    let config = match parse_args() {
        Ok(config) => config,
        Err(msg) => {
            htsat_obs::error!("{msg}");
            htsat_obs::error!(
                "usage: htsat-serve [--addr HOST:PORT] [--threads N] [--budget-mb N] \
                 [--allow-path-load] [--cache-dir DIR] [--register ROUTER_ADDR] \
                 [--advertise HOST:PORT] [--log-stats SECS] [--trace-slow-ms MS]"
            );
            std::process::exit(2);
        }
    };
    let budget = config.registry.budget_bytes;
    let mut server = match serve(config) {
        Ok(server) => server,
        Err(e) => {
            htsat_obs::error!("cannot start daemon: {e}");
            std::process::exit(1);
        }
    };
    htsat_obs::info!(
        "htsat-serve listening on {} (registry budget {} MiB); send {{\"cmd\":\"shutdown\"}} to stop",
        server.local_addr(),
        budget / (1024 * 1024)
    );
    server.wait();
    htsat_obs::info!("htsat-serve stopped");
}
